"""Random-order samplers (Appendix C, Theorems 1.6 / 1.7).

When the stream's arrival order is a uniform permutation of its multiset,
*collisions between adjacent positions* carry moment information: two
adjacent equal items occur with probability ``f_i(f_i−1)/(m(m−1))``.
Algorithm 9 corrects this to exactly ``f_i²/m²`` with a two-part
rejection; Algorithm 10 generalizes to integer ``p > 2`` via p-wise
collisions inside blocks and a Stirling-number correction (Lemma C.5).
"""

from repro.random_order.stirling import falling_factorial, stirling2
from repro.random_order.l2_collision import RandomOrderL2Sampler
from repro.random_order.lp_collision import RandomOrderLpSampler

__all__ = [
    "falling_factorial",
    "stirling2",
    "RandomOrderL2Sampler",
    "RandomOrderLpSampler",
]
