"""Algorithm 10 / Theorem 1.7 — truly perfect Lp sampling (integer
``p > 2``) on random-order streams.

The stream is cut into disjoint blocks of ``B = ⌈m^{1−1/(p−1)}⌉``
consecutive elements.  Conceptually, every ordered p-tuple of positions in
a block whose first ``q`` entries hold the same item ``j`` fires a coin
with probability ``α_q = S(p,q)·(m)_q/m^p``; summing the Stirling
correction over ``q`` (Lemma C.5) turns the tuple-collision probabilities
``(f_j)_q/(m)_q`` into exactly ``f_j^p/m^p`` per tuple.

Two optimizations over the literal pseudocode, both distribution-
preserving:

* **Binomial fast path** (Theorem 1.7): per block, only the frequencies
  ``g_j`` matter — the number of level-q coins for item ``j`` is
  ``(g_j)_q·(B−q)_{p−q}``, so one binomial draw per (item, level)
  replaces ``B^p`` tuple enumeration.
* **Reservoir pick**: the final "uniform element of the insertion
  multiset" is drawn with a single-slot reservoir over insertion events
  instead of the paper's capped buffer with random deletions — exactly
  uniform over all insertions in O(1) words, avoiding the cap's
  re-thinning distortion entirely.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.core.types import SampleResult
from repro.random_order.stirling import falling_factorial, stirling2

__all__ = ["RandomOrderLpSampler"]


class RandomOrderLpSampler:
    """Truly perfect Lp sampler (integer ``p ≥ 2``) for random-order
    insertion-only streams of known length ``horizon``.

    Parameters
    ----------
    p:
        Integer moment order ≥ 2.
    horizon:
        The stream length ``m`` (the whole-stream Theorem 1.7 setting).
    block_size:
        Override for ``B`` (defaults to ``⌈horizon^{1−1/(p−1)}⌉``).

    Notes
    -----
    Per-tuple insertion probabilities are exactly ``f_j^p/m^p``
    (Lemma C.6); the conditional distribution of the reservoir pick
    carries a residual dependence term that vanishes as the number of
    blocks grows (the second-moment concentration of Lemma C.7) — run
    with ``horizon ≳ 10·block_size`` for the exact regime.
    """

    def __init__(
        self,
        p: int,
        horizon: int,
        block_size: int | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if int(p) != p or p < 2:
            raise ValueError("p must be an integer ≥ 2")
        if horizon < p:
            raise ValueError("horizon must be at least p")
        self._p = int(p)
        self._m = horizon
        if block_size is None:
            block_size = max(self._p, math.ceil(horizon ** (1.0 - 1.0 / (p - 1))))
        self._b = block_size
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        # α_q = S(p,q)·(m)_q / m^p — the level-q coin probability.
        self._alpha = [
            stirling2(self._p, q) * falling_factorial(horizon, q) / horizon**self._p
            for q in range(self._p + 1)
        ]
        for q, a in enumerate(self._alpha):
            if not 0.0 <= a <= 1.0:
                raise ValueError(
                    f"horizon {horizon} too small for p={p}: level-{q} coin "
                    f"probability {a:.3f} outside [0, 1]"
                )
        self._block: list[int] = []
        self._pick: tuple[int, int] | None = None  # (item, block start)
        self._insertions_seen = 0
        self._t = 0

    @property
    def p(self) -> int:
        return self._p

    @property
    def block_size(self) -> int:
        return self._b

    @property
    def insertions_seen(self) -> int:
        """Total insertion events simulated so far."""
        return self._insertions_seen

    @property
    def position(self) -> int:
        return self._t

    def update(self, item: int) -> None:
        self._t += 1
        self._block.append(item)
        if len(self._block) == self._b:
            self._flush_block()

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def _flush_block(self) -> None:
        block_start = self._t - len(self._block) + 1
        counts = Counter(self._block)
        self._block = []
        b = self._b
        for item, g in counts.items():
            for q in range(1, self._p + 1):
                if q > g:
                    break
                coins = falling_factorial(g, q) * falling_factorial(b - q, self._p - q)
                if coins <= 0:
                    continue
                hits = int(self._rng.binomial(coins, self._alpha[q]))
                if hits == 0:
                    continue
                # Reservoir over insertion events: the h new insertions
                # (all of `item`) displace the held pick with probability
                # h/(seen + h) — exactly uniform over all insertions.
                total = self._insertions_seen + hits
                if self._rng.random() < hits / total:
                    self._pick = (item, block_start)
                self._insertions_seen = total

    def sample(self) -> SampleResult:
        """The reservoir pick (partial trailing blocks are ignored, as in
        the paper's disjoint-block scheme)."""
        if self._t == 0:
            return SampleResult.empty()
        if self._pick is None:
            return SampleResult.fail()
        item, ts = self._pick
        return SampleResult.of(item, timestamp=ts)

    def run(self, stream) -> SampleResult:
        self.extend(stream)
        return self.sample()
