"""Stirling numbers and falling factorials (Lemma C.5).

The identity ``x^p = Σ_{k=0}^p S(p,k)·(x)_k`` lets Algorithm 10 express
the target weight ``f^p`` as a positive combination of the collision
probabilities ``(f)_k/(m)_k`` that random-order streams expose.
"""

from __future__ import annotations

import functools

__all__ = ["falling_factorial", "stirling2", "power_as_falling_factorials"]


def falling_factorial(x: int | float, k: int) -> int | float:
    """``(x)_k = x(x−1)···(x−k+1)``; ``(x)_0 = 1``."""
    if k < 0:
        raise ValueError("k must be non-negative")
    result = 1
    for i in range(k):
        result *= x - i
    return result


@functools.lru_cache(maxsize=None)
def stirling2(p: int, k: int) -> int:
    """Stirling number of the second kind ``S(p, k)`` — partitions of a
    p-set into k non-empty blocks."""
    if p < 0 or k < 0:
        raise ValueError("arguments must be non-negative")
    if p == k:
        return 1
    if k == 0 or k > p:
        return 0
    # Recurrence S(p, k) = k·S(p−1, k) + S(p−1, k−1).
    return k * stirling2(p - 1, k) + stirling2(p - 1, k - 1)


def power_as_falling_factorials(x: int, p: int) -> int:
    """Evaluate ``Σ_k S(p,k)(x)_k`` (equals ``x^p``; used in tests)."""
    return sum(stirling2(p, k) * falling_factorial(x, k) for k in range(p + 1))
