"""Algorithm 9 — truly perfect L2 sampling on random-order streams
(Theorem 1.6).

For each disjoint adjacent pair ``(u_{2i−1}, u_{2i})``:

* with probability ``1/W`` sample the first element outright;
* otherwise sample it iff the pair collides (``u_{2i−1} = u_{2i}``).

On a uniformly ordered stream the two branches combine to sampling item
``j`` with probability exactly ``f_j²/W²`` per pair — the rejection
"corrects" the collision probability ``f_j(f_j−1)/(W(W−1))`` up to
``f_j²/W²``.  Samples carry timestamps, so expiry extends the construction
to sliding windows; the final answer is a uniform element of the sample
buffer.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.types import SampleResult

__all__ = ["RandomOrderL2Sampler"]


class RandomOrderL2Sampler:
    """Truly perfect L2 sampler for random-order insertion-only streams.

    Parameters
    ----------
    n:
        Universe size (drives the default buffer capacity ``O(log n)``).
    horizon:
        The normalization length ``W``: the window size in sliding-window
        mode, or the stream length ``m`` for whole-stream sampling
        (Remark C.1).
    sliding:
        When true, samples expire once their timestamp leaves the last
        ``horizon`` updates.
    capacity:
        Buffer cap (the paper's ``2C log n``); ``None`` chooses
        ``4⌈log₂(n·horizon)⌉``.
    """

    def __init__(
        self,
        n: int,
        horizon: int,
        sliding: bool = False,
        capacity: int | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if horizon < 2:
            raise ValueError("horizon must be ≥ 2")
        self._n = n
        self._w = horizon
        self._sliding = sliding
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        if capacity is None:
            capacity = max(8, 4 * math.ceil(math.log2(max(4, n * horizon))))
        self._capacity = capacity
        self._buffer: list[tuple[int, int]] = []  # (item, timestamp of pair start)
        self._pending: int | None = None
        self._t = 0

    @property
    def horizon(self) -> int:
        return self._w

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def buffer_size(self) -> int:
        return len(self._buffer)

    @property
    def position(self) -> int:
        return self._t

    def update(self, item: int) -> None:
        self._t += 1
        if self._pending is None:
            self._pending = item
            return
        first = self._pending
        self._pending = None
        first_ts = self._t - 1
        if self._rng.random() < 1.0 / self._w:
            self._buffer.append((first, first_ts))
        elif first == item:
            self._buffer.append((first, first_ts))
        self._expire()
        if len(self._buffer) > 2 * self._capacity:
            # Down-sample uniformly to preserve the buffer's symmetry.
            keep = self._rng.choice(
                len(self._buffer), size=self._capacity, replace=False
            )
            self._buffer = [self._buffer[i] for i in sorted(keep)]

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def _expire(self) -> None:
        if not self._sliding:
            return
        cutoff = self._t - self._w
        if self._buffer and self._buffer[0][1] <= cutoff:
            self._buffer = [(i, ts) for i, ts in self._buffer if ts > cutoff]

    def sample(self) -> SampleResult:
        if self._t == 0:
            return SampleResult.empty()
        self._expire()
        if not self._buffer:
            return SampleResult.fail()
        item, ts = self._buffer[int(self._rng.integers(0, len(self._buffer)))]
        return SampleResult.of(item, timestamp=ts)

    def run(self, stream) -> SampleResult:
        self.extend(stream)
        return self.sample()
