"""Algorithm 6 — truly perfect Lp sampling on sliding windows
(Theorem 1.4, sliding-window part).

Structure: the two-generation checkpoint scheme of Algorithm 4, an Lp
measure, and a *certified* normalizer from a smooth histogram.

The paper's Algorithm 6 pairs each checkpoint with a [BO07] ``Estimate``
instance giving ``F ≤ L_p(window) ≤ 2F``.  We run the smooth histogram
with exact suffix-``F_p`` inner estimators, which makes the sandwich
deterministic ([BO07] smoothness is a property of the *function*, so with
exact inner values the histogram's guarantee holds with probability 1 —
keeping the sampler truly perfect; see DESIGN.md §4 on this substitution).
The rejection weight is ``(c^p − (c−1)^p)/ζ`` with
``ζ = p·(upper bound on window ‖f‖∞)^{p−1}`` derived from the histogram's
certified range.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.g_sampler import SamplerPool
from repro.core.rejection import rejection_many
from repro.core.types import SampleResult, as_item_array
from repro.lifecycle.memory import INSTANCE_BYTES, RNG_STATE_BYTES
from repro.lifecycle.protocol import StaticLifecycleMixin
from repro.sketches.smooth_histogram import SmoothHistogram, ExactSuffixFp, fp_smoothness
from repro.sliding_window.window_sampler import _count_window_merge_error

__all__ = ["SlidingWindowLpSampler", "sliding_window_lp_instances"]


def sliding_window_lp_instances(p: float, window: int, delta: float) -> int:
    """Theorem 1.4's repetition count ``O(W^{1−1/p})`` with the proof's
    constant ``p·2^{p−1}`` and the ≤2W substream slack (another 2)."""
    if p < 1:
        raise ValueError("the sliding-window Lp sampler requires p ≥ 1")
    log_term = math.log(1.0 / delta)
    return max(1, math.ceil(2.0 * p * 2 ** (p - 1) * window ** (1.0 - 1.0 / p) * log_term))


class _Generation:
    __slots__ = ("pool", "start")

    def __init__(self, pool: SamplerPool, start: int) -> None:
        self.pool = pool
        self.start = start


class SlidingWindowLpSampler(StaticLifecycleMixin):
    """Truly perfect Lp sampler over the last ``window`` updates, ``p ≥ 1``.

    Parameters
    ----------
    p:
        Moment order ≥ 1 (``p = 1`` needs no normalizer and accepts
        always).
    window:
        Window size ``W``.
    alpha:
        Smooth-histogram accuracy (drives checkpoint count
        ``O((p/α)^p log W)``).
    """

    def __init__(
        self,
        p: float,
        window: int,
        instances: int | None = None,
        delta: float = 0.05,
        alpha: float = 0.5,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if p < 1:
            raise ValueError("SlidingWindowLpSampler requires p ≥ 1")
        if window <= 0:
            raise ValueError("window must be positive")
        self._p = p
        self._window = window
        self._alpha = alpha
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        if instances is None:
            instances = sliding_window_lp_instances(p, window, delta)
        self._instances = instances
        self._t = 0
        self._generations: list[_Generation] = []
        if p > 1:
            __, beta = fp_smoothness(p, alpha)
            self._hist: SmoothHistogram | None = SmoothHistogram(
                lambda: ExactSuffixFp(p), beta, window
            )
        else:
            self._hist = None

    @property
    def p(self) -> float:
        return self._p

    @property
    def window(self) -> int:
        return self._window

    @property
    def instances(self) -> int:
        return self._instances

    @property
    def position(self) -> int:
        return self._t

    @property
    def histogram_checkpoints(self) -> int:
        return self._hist.checkpoint_count if self._hist is not None else 0

    def approx_size_bytes(self) -> int:
        hist_bytes = (
            self._hist.approx_size_bytes() if self._hist is not None else 0
        )
        return (
            INSTANCE_BYTES
            + RNG_STATE_BYTES
            + hist_bytes
            + sum(
                INSTANCE_BYTES + gen.pool.approx_size_bytes()
                for gen in self._generations
            )
        )

    def merge(self, other) -> None:
        raise _count_window_merge_error(type(self).__name__)

    def update(self, item: int) -> None:
        if self._t % self._window == 0:
            self._generations.append(
                _Generation(SamplerPool(self._instances, self._rng), self._t)
            )
            if len(self._generations) > 2:
                self._generations.pop(0)
        self._t += 1
        for gen in self._generations:
            gen.pool.update(item)
        if self._hist is not None:
            self._hist.update(item)

    def extend(self, items) -> None:
        """Delegates to :meth:`update_batch` (distributionally
        equivalent to the scalar loop — see its docstring)."""
        self.update_batch(as_item_array(items))

    def update_batch(self, items) -> None:
        """Vectorized ingestion (pools batched; the smooth histogram's
        checkpoint schedule is inherently per-update, so it replays
        scalar).  Distributionally equivalent to the scalar loop — see
        :meth:`SlidingWindowGSampler.update_batch`."""
        arr = np.asarray(items, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError("update_batch expects a 1-d sequence of items")
        start = 0
        length = int(arr.size)
        while start < length:
            if self._t % self._window == 0:
                self._generations.append(
                    _Generation(SamplerPool(self._instances, self._rng), self._t)
                )
                if len(self._generations) > 2:
                    self._generations.pop(0)
            step = min(length - start, self._window - self._t % self._window)
            segment = arr[start:start + step]
            for gen in self._generations:
                gen.pool.update_batch(segment)
            if self._hist is not None:
                for item in segment.tolist():
                    self._hist.update(item)
            self._t += step
            start += step

    def snapshot(self) -> dict:
        """Checkpoint generations, smooth histogram, and RNG state (see
        :meth:`SlidingWindowGSampler.snapshot` for the sharing and the
        no-merge caveat)."""
        state = {
            "kind": "sw_lp",
            "p": self._p,
            "window": self._window,
            "alpha": self._alpha,
            "instances": self._instances,
            "position": self._t,
            "generations": {
                str(i): {"start": gen.start, "pool": gen.pool.snapshot()}
                for i, gen in enumerate(self._generations)
            },
            "rng_state": self._rng.bit_generator.state,
        }
        if self._hist is not None:
            state["hist"] = self._hist.snapshot()
        return state

    def restore(self, state: dict) -> None:
        if state.get("kind") != "sw_lp":
            raise ValueError(f"not a sw_lp snapshot: {state.get('kind')!r}")
        if float(state["p"]) != self._p or int(state["window"]) != self._window:
            raise ValueError(
                f"snapshot has p={state['p']}, window={state['window']}; "
                f"sampler has p={self._p}, window={self._window}"
            )
        self._alpha = float(state["alpha"])
        self._instances = int(state["instances"])
        self._t = int(state["position"])
        rng = np.random.default_rng()
        rng.bit_generator.state = state["rng_state"]
        self._rng = rng
        generations: list[_Generation] = []
        entries = state["generations"]
        for i in range(len(entries)):
            entry = entries[str(i)]
            pool = SamplerPool.from_snapshot(entry["pool"])
            pool._rng = rng  # re-establish the shared stream
            generations.append(_Generation(pool, int(entry["start"])))
        self._generations = generations
        if self._hist is not None:
            self._hist.restore(state["hist"])
        elif "hist" in state:
            raise ValueError("snapshot carries a histogram but p ≤ 1 needs none")

    def normalizer(self) -> float:
        """Certified ζ for the active window's frequencies.

        The histogram estimate ``E`` satisfies
        ``(1−α)·F_p(window) ≤ E ≤ F_p(superset)``, and every window
        frequency obeys ``c ≤ ‖f‖∞ ≤ F_p^{1/p} ≤ (E/(1−α))^{1/p}``; the
        max increment is then at most ``z^p − (z−1)^p`` at
        ``z = (E/(1−α))^{1/p}``.
        """
        if self._p <= 1:
            return 1.0
        est = self._hist.estimate()
        z = max(1.0, (est / (1.0 - self._alpha)) ** (1.0 / self._p))
        return z**self._p - (z - 1.0) ** self._p

    def sample(self) -> SampleResult:
        if not self._generations:
            return SampleResult.empty()
        gen = self._generations[0]
        finals = gen.pool.finalize()
        if not finals:
            return SampleResult.empty()
        zeta = self.normalizer()
        window_start = self._t - self._window
        p = self._p
        coins = self._rng.random(len(finals))
        for (item, count, rel_ts), coin in zip(finals, coins):
            abs_ts = gen.start + rel_ts
            if abs_ts <= window_start:
                continue
            weight = count**p - (count - 1) ** p
            if weight > zeta * (1.0 + 1e-12):
                raise ValueError(
                    f"certified normalizer violated: increment {weight} > ζ {zeta}"
                )
            if coin < weight / zeta:
                return SampleResult.of(item, count=count, timestamp=abs_ts, zeta=zeta)
        return SampleResult.fail(zeta=zeta)

    def sample_many(self, k: int) -> list[SampleResult]:
        """``k`` independent window samples from one finalize + one
        batched coin block — bitwise identical to ``k`` back-to-back
        :meth:`sample` calls (the certified normalizer is computed once;
        it is query-invariant between ingests)."""
        gen = self._generations[0] if self._generations else None
        finals = gen.pool.finalize() if gen is not None else []
        if not finals:
            if k < 0:
                raise ValueError(f"need a non-negative draw count, got {k}")
            return [SampleResult.empty() for __ in range(k)]
        zeta = self.normalizer()
        window_start = self._t - self._window
        p = self._p
        counts = np.array([c for __, c, __ in finals], dtype=np.float64)
        weights = counts**p - (counts - 1.0) ** p
        abs_ts = [gen.start + ts for __, __, ts in finals]
        active = np.array([ts > window_start for ts in abs_ts], dtype=bool)

        def make(j: int) -> SampleResult:
            item, count, __ = finals[j]
            return SampleResult.of(
                item, count=count, timestamp=abs_ts[j], zeta=zeta
            )

        return rejection_many(
            self._rng,
            k,
            weights,
            zeta,
            make,
            lambda: SampleResult.fail(zeta=zeta),
            active=active,
            describe=lambda j: (
                f"certified normalizer violated: increment {weights[j]} > "
                f"ζ {zeta}"
            ),
        )

    def run(self, stream) -> SampleResult:
        self.extend(stream)
        return self.sample()
