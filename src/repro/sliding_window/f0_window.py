"""Corollary 5.3 — truly perfect F0 sampling on sliding windows.

Algorithm 5 adapts to windows by (a) replacing "the first √n distinct
items" with the *most recently seen* √n distinct items plus an eviction
certificate, and (b) time-stamping the random-subset hits so expired
members can be discarded:

* An LRU table of ≤ √n+1 items keyed by last-occurrence time.  If every
  eviction ever performed removed an item whose recorded last occurrence
  has since expired, the pruned table *is* the window's exact support.
  Otherwise some eviction happened while > √n distinct items were active,
  certifying that the window's F0 exceeded √n at that moment — and the
  moment's √n+1 witnesses stay active until the sample time in question,
  so the S-regime is the correct branch whenever the certificate fails.
* ``S`` is the usual random 2√n-subset; a member is *alive* when its last
  occurrence is inside the window.  Uniformity over the window support
  follows from the permutation symmetry of ``S`` exactly as in the
  whole-stream case.
"""

from __future__ import annotations

import math
from collections import OrderedDict

import numpy as np

from repro.core.types import SampleResult
from repro.lifecycle.memory import (
    INSTANCE_BYTES,
    RNG_STATE_BYTES,
    mapping_bytes,
    set_bytes,
)
from repro.lifecycle.protocol import StaticLifecycleMixin
from repro.sliding_window.window_sampler import _count_window_merge_error

__all__ = ["SlidingWindowF0Sampler"]


class _WindowCopy:
    """One S-copy: last-seen timestamps for members of a random subset."""

    __slots__ = ("s_set", "last_seen")

    def __init__(self, s_set: set[int]) -> None:
        self.s_set = s_set
        self.last_seen: dict[int, int] = {}


class SlidingWindowF0Sampler(StaticLifecycleMixin):
    """Truly perfect F0 sampler over the last ``window`` updates.

    Parameters
    ----------
    n, window:
        Universe and window sizes.
    delta:
        FAIL probability; drives the number of independent S-copies.
    """

    def __init__(
        self,
        n: int,
        window: int,
        delta: float = 0.05,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if n < 1 or window < 1:
            raise ValueError("n and window must be ≥ 1")
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        self._n = n
        self._window = window
        self._threshold = max(1, math.isqrt(n) + (0 if math.isqrt(n) ** 2 == n else 1))
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        # LRU of (item -> last occurrence), capacity threshold + 1.
        self._recent: OrderedDict[int, int] = OrderedDict()
        self._evict_horizon = 0  # newest last-occurrence ever evicted
        copies = max(1, math.ceil(math.log(1.0 / delta) / 2.0))
        s_size = min(2 * self._threshold, n)
        self._copies = [
            _WindowCopy(
                set(int(x) for x in self._rng.choice(n, size=s_size, replace=False))
            )
            for _ in range(copies)
        ]
        self._t = 0

    @property
    def threshold(self) -> int:
        return self._threshold

    @property
    def window(self) -> int:
        return self._window

    @property
    def position(self) -> int:
        return self._t

    def approx_size_bytes(self) -> int:
        return (
            INSTANCE_BYTES
            + RNG_STATE_BYTES
            + mapping_bytes(len(self._recent))
            + sum(
                INSTANCE_BYTES
                + set_bytes(len(copy.s_set))
                + mapping_bytes(len(copy.last_seen))
                for copy in self._copies
            )
        )

    def merge(self, other) -> None:
        raise _count_window_merge_error(type(self).__name__)

    def update(self, item: int) -> None:
        if not 0 <= item < self._n:
            raise ValueError(f"item {item} outside universe [0, {self._n})")
        self._t += 1
        recent = self._recent
        if item in recent:
            del recent[item]
        recent[item] = self._t
        if len(recent) > self._threshold + 1:
            __, ts = recent.popitem(last=False)
            self._evict_horizon = max(self._evict_horizon, ts)
        for copy in self._copies:
            if item in copy.s_set:
                copy.last_seen[item] = self._t

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def update_batch(self, items) -> None:
        """Chunk ingestion, bitwise identical to the scalar loop (updates
        consume no randomness).

        The per-copy random-subset bookkeeping collapses to one
        last-occurrence computation per distinct chunk item; the LRU
        recency table is order-sensitive and replays sequentially (dict
        operations only).
        """
        arr = np.asarray(items, dtype=np.int64)
        if arr.size == 0:
            return
        if int(arr.min()) < 0 or int(arr.max()) >= self._n:
            raise ValueError(f"items outside universe [0, {self._n})")
        t0 = self._t
        recent = self._recent
        t = t0
        for item in arr.tolist():
            t += 1
            if item in recent:
                del recent[item]
            recent[item] = t
            if len(recent) > self._threshold + 1:
                __, ts = recent.popitem(last=False)
                self._evict_horizon = max(self._evict_horizon, ts)
        self._t = t
        # Last occurrence of each distinct chunk item: np.unique on the
        # reversed chunk returns *first* indices in the reversed order.
        uniq, rev_first = np.unique(arr[::-1], return_index=True)
        last_pos = arr.size - rev_first
        for item, pos in zip(uniq.tolist(), last_pos.tolist()):
            for copy in self._copies:
                if item in copy.s_set:
                    copy.last_seen[item] = t0 + int(pos)

    def snapshot(self) -> dict:
        """Checkpoint the LRU table (order matters — stored oldest
        first), eviction horizon, and S-copies.  ``last_seen`` maps are
        serialized in canonical (sorted) key order so scalar- and
        batch-ingested states snapshot identically."""
        copies = {}
        for i, copy in enumerate(self._copies):
            seen = sorted(copy.last_seen.items())
            copies[str(i)] = {
                "s_set": np.fromiter(sorted(copy.s_set), dtype=np.int64),
                "seen_keys": np.fromiter(
                    (k for k, __ in seen), dtype=np.int64, count=len(seen)
                ),
                "seen_vals": np.fromiter(
                    (v for __, v in seen), dtype=np.int64, count=len(seen)
                ),
            }
        return {
            "kind": "sw_f0",
            "n": self._n,
            "window": self._window,
            "position": self._t,
            "evict_horizon": self._evict_horizon,
            "recent_keys": np.fromiter(
                self._recent.keys(), dtype=np.int64, count=len(self._recent)
            ),
            "recent_vals": np.fromiter(
                self._recent.values(), dtype=np.int64, count=len(self._recent)
            ),
            "copies": copies,
            "rng_state": self._rng.bit_generator.state,
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "sw_f0":
            raise ValueError(f"not a sw_f0 snapshot: {state.get('kind')!r}")
        if int(state["n"]) != self._n or int(state["window"]) != self._window:
            raise ValueError(
                f"snapshot is for n={state['n']}, window={state['window']}; "
                f"sampler has n={self._n}, window={self._window}"
            )
        self._t = int(state["position"])
        self._evict_horizon = int(state["evict_horizon"])
        self._recent = OrderedDict(
            (int(k), int(v))
            for k, v in zip(state["recent_keys"], state["recent_vals"])
        )
        entries = state["copies"]
        copies = []
        for i in range(len(entries)):
            entry = entries[str(i)]
            copy = _WindowCopy(set(int(x) for x in entry["s_set"]))
            copy.last_seen = {
                int(k): int(v)
                for k, v in zip(entry["seen_keys"], entry["seen_vals"])
            }
            copies.append(copy)
        self._copies = copies
        rng = np.random.default_rng()
        rng.bit_generator.state = state["rng_state"]
        self._rng = rng

    def _active_recent(self) -> list[int]:
        window_start = self._t - self._window
        return [i for i, ts in self._recent.items() if ts > window_start]

    def sample(self) -> SampleResult:
        if self._t == 0:
            return SampleResult.empty()
        window_start = self._t - self._window
        active = self._active_recent()
        certificate_ok = self._evict_horizon <= window_start
        if certificate_ok and len(active) <= self._threshold:
            # The LRU provably contains the window's entire support.
            if not active:
                return SampleResult.empty()  # pragma: no cover - W ≥ 1
            item = active[int(self._rng.integers(0, len(active)))]
            return SampleResult.of(item, regime="recent")
        # Dense regime: the window support exceeds √n (certified either by
        # |active| > threshold or by a live eviction witness).
        for copy in self._copies:
            # Canonical (sorted) iteration: scalar ingest, batched
            # ingest, and a restore each populate last_seen in a
            # different key order; the drawn item must not depend on it.
            alive = [
                s for s, ts in sorted(copy.last_seen.items())
                if ts > window_start
            ]
            if alive:
                item = alive[int(self._rng.integers(0, len(alive)))]
                return SampleResult.of(item, regime="S")
        return SampleResult.fail(regime="S")

    def run(self, stream) -> SampleResult:
        self.extend(stream)
        return self.sample()
