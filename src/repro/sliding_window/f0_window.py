"""Corollary 5.3 — truly perfect F0 sampling on sliding windows.

Algorithm 5 adapts to windows by (a) replacing "the first √n distinct
items" with the *most recently seen* √n distinct items plus an eviction
certificate, and (b) time-stamping the random-subset hits so expired
members can be discarded:

* An LRU table of ≤ √n+1 items keyed by last-occurrence time.  If every
  eviction ever performed removed an item whose recorded last occurrence
  has since expired, the pruned table *is* the window's exact support.
  Otherwise some eviction happened while > √n distinct items were active,
  certifying that the window's F0 exceeded √n at that moment — and the
  moment's √n+1 witnesses stay active until the sample time in question,
  so the S-regime is the correct branch whenever the certificate fails.
* ``S`` is the usual random 2√n-subset; a member is *alive* when its last
  occurrence is inside the window.  Uniformity over the window support
  follows from the permutation symmetry of ``S`` exactly as in the
  whole-stream case.
"""

from __future__ import annotations

import math
from collections import OrderedDict

import numpy as np

from repro.core.rejection import uniform_candidate_many, uniform_candidate_sample
from repro.core.types import SampleResult, as_item_array
from repro.lifecycle.memory import (
    INSTANCE_BYTES,
    RNG_STATE_BYTES,
    mapping_bytes,
    set_bytes,
)
from repro.lifecycle.protocol import StaticLifecycleMixin
from repro.sliding_window.window_sampler import _count_window_merge_error

__all__ = ["SlidingWindowF0Sampler"]


def chunk_last_occurrences(arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(distinct items, 0-based index of each item's final chunk
    occurrence)`` — the digest both windowed-F0 hot paths consume.
    ``np.unique`` on the reversed chunk returns *first* indices in the
    reversed order; items come back value-sorted (so ``uniq[0]`` /
    ``uniq[-1]`` give the chunk's bounds for free)."""
    uniq, rev_first = np.unique(arr[::-1], return_index=True)
    return uniq, arr.size - 1 - rev_first


def lru_fold_chunk(
    recent: OrderedDict,
    capacity: int,
    uniq: np.ndarray,
    last_pos: np.ndarray,
    stamps,
    horizon,
):
    """Fold one chunk into an LRU last-occurrence table without the
    per-item replay — the windowed-F0 eviction-horizon kernel.

    The sequential process (move-to-back on every occurrence, evict the
    least-recent key past ``capacity``, record each evicted key's
    then-current stamp in the horizon) has a closed form over a chunk:

    * final membership is the ``capacity`` most-recently-seen distinct
      keys — surviving prior entries (already recency-ordered, with
      stamps no newer than the chunk's) followed by the chunk's distinct
      items in final-occurrence order;
    * the newest stamp any eviction ever records is the final stamp of
      the ``(capacity+1)``-th most-recent key: every key below the top
      ``capacity`` is evicted at (or after) its final occurrence, and at
      any eviction moment ``capacity`` keys are more recent than the
      victim, so no recorded stamp can rank above that cut.

    Bitwise identical to the scalar replay, including the table's
    iteration order.  ``stamps[i]`` is the stamp recorded for the chunk
    position ``i`` (1-based stream positions for count windows,
    wall-clock times for time windows); ``horizon`` is folded with
    ``max`` and returned alongside the new table.
    """
    order = np.argsort(last_pos)  # ascending recency within the chunk
    chunk_keys = uniq[order].tolist()
    chunk_stamps = [stamps[i] for i in last_pos[order].tolist()]
    if recent:
        prior_keys = np.fromiter(recent.keys(), dtype=np.int64, count=len(recent))
        kept = prior_keys[~np.isin(prior_keys, uniq)].tolist()
        entries = [(key, recent[key]) for key in kept]
    else:
        entries = []
    entries.extend(zip(chunk_keys, chunk_stamps))
    overflow = len(entries) - capacity
    if overflow > 0:
        horizon = max(horizon, entries[overflow - 1][1])
        entries = entries[overflow:]
    return OrderedDict(entries), horizon


class _WindowCopy:
    """One S-copy: last-seen timestamps for members of a random subset."""

    __slots__ = ("s_set", "last_seen")

    def __init__(self, s_set: set[int]) -> None:
        self.s_set = s_set
        self.last_seen: dict[int, int] = {}


class SlidingWindowF0Sampler(StaticLifecycleMixin):
    """Truly perfect F0 sampler over the last ``window`` updates.

    Parameters
    ----------
    n, window:
        Universe and window sizes.
    delta:
        FAIL probability; drives the number of independent S-copies.
    """

    def __init__(
        self,
        n: int,
        window: int,
        delta: float = 0.05,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if n < 1 or window < 1:
            raise ValueError("n and window must be ≥ 1")
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        self._n = n
        self._window = window
        self._threshold = max(1, math.isqrt(n) + (0 if math.isqrt(n) ** 2 == n else 1))
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        # LRU of (item -> last occurrence), capacity threshold + 1.
        self._recent: OrderedDict[int, int] = OrderedDict()
        self._evict_horizon = 0  # newest last-occurrence ever evicted
        copies = max(1, math.ceil(math.log(1.0 / delta) / 2.0))
        s_size = min(2 * self._threshold, n)
        self._copies = [
            _WindowCopy(
                set(int(x) for x in self._rng.choice(n, size=s_size, replace=False))
            )
            for _ in range(copies)
        ]
        self._t = 0

    @property
    def threshold(self) -> int:
        return self._threshold

    @property
    def window(self) -> int:
        return self._window

    @property
    def position(self) -> int:
        return self._t

    def approx_size_bytes(self) -> int:
        return (
            INSTANCE_BYTES
            + RNG_STATE_BYTES
            + mapping_bytes(len(self._recent))
            + sum(
                INSTANCE_BYTES
                + set_bytes(len(copy.s_set))
                + mapping_bytes(len(copy.last_seen))
                for copy in self._copies
            )
        )

    def merge(self, other) -> None:
        raise _count_window_merge_error(type(self).__name__)

    def update(self, item: int) -> None:
        if not 0 <= item < self._n:
            raise ValueError(f"item {item} outside universe [0, {self._n})")
        self._t += 1
        recent = self._recent
        if item in recent:
            del recent[item]
        recent[item] = self._t
        if len(recent) > self._threshold + 1:
            __, ts = recent.popitem(last=False)
            self._evict_horizon = max(self._evict_horizon, ts)
        for copy in self._copies:
            if item in copy.s_set:
                copy.last_seen[item] = self._t

    def extend(self, items) -> None:
        """Delegates to :meth:`update_batch` (bitwise identical — updates
        consume no randomness)."""
        self.update_batch(as_item_array(items))

    def update_batch(self, items) -> None:
        """Chunk ingestion, bitwise identical to the scalar loop (updates
        consume no randomness).

        One ``np.unique`` digest drives everything: bounds validation
        reads the sorted ends (one pass instead of separate min/max
        scans), the LRU recency table folds through the vectorized
        :func:`lru_fold_chunk` eviction-horizon kernel (no per-item
        replay), and the per-copy random-subset bookkeeping collapses to
        one last-occurrence write per distinct chunk item.
        """
        arr = np.asarray(items, dtype=np.int64)
        if arr.size == 0:
            return
        uniq, last_pos = chunk_last_occurrences(arr)
        if int(uniq[0]) < 0 or int(uniq[-1]) >= self._n:
            raise ValueError(f"items outside universe [0, {self._n})")
        t0 = self._t
        # Stream position of chunk offset i is t0 + i + 1 (1-based).
        self._recent, self._evict_horizon = lru_fold_chunk(
            self._recent,
            self._threshold + 1,
            uniq,
            last_pos,
            range(t0 + 1, t0 + int(arr.size) + 1),
            self._evict_horizon,
        )
        self._t = t0 + int(arr.size)
        for item, pos in zip(uniq.tolist(), last_pos.tolist()):
            for copy in self._copies:
                if item in copy.s_set:
                    copy.last_seen[item] = t0 + int(pos) + 1

    def snapshot(self) -> dict:
        """Checkpoint the LRU table (order matters — stored oldest
        first), eviction horizon, and S-copies.  ``last_seen`` maps are
        serialized in canonical (sorted) key order so scalar- and
        batch-ingested states snapshot identically."""
        copies = {}
        for i, copy in enumerate(self._copies):
            seen = sorted(copy.last_seen.items())
            copies[str(i)] = {
                "s_set": np.fromiter(sorted(copy.s_set), dtype=np.int64),
                "seen_keys": np.fromiter(
                    (k for k, __ in seen), dtype=np.int64, count=len(seen)
                ),
                "seen_vals": np.fromiter(
                    (v for __, v in seen), dtype=np.int64, count=len(seen)
                ),
            }
        return {
            "kind": "sw_f0",
            "n": self._n,
            "window": self._window,
            "position": self._t,
            "evict_horizon": self._evict_horizon,
            "recent_keys": np.fromiter(
                self._recent.keys(), dtype=np.int64, count=len(self._recent)
            ),
            "recent_vals": np.fromiter(
                self._recent.values(), dtype=np.int64, count=len(self._recent)
            ),
            "copies": copies,
            "rng_state": self._rng.bit_generator.state,
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "sw_f0":
            raise ValueError(f"not a sw_f0 snapshot: {state.get('kind')!r}")
        if int(state["n"]) != self._n or int(state["window"]) != self._window:
            raise ValueError(
                f"snapshot is for n={state['n']}, window={state['window']}; "
                f"sampler has n={self._n}, window={self._window}"
            )
        self._t = int(state["position"])
        self._evict_horizon = int(state["evict_horizon"])
        self._recent = OrderedDict(
            (int(k), int(v))
            for k, v in zip(state["recent_keys"], state["recent_vals"])
        )
        entries = state["copies"]
        copies = []
        for i in range(len(entries)):
            entry = entries[str(i)]
            copy = _WindowCopy(set(int(x) for x in entry["s_set"]))
            copy.last_seen = {
                int(k): int(v)
                for k, v in zip(entry["seen_keys"], entry["seen_vals"])
            }
            copies.append(copy)
        self._copies = copies
        rng = np.random.default_rng()
        rng.bit_generator.state = state["rng_state"]
        self._rng = rng

    def _active_recent(self) -> list[int]:
        window_start = self._t - self._window
        return [i for i, ts in self._recent.items() if ts > window_start]

    def _support_candidates(self) -> tuple[str, list[int] | None]:
        """The state-determined part of :meth:`sample`: the answering
        regime and its candidate items (``("empty", None)`` for ⊥; an
        empty S-regime list means FAIL).  Consumes no randomness."""
        if self._t == 0:
            return "empty", None
        window_start = self._t - self._window
        active = self._active_recent()
        certificate_ok = self._evict_horizon <= window_start
        if certificate_ok and len(active) <= self._threshold:
            # The LRU provably contains the window's entire support.
            if not active:
                return "empty", None  # pragma: no cover - W ≥ 1
            return "recent", active
        # Dense regime: the window support exceeds √n (certified either by
        # |active| > threshold or by a live eviction witness).
        for copy in self._copies:
            # Canonical (sorted) iteration: scalar ingest, batched
            # ingest, and a restore each populate last_seen in a
            # different key order; the drawn item must not depend on it.
            alive = [
                s for s, ts in sorted(copy.last_seen.items())
                if ts > window_start
            ]
            if alive:
                return "S", alive
        return "S", []

    def sample(self) -> SampleResult:
        regime, candidates = self._support_candidates()
        return uniform_candidate_sample(
            self._rng,
            regime,
            candidates,
            lambda item: SampleResult.of(item, regime=regime),
        )

    def sample_many(self, k: int) -> list[SampleResult]:
        """``k`` independent samples with one regime resolution and one
        batched index draw — bitwise identical to ``k`` back-to-back
        :meth:`sample` calls."""
        regime, candidates = self._support_candidates()
        return uniform_candidate_many(
            self._rng,
            k,
            regime,
            candidates,
            lambda item: SampleResult.of(item, regime=regime),
        )

    def run(self, stream) -> SampleResult:
        self.extend(stream)
        return self.sample()
