"""Sliding-window samplers (Section 4, Appendix A, Corollary 5.3).

The sliding-window model keeps only the most recent ``W`` insertion-only
updates *active*.  The framework samplers extend to it by (a) starting a
fresh checkpoint of reservoir instances every ``W`` updates and keeping
the two most recent generations, so some generation always covers the
active window with a substream of length ≤ 2W, and (b) rejecting samples
whose reservoir timestamp has expired.
"""

from repro.sliding_window.window_sampler import SlidingWindowGSampler
from repro.sliding_window.lp_window import SlidingWindowLpSampler
from repro.sliding_window.f0_window import SlidingWindowF0Sampler

__all__ = [
    "SlidingWindowGSampler",
    "SlidingWindowLpSampler",
    "SlidingWindowF0Sampler",
]
