"""Algorithm 4 — truly perfect M-estimator sampling on sliding windows
(Theorem 4.1, Corollary 4.2).

Generations of reservoir pools are checkpointed every ``W`` updates and the
two most recent kept.  At query time the *older* generation's substream
(length ``L ∈ (W, 2W]``) always covers the active window, so each active
position was its reservoir target with probability exactly ``1/L``;
conditioning on the sampled position being active and applying the usual
rejection step yields exactly ``G(f_i)/F_G`` over the *window* frequencies.
The ``L ≤ 2W`` slack costs a factor ≤ 2 in acceptance probability, which
the instance count absorbs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.g_sampler import SamplerPool
from repro.core.measures import Measure
from repro.core.rejection import rejection_many
from repro.core.types import SampleResult, as_item_array
from repro.lifecycle.memory import INSTANCE_BYTES, RNG_STATE_BYTES
from repro.lifecycle.protocol import StaticLifecycleMixin

__all__ = ["SlidingWindowGSampler"]


def _count_window_merge_error(cls_name: str) -> ValueError:
    """The shared refusal of the count-based window family: "the last W
    updates" of a sharded stream has no global arrival order, so merging
    is mathematically undefined (the registry declares these kinds
    ``mergeable=False``; use :mod:`repro.windows` for mergeable,
    time-based windows)."""
    return ValueError(
        f"{cls_name} does not merge: count-based windows have no global "
        "arrival order across shards — use the time-based samplers in "
        "repro.windows for mergeable windowed sampling"
    )


class _Generation:
    """A reservoir pool plus the absolute position at which it started."""

    __slots__ = ("pool", "start")

    def __init__(self, pool: SamplerPool, start: int) -> None:
        self.pool = pool
        self.start = start  # number of updates that preceded this pool


class SlidingWindowGSampler(StaticLifecycleMixin):
    """Truly perfect G-sampler over the last ``window`` updates.

    Parameters
    ----------
    measure:
        A measure with globally bounded increments (``zeta(None)``).
    window:
        Window size ``W``.
    instances:
        Instances per generation; defaults to
        ``R = ⌈2·ζ·W/F̂_G(W)·ln(1/δ)⌉`` using the measure's certified
        window bound (the extra 2 covers the ≤2W substream slack).
    """

    def __init__(
        self,
        measure: Measure,
        window: int,
        instances: int | None = None,
        delta: float = 0.05,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        self._measure = measure
        self._window = window
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        if instances is None:
            zeta = measure.zeta(None)
            acceptance = measure.fg_lower_bound(window) / (2.0 * zeta * window)
            instances = max(1, math.ceil(math.log(1.0 / delta) / acceptance))
        self._instances = instances
        self._t = 0
        self._generations: list[_Generation] = []

    @property
    def window(self) -> int:
        return self._window

    @property
    def instances(self) -> int:
        return self._instances

    @property
    def position(self) -> int:
        return self._t

    @property
    def generation_count(self) -> int:
        return len(self._generations)

    def approx_size_bytes(self) -> int:
        return (
            INSTANCE_BYTES
            + RNG_STATE_BYTES
            + sum(
                INSTANCE_BYTES + gen.pool.approx_size_bytes()
                for gen in self._generations
            )
        )

    def merge(self, other) -> None:
        raise _count_window_merge_error(type(self).__name__)

    def update(self, item: int) -> None:
        # A new generation starts at positions 1, W+1, 2W+1, ...
        if self._t % self._window == 0:
            self._generations.append(
                _Generation(SamplerPool(self._instances, self._rng), self._t)
            )
            if len(self._generations) > 2:
                self._generations.pop(0)
        self._t += 1
        for gen in self._generations:
            gen.pool.update(item)

    def extend(self, items) -> None:
        """Delegates to :meth:`update_batch` (distributionally
        equivalent to the scalar loop — see its docstring for the RNG
        draw-order caveat)."""
        self.update_batch(as_item_array(items))

    def update_batch(self, items) -> None:
        """Vectorized ingestion: the chunk is split at generation
        boundaries (every ``W`` updates) and each segment goes through
        the pools' batched path.

        Distributionally equivalent to the scalar loop — the generations
        share one RNG stream, and batching hands each pool a different
        (but still i.i.d.) subsequence of draws than the interleaved
        scalar order, so states are not bitwise comparable across the
        two paths (they are for single-pool samplers).
        """
        arr = np.asarray(items, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError("update_batch expects a 1-d sequence of items")
        start = 0
        length = int(arr.size)
        while start < length:
            if self._t % self._window == 0:
                self._generations.append(
                    _Generation(SamplerPool(self._instances, self._rng), self._t)
                )
                if len(self._generations) > 2:
                    self._generations.pop(0)
            step = min(length - start, self._window - self._t % self._window)
            segment = arr[start:start + step]
            for gen in self._generations:
                gen.pool.update_batch(segment)
            self._t += step
            start += step

    def _covering_generation(self) -> _Generation | None:
        """The oldest kept generation — its substream covers the window."""
        if not self._generations:
            return None
        return self._generations[0]

    def snapshot(self) -> dict:
        """Checkpoint generations + RNG state.

        The generations' pools share the sampler's RNG object, so the
        pool snapshots record the same RNG state redundantly; restore
        re-establishes the sharing, making the restored sampler continue
        bitwise-identically.  (Count-based windows snapshot and restore
        but do *not* merge: "the last W updates" of a sharded stream is
        undefined without a global arrival order — use
        :mod:`repro.windows` for mergeable, time-based windows.)
        """
        return {
            "kind": "sw_g",
            "measure": self._measure.name,
            "window": self._window,
            "instances": self._instances,
            "position": self._t,
            "generations": {
                str(i): {"start": gen.start, "pool": gen.pool.snapshot()}
                for i, gen in enumerate(self._generations)
            },
            "rng_state": self._rng.bit_generator.state,
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "sw_g":
            raise ValueError(f"not a sw_g snapshot: {state.get('kind')!r}")
        if state.get("measure") != self._measure.name:
            raise ValueError(
                f"snapshot is for measure {state.get('measure')!r}, sampler "
                f"has {self._measure.name!r}"
            )
        if int(state["window"]) != self._window:
            raise ValueError(
                f"snapshot has window={state['window']}, sampler has "
                f"{self._window}"
            )
        self._instances = int(state["instances"])
        self._t = int(state["position"])
        rng = np.random.default_rng()
        rng.bit_generator.state = state["rng_state"]
        self._rng = rng
        generations: list[_Generation] = []
        entries = state["generations"]
        for i in range(len(entries)):
            entry = entries[str(i)]
            pool = SamplerPool.from_snapshot(entry["pool"])
            pool._rng = rng  # re-establish the shared stream
            generations.append(_Generation(pool, int(entry["start"])))
        self._generations = generations

    def sample(self) -> SampleResult:
        """Rejection step over the covering generation's instances.

        An instance contributes only when its sampled position is still
        active (Algorithm 4 line 6); acceptance then uses
        ``(G(c) − G(c−1))/ζ`` with the measure's global ζ.
        """
        gen = self._covering_generation()
        if gen is None:
            return SampleResult.empty()
        finals = gen.pool.finalize()
        if not finals:
            return SampleResult.empty()
        zeta = self._measure.zeta(None)
        window_start = self._t - self._window  # active positions are > this
        coins = self._rng.random(len(finals))
        measure = self._measure
        for (item, count, rel_ts), coin in zip(finals, coins):
            abs_ts = gen.start + rel_ts
            if abs_ts <= window_start:
                continue  # the sampled position has expired
            weight = measure.increment(count)
            if weight > zeta * (1.0 + 1e-12):
                raise ValueError(
                    f"invalid zeta {zeta}: increment at c={count} is {weight}"
                )
            if coin < weight / zeta:
                return SampleResult.of(
                    item, count=count, timestamp=abs_ts, zeta=zeta
                )
        return SampleResult.fail(zeta=zeta)

    def sample_many(self, k: int) -> list[SampleResult]:
        """``k`` independent window samples from one finalize + one
        batched coin block — bitwise identical to ``k`` back-to-back
        :meth:`sample` calls (expired instances stay masked without
        consuming extra coins, exactly like the scalar scan)."""
        gen = self._covering_generation()
        finals = gen.pool.finalize() if gen is not None else []
        if not finals:
            if k < 0:
                raise ValueError(f"need a non-negative draw count, got {k}")
            return [SampleResult.empty() for __ in range(k)]
        zeta = self._measure.zeta(None)
        window_start = self._t - self._window
        measure = self._measure
        weights = [measure.increment(c) for __, c, __ in finals]
        abs_ts = [gen.start + ts for __, __, ts in finals]
        active = np.array([ts > window_start for ts in abs_ts], dtype=bool)

        def make(j: int) -> SampleResult:
            item, count, __ = finals[j]
            return SampleResult.of(
                item, count=count, timestamp=abs_ts[j], zeta=zeta
            )

        return rejection_many(
            self._rng,
            k,
            weights,
            zeta,
            make,
            lambda: SampleResult.fail(zeta=zeta),
            active=active,
            describe=lambda j: (
                f"invalid zeta {zeta}: increment at c={finals[j][1]} is "
                f"{weights[j]}"
            ),
        )

    def run(self, stream) -> SampleResult:
        self.extend(stream)
        return self.sample()
