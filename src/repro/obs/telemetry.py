"""Cross-process telemetry: serializable metric snapshots + merging.

Process-mode serving (``repro.serving.procplane``) runs shard workers
in their own processes, each with its own :class:`MetricsRegistry` and
ring-buffered tracer.  This module is the wire- and merge-layer that
makes those registries visible from the parent:

* :func:`snapshot_registry` flattens a registry into a **pure-JSON
  snapshot tree** — counters/gauges as scalars, histograms as bucket
  count vectors, label tuples as ``json.dumps(list(key))`` strings — so
  the tree rides the RPRS frame codec (``serving.transport``) untouched,
  with no pickle anywhere.
* :func:`snapshot_delta` / :func:`apply_delta` turn two cumulative
  snapshots into a sparse delta and back, bit-exactly, for shippers
  that want to amortize payload size.
* :class:`WorkerTelemetry` merges per-worker cumulative snapshots into
  a parent-side mirror registry whose families carry the worker's
  label names **plus a ``worker`` label** — with per-worker-generation
  *base accounting*: when a worker respawns (generation bump) its last
  cumulative snapshot is folded into a base that every later snapshot
  is added onto, so a lossless restart never double-counts and never
  steps an exposed counter backwards.
* :func:`render_snapshot_prometheus` renders one raw snapshot tree as
  Prometheus-style text (``repro-serve stats --per-worker``).

The snapshot format is versioned (``{"version": 1, "families": {...}}``)
and deliberately boring: everything in it is a JSON scalar, list, or
dict, so ``state_to_bytes`` carries it inside the frame header and
``decode_frame(encode_frame(x)) == x`` holds bitwise.
"""

from __future__ import annotations

import json
import math
import threading

from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry

__all__ = [
    "SNAPSHOT_VERSION",
    "WorkerTelemetry",
    "apply_delta",
    "render_snapshot_prometheus",
    "snapshot_delta",
    "snapshot_registry",
]

#: Snapshot tree format version (bump on incompatible layout changes).
SNAPSHOT_VERSION = 1


def _jkey(key: tuple) -> str:
    """A child's label-value tuple as a canonical JSON string — dict
    keys must be strings to survive the frame codec's JSON header."""
    return json.dumps(list(key))


def snapshot_registry(registry: MetricsRegistry) -> dict:
    """Flatten ``registry`` into a cumulative, pure-JSON snapshot tree.

    Layout::

        {"version": 1,
         "families": {name: {"type": ..., "help": ...,
                             "label_names": [...],
                             "bounds": [...],            # histograms only
                             "children": {jkey: sample}}}}

    where ``sample`` is ``{"value": float}`` for counters/gauges and
    ``{"counts": [int, ...], "sum": float, "count": int}`` (overflow
    cell last) for histograms.
    """
    families: dict = {}
    for name in registry.names():
        family = registry.get(name)
        if family is None:  # pragma: no cover - racy unregister never happens
            continue
        entry: dict = {
            "type": family.type,
            "help": family.help,
            "label_names": list(family.label_names),
        }
        children: dict = {}
        if family.type == "histogram":
            bounds = None
            for key, child in sorted(family.children().items()):
                counts, total_sum, count = child.snapshot()
                bounds = list(child.bounds)
                children[_jkey(key)] = {
                    "counts": [int(c) for c in counts],
                    "sum": float(total_sum),
                    "count": int(count),
                }
            if bounds is None:
                bounds = [float(b) for b in (family.buckets or LATENCY_BUCKETS)]
            entry["bounds"] = bounds
        else:
            for key, child in sorted(family.children().items()):
                children[_jkey(key)] = {"value": float(child.value)}
        entry["children"] = children
        families[name] = entry
    return {"version": SNAPSHOT_VERSION, "families": families}


def _check_version(tree: dict) -> dict:
    if not isinstance(tree, dict) or tree.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported telemetry snapshot: version="
            f"{tree.get('version') if isinstance(tree, dict) else tree!r}"
        )
    families = tree.get("families")
    if not isinstance(families, dict):
        raise ValueError("telemetry snapshot has no families dict")
    return families


def snapshot_delta(base: dict, latest: dict) -> dict:
    """The sparse delta taking cumulative ``base`` to cumulative
    ``latest``: counters/histograms subtract cell-wise, gauges pass
    through latest verbatim (they are levels, not totals).  Children
    and families absent from ``base`` ship whole; children whose delta
    is all-zero are dropped.  ``apply_delta(base, snapshot_delta(base,
    latest))`` reproduces ``latest`` exactly for every child present in
    ``latest`` (cumulative snapshots only grow, so that is all of them).
    """
    base_fams = _check_version(base)
    latest_fams = _check_version(latest)
    out: dict = {}
    for name, entry in latest_fams.items():
        b_entry = base_fams.get(name)
        b_children = b_entry.get("children", {}) if b_entry else {}
        d_children: dict = {}
        for jkey, sample in entry["children"].items():
            prev = b_children.get(jkey)
            if entry["type"] == "histogram":
                if prev is None:
                    d_children[jkey] = dict(sample)
                    continue
                counts = [
                    int(a) - int(b)
                    for a, b in zip(sample["counts"], prev["counts"])
                ]
                count = int(sample["count"]) - int(prev["count"])
                if count == 0 and not any(counts):
                    continue
                d_children[jkey] = {
                    "counts": counts,
                    "sum": float(sample["sum"]) - float(prev["sum"]),
                    "count": count,
                }
            elif entry["type"] == "counter":
                value = float(sample["value"]) - (
                    float(prev["value"]) if prev else 0.0
                )
                if value != 0.0 or prev is None:
                    d_children[jkey] = {"value": value}
            else:  # gauge: a level — latest wins verbatim
                d_children[jkey] = dict(sample)
        if d_children or b_entry is None:
            out[name] = {
                k: v for k, v in entry.items() if k != "children"
            } | {"children": d_children}
    return {"version": SNAPSHOT_VERSION, "families": out, "delta": True}


def apply_delta(base: dict, delta: dict) -> dict:
    """Rebuild a cumulative snapshot from ``base`` plus a
    :func:`snapshot_delta` — the receiver-side inverse."""
    base_fams = _check_version(base)
    delta_fams = _check_version(delta)
    out_fams: dict = {
        name: {k: (dict(v) if k == "children" else v) for k, v in entry.items()}
        for name, entry in base_fams.items()
    }
    for name, entry in delta_fams.items():
        target = out_fams.setdefault(
            name,
            {k: v for k, v in entry.items() if k != "children"} | {"children": {}},
        )
        children = dict(target.get("children", {}))
        for jkey, sample in entry["children"].items():
            prev = children.get(jkey)
            if entry["type"] == "histogram":
                if prev is None:
                    children[jkey] = dict(sample)
                else:
                    children[jkey] = {
                        "counts": [
                            int(a) + int(b)
                            for a, b in zip(prev["counts"], sample["counts"])
                        ],
                        "sum": float(prev["sum"]) + float(sample["sum"]),
                        "count": int(prev["count"]) + int(sample["count"]),
                    }
            elif entry["type"] == "counter":
                prior = float(prev["value"]) if prev else 0.0
                children[jkey] = {"value": prior + float(sample["value"])}
            else:
                children[jkey] = dict(sample)
        target["children"] = children
    return {"version": SNAPSHOT_VERSION, "families": out_fams}


def render_snapshot_prometheus(tree: dict) -> str:
    """One raw snapshot tree as Prometheus-style text — the *unmerged*
    per-worker view (``repro-serve stats --per-worker``).  Not a valid
    single exposition when concatenated across workers (duplicate
    headers); it is an inspection format."""
    families = _check_version(tree)
    registry = MetricsRegistry()
    _materialize_tree(registry, families, extra_labels=())
    return registry.render_prometheus()


def _materialize_tree(registry, families, extra_labels):
    """Rebuild snapshot families inside ``registry``, appending
    ``extra_labels`` (name, value) pairs to every child.  Raises
    ``ValueError`` on malformed entries — callers count merge errors."""
    extra_names = tuple(n for n, __ in extra_labels)
    extra_values = {n: v for n, v in extra_labels}
    for name, entry in families.items():
        type_ = entry.get("type")
        label_names = tuple(entry.get("label_names", ())) + extra_names
        help_ = entry.get("help", "")
        if type_ == "counter":
            family = registry.counter(name, help_, labels=label_names)
        elif type_ == "gauge":
            family = registry.gauge(name, help_, labels=label_names)
        elif type_ == "histogram":
            family = registry.histogram(
                name, help_, labels=label_names,
                buckets=tuple(entry.get("bounds") or LATENCY_BUCKETS),
            )
        else:
            raise ValueError(f"unknown family type {type_!r} for {name!r}")
        for jkey, sample in entry.get("children", {}).items():
            key = json.loads(jkey)
            labels = dict(zip(entry.get("label_names", ()), key))
            labels.update(extra_values)
            child = family.labels(**labels)
            if type_ == "histogram":
                child._merge_to(
                    sample["counts"], sample["sum"], sample["count"]
                )
            elif type_ == "counter":
                child._merge_to(float(sample["value"]))
            else:
                value = float(sample["value"])
                if not math.isnan(value):
                    child.set(value)


def _fold_into_base(base: dict, families: dict) -> None:
    """Accumulate a dead generation's last cumulative snapshot into the
    worker's base tree (counters/histograms add; gauges are levels from
    a dead process — dropped)."""
    for name, entry in families.items():
        if entry.get("type") == "gauge":
            continue
        target = base.setdefault(
            name,
            {k: v for k, v in entry.items() if k != "children"} | {"children": {}},
        )
        children = target["children"]
        for jkey, sample in entry.get("children", {}).items():
            prev = children.get(jkey)
            if entry.get("type") == "histogram":
                if prev is None:
                    children[jkey] = {
                        "counts": [int(c) for c in sample["counts"]],
                        "sum": float(sample["sum"]),
                        "count": int(sample["count"]),
                    }
                else:
                    prev["counts"] = [
                        int(a) + int(b)
                        for a, b in zip(prev["counts"], sample["counts"])
                    ]
                    prev["sum"] = float(prev["sum"]) + float(sample["sum"])
                    prev["count"] = int(prev["count"]) + int(sample["count"])
            else:
                prior = float(prev["value"]) if prev else 0.0
                children[jkey] = {"value": prior + float(sample["value"])}


def _merge_trees(base_families: dict, latest_families: dict) -> dict:
    """base + latest, cell-wise (gauges: latest only)."""
    merged = apply_delta(
        {"version": SNAPSHOT_VERSION, "families": base_families},
        {"version": SNAPSHOT_VERSION, "families": latest_families},
    )
    return merged["families"]


class WorkerTelemetry:
    """Parent-side merger: per-worker cumulative snapshots → one mirror
    registry with a ``worker`` label, monotone across respawns.

    Each worker is tracked as ``(generation, base, latest)``.  Within a
    generation, snapshots are cumulative, so the merged value is simply
    ``base + latest`` and re-shipping is idempotent.  When the
    generation bumps (the process plane respawned the worker), the last
    ``latest`` is folded into ``base`` first — the dead process's final
    observed totals — so the fresh process's counters, restarting from
    zero, stack on top instead of regressing or double-counting.  (The
    plane only respawns *idle* workers losslessly, so the last shipped
    snapshot is the dead generation's true final state.)
    """

    def __init__(self, registry: MetricsRegistry, worker_label: str = "worker"):
        self.registry = registry
        self.worker_label = worker_label
        self._lock = threading.Lock()
        self._workers: dict[str, dict] = {}

    def update(self, worker: str, generation: int, tree: dict) -> None:
        """Merge one worker's cumulative snapshot ``tree`` (a full
        ``{"version", "families"}`` snapshot) for ``generation`` into
        the mirror registry.  Raises ``ValueError`` on malformed or
        incompatible trees — callers surface that as a merge-error
        counter rather than crashing the plane."""
        families = _check_version(tree)
        worker = str(worker)
        with self._lock:
            state = self._workers.setdefault(
                worker, {"generation": int(generation), "base": {}, "latest": {}}
            )
            if int(generation) != state["generation"]:
                _fold_into_base(state["base"], state["latest"])
                state["generation"] = int(generation)
                state["latest"] = {}
            state["latest"] = families
            merged = _merge_trees(state["base"], families)
        if self.registry is not None and self.registry.enabled:
            _materialize_tree(
                self.registry, merged, extra_labels=((self.worker_label, worker),)
            )

    def latest(self, worker) -> dict | None:
        """The most recent raw (current-generation) snapshot tree for
        ``worker`` — the unmerged per-worker view — or ``None``."""
        with self._lock:
            state = self._workers.get(str(worker))
            if state is None:
                return None
            return {
                "version": SNAPSHOT_VERSION,
                "families": state["latest"],
                "generation": state["generation"],
            }

    def workers(self) -> list[str]:
        with self._lock:
            return sorted(self._workers)
