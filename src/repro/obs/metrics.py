"""The metrics core: Counter / Gauge / Histogram in a labeled registry.

Design constraints, in order:

* **Lock-cheap observation.**  Every observation is one short critical
  section on the instrument's own lock — an add (counters/gauges) or a
  bucket add + sum/count update (histograms).  No allocation, no
  iteration, no shared registry lock on the hot path.  Label resolution
  (``family.labels(tenant="a")``) does take the family lock, so hot
  paths resolve their child once and hold it.
* **No-op when disabled.**  A registry built with ``enabled=False``
  hands out one shared :data:`NOOP` instrument for everything: every
  method is a ``pass``, reads return zero, and nothing registers — so
  instrumented code costs a flag check and the bitwise-determinism
  contracts and perf gates are untouched.  Callers that time an
  operation should guard the clock reads on ``instrument.enabled``.
* **Exact under concurrency.**  Increments are never lost: the
  thread-safety test hammers one counter and one histogram from many
  threads and asserts exact totals.

Histograms are **fixed-boundary log-bucketed**: boundaries form a
geometric series (:func:`log_buckets`), observation is a ``bisect``
into the frozen boundary tuple, and p50/p90/p99 come from the bucket
counts by linear interpolation inside the quantile's bucket — accurate
to one bucket's width (a factor of the series ratio), which is the
standard latency-histogram trade.

**Registries.**  :class:`MetricsRegistry` maps names to instrument
*families* (get-or-create, so independent components share one family
by naming it identically) and renders the whole collection as
Prometheus text format 0.0.4 (:meth:`~MetricsRegistry.render_prometheus`)
or JSON (:meth:`~MetricsRegistry.render_json`).  A process-global
default registry serves components with no better home;
:func:`use_registry` installs a different current registry for a scope
(thread-local), which is how a :class:`~repro.serving.SamplerService`
routes the window/engine metrics of the samplers it builds into its
own per-service registry.

Registries and instruments deliberately survive ``copy.deepcopy`` as
*shared references*: samplers hold instrument handles, and samplers get
deep-copied into query folds and per-reader views — a copy that forked
the counters would silently split the numbers.
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left
from contextlib import contextmanager

__all__ = [
    "NOOP",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_registry",
    "log_buckets",
    "quantile_from_counts",
    "set_default_registry",
    "use_registry",
]


def log_buckets(lo: float, hi: float, factor: float = 2.0) -> tuple[float, ...]:
    """Geometric bucket boundaries ``lo, lo*factor, ...`` up to and
    including the first boundary ≥ ``hi`` — the fixed-boundary
    log-bucket ladder histograms observe into."""
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if factor <= 1.0:
        raise ValueError(f"factor must be > 1, got {factor}")
    out = [float(lo)]
    while out[-1] < hi:
        out.append(out[-1] * factor)
    return tuple(out)


#: Default latency ladder: 1 µs … ~16.8 s, factor 2 (25 boundaries).
LATENCY_BUCKETS = log_buckets(1e-6, 16.0, 2.0)
#: Default size/count ladder: 1 … ~1M, factor 4 (11 boundaries).
SIZE_BUCKETS = log_buckets(1.0, 1 << 20, 4.0)

_TYPE_BUCKETS = {"histogram": LATENCY_BUCKETS}


def _fmt_value(v: float) -> str:
    """Prometheus sample-value formatting: integers render bare, floats
    via repr (full precision round-trips)."""
    f = float(v)
    if math.isinf(f):
        return "+Inf" if f > 0 else "-Inf"
    if math.isnan(f):
        return "NaN"
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _escape_label(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(v: str) -> str:
    return v.replace("\\", "\\\\").replace("\n", "\\n")


class _SharedIdentity:
    """Mixin: copies and deep-copies return *self* (see module docstring
    — instruments ride inside deep-copied samplers and must stay
    shared)."""

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self


class Counter(_SharedIdentity):
    """A monotonically increasing counter (one labeled child)."""

    __slots__ = ("_lock", "_value")
    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self) -> None:
        with self._lock:
            self._value += 1.0

    def add(self, n: float) -> None:
        if n < 0:
            raise ValueError(f"counters only go up, got add({n})")
        with self._lock:
            self._value += n

    def _merge_to(self, value: float) -> None:
        """Telemetry-merge setter: adopt a remotely-computed cumulative
        total, clamped monotone (the merger's generation base accounting
        should already guarantee it never goes down; the clamp makes a
        reordered ship harmless instead of a regression)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Gauge(_SharedIdentity):
    """A settable value, or a zero-cost callback gauge
    (:meth:`set_function`) evaluated at read/render time."""

    __slots__ = ("_lock", "_value", "_fn")
    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn = None

    def set(self, v: float) -> None:
        with self._lock:
            self._value = float(v)
            self._fn = None

    def add(self, n: float) -> None:
        with self._lock:
            self._value += n

    def set_function(self, fn) -> None:
        """Make this gauge evaluate ``fn()`` on every read — the
        zero-hot-path-cost way to expose a live quantity (queue depth,
        fold generation).  A raising callback reads as NaN rather than
        killing exposition."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        fn = self._fn
        if fn is None:
            return self._value
        try:
            return float(fn())
        except Exception:
            return math.nan


def quantile_from_counts(bounds, counts, total: int, q: float) -> float:
    """The shared bucket-quantile estimator: linear interpolation inside
    the bucket holding the q-th observation (bucket-resolution accuracy;
    the overflow bucket clamps to the top boundary).  NaN when empty."""
    if not 0.0 < q <= 1.0:
        raise ValueError(f"need 0 < q <= 1, got {q}")
    if total == 0:
        return math.nan
    target = q * total
    cum = 0.0
    for i, c in enumerate(counts):
        if c == 0:
            continue
        prev = cum
        cum += c
        if cum >= target:
            lo = 0.0 if i == 0 else bounds[i - 1]
            hi = bounds[min(i, len(bounds) - 1)]
            return lo + (hi - lo) * ((target - prev) / c)
    return bounds[-1]  # pragma: no cover - unreachable


class Histogram(_SharedIdentity):
    """Fixed-boundary log-bucketed histogram with quantile estimation.

    ``observe(v)`` is one bisect into the frozen boundary tuple plus a
    three-field update under the instrument lock.  ``quantile(q)``
    interpolates linearly inside the bucket holding the q-th
    observation — exact to one bucket's width.
    """

    __slots__ = ("_lock", "bounds", "_counts", "_sum", "_count")
    enabled = True

    def __init__(self, bounds: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"bucket bounds must be sorted and unique: {bounds}")
        self._lock = threading.Lock()
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = overflow (+Inf)
        self._sum = 0.0
        self._count = 0

    def observe(self, v: float) -> None:
        i = bisect_left(self.bounds, v)
        with self._lock:
            self._counts[i] += 1
            self._sum += v
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> tuple[list[int], float, int]:
        """A consistent (bucket counts, sum, count) cut."""
        with self._lock:
            return list(self._counts), self._sum, self._count

    def _merge_to(self, counts, sum_, count) -> None:
        """Telemetry-merge setter: adopt a remotely-computed cumulative
        (bucket counts, sum, count) cut.  Rejects ladder-length
        mismatches loudly and, like :meth:`Counter._merge_to`, never
        steps the observation count backwards."""
        if len(counts) != len(self._counts):
            raise ValueError(
                f"histogram merge ladder mismatch: {len(counts)} cells "
                f"vs {len(self._counts)}"
            )
        with self._lock:
            if count >= self._count:
                self._counts = [int(c) for c in counts]
                self._sum = float(sum_)
                self._count = int(count)

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (``0 < q ≤ 1``) from the bucket
        counts; NaN when empty.  The overflow bucket clamps to the top
        boundary — size the ladder so the tail fits."""
        counts, __, total = self.snapshot()
        return quantile_from_counts(self.bounds, counts, total, q)

    def percentiles(self) -> dict:
        return {
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class _Noop(_SharedIdentity):
    """The shared do-nothing instrument a disabled registry hands out.
    One object plays every role — family and child, counter, gauge and
    histogram — so disabled instrumentation is a flag check away from
    free."""

    __slots__ = ()
    enabled = False
    bounds = ()
    count = 0
    sum = 0.0
    value = 0.0

    def inc(self) -> None:
        pass

    def add(self, n: float) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def set_function(self, fn) -> None:
        pass

    def observe(self, v: float) -> None:
        pass

    def labels(self, **kv) -> "_Noop":
        return self

    def total(self, **kv) -> float:
        return 0.0

    def children(self) -> dict:
        return {}

    def snapshot(self):
        return [], 0.0, 0

    def quantile(self, q: float) -> float:
        return math.nan

    def percentiles(self) -> dict:
        return {"p50": math.nan, "p90": math.nan, "p99": math.nan}


#: The shared no-op instrument (see :class:`_Noop`).
NOOP = _Noop()

_CTORS = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}

#: Past this many label-value combinations a family collapses new ones
#: into one ``_other`` child, so adversarial label cardinality (tenant
#: ids, say) cannot grow memory without bound.
MAX_CHILDREN = 1024


class Family(_SharedIdentity):
    """One named instrument family: label names + a child per observed
    label-value combination.  Label-less families delegate the
    instrument methods to their single implicit child, so
    ``registry.counter("x").inc()`` just works."""

    def __init__(self, name, type_, help_, label_names, buckets=None):
        self.name = name
        self.type = type_
        self.help = help_
        self.label_names = tuple(label_names)
        self.buckets = buckets
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}
        self._solo = self.labels() if not self.label_names else None

    enabled = True

    def _make_child(self):
        if self.type == "histogram":
            return Histogram(self.buckets if self.buckets else LATENCY_BUCKETS)
        return _CTORS[self.type]()

    def labels(self, **kv):
        """The child at this label-value combination (created on first
        use).  Keys must match the family's label names exactly."""
        if set(kv) != set(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, got {sorted(kv)}"
            )
        key = tuple(str(kv[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if len(self._children) >= MAX_CHILDREN:
                    key = ("_other",) * len(self.label_names)
                    child = self._children.get(key)
                    if child is not None:
                        return child
                child = self._make_child()
                self._children[key] = child
            return child

    def children(self) -> dict:
        with self._lock:
            return dict(self._children)

    def total(self, **label_filter) -> float:
        """Sum of child values (counters/gauges), optionally filtered by
        a label subset — e.g. ``shed.total(reason="backpressure")``."""
        for name in label_filter:
            if name not in self.label_names:
                raise ValueError(f"{self.name} has no label {name!r}")
        want = {k: str(v) for k, v in label_filter.items()}
        out = 0.0
        for key, child in self.children().items():
            values = dict(zip(self.label_names, key))
            if all(values[k] == v for k, v in want.items()):
                out += child.value
        return out

    # -- label-less convenience (delegate to the implicit child) ------------
    def inc(self) -> None:
        self._solo.inc()

    def add(self, n: float) -> None:
        self._solo.add(n)

    def set(self, v: float) -> None:
        self._solo.set(v)

    def set_function(self, fn) -> None:
        self._solo.set_function(fn)

    def observe(self, v: float) -> None:
        self._solo.observe(v)

    @property
    def value(self) -> float:
        return self._solo.value

    @property
    def count(self) -> int:
        return self._solo.count

    def quantile(self, q: float) -> float:
        return self._solo.quantile(q)

    def percentiles(self) -> dict:
        return self._solo.percentiles()

    def merged_percentiles(self, *others) -> dict:
        """Aggregate p50/p90/p99 across every child of a histogram
        family (all children share the family's bucket ladder, so their
        counts sum cell-wise).  Extra same-name families from *other*
        registries may be passed (``None`` entries are skipped) — how
        the serving layer folds the worker-shipped apply-latency
        histograms into one estimate — provided every child shares an
        identical bucket ladder; a mismatched ladder raises rather than
        silently blending incomparable cells.  Bucket-resolution
        approximations — see :func:`quantile_from_counts`."""
        merged: list[int] | None = None
        bounds: tuple[float, ...] = ()
        total = 0
        for family in (self, *others):
            if family is None:
                continue
            if family.type != "histogram":
                raise ValueError(
                    f"{family.name} is a {family.type}, not a histogram"
                )
            for child in family.children().values():
                counts, __, count = child.snapshot()
                if merged is not None and child.bounds != bounds:
                    raise ValueError(
                        f"cannot merge {family.name}: bucket ladder "
                        f"{child.bounds[:3]}…×{len(child.bounds)} differs from "
                        f"{bounds[:3]}…×{len(bounds)}"
                    )
                total += count
                bounds = child.bounds
                if merged is None:
                    merged = counts
                else:
                    merged = [a + b for a, b in zip(merged, counts)]
        if merged is None or total == 0:
            nan = math.nan
            return {"count": total, "p50": nan, "p90": nan, "p99": nan}
        return {
            "count": total,
            "p50": quantile_from_counts(bounds, merged, total, 0.50),
            "p90": quantile_from_counts(bounds, merged, total, 0.90),
            "p99": quantile_from_counts(bounds, merged, total, 0.99),
        }


class MetricsRegistry(_SharedIdentity):
    """A thread-safe name → :class:`Family` table with get-or-create
    semantics and Prometheus/JSON exposition.  ``enabled=False`` makes
    every accessor return the shared :data:`NOOP` instrument."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._families: dict[str, Family] = {}
        self._aux: list[MetricsRegistry] = []
        self._render_hook = None
        self._hook_running = False

    # -- auxiliary registries ------------------------------------------------
    def attach_auxiliary(self, registry: "MetricsRegistry") -> None:
        """Attach another registry whose families render *inside* this
        registry's exposition.  Same-name families across the primary
        and auxiliaries share one ``# HELP`` / ``# TYPE`` header (the
        Prometheus text format forbids duplicates) with their sample
        lines concatenated — how the serving layer folds the
        worker-telemetry mirror (same family names, extra ``worker``
        label) into one unified exposition."""
        if registry is self:
            raise ValueError("a registry cannot be its own auxiliary")
        with self._lock:
            if registry not in self._aux:
                self._aux.append(registry)

    def set_render_hook(self, hook) -> None:
        """Install a callback fired (best-effort, exceptions swallowed,
        non-reentrant) at the top of every exposition render — how the
        serving layer pulls fresh worker telemetry right before the
        registry is read, so ``repro-serve stats`` never shows a stale
        worker view.  Pass ``None`` to clear."""
        self._render_hook = hook

    def _run_render_hook(self) -> None:
        hook = self._render_hook
        if hook is None or self._hook_running:
            return
        self._hook_running = True
        try:
            hook()
        except Exception:
            pass
        finally:
            self._hook_running = False

    def _instrument(self, name, type_, help_, labels, buckets=None):
        if not self.enabled:
            return NOOP
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = Family(name, type_, help_, labels, buckets)
                self._families[name] = family
                return family
        if family.type != type_ or family.label_names != tuple(labels):
            raise ValueError(
                f"metric {name!r} already registered as {family.type} with "
                f"labels {family.label_names}; asked for {type_} with "
                f"{tuple(labels)}"
            )
        return family

    def counter(self, name: str, help: str = "", labels=()) -> Family:
        return self._instrument(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels=()) -> Family:
        return self._instrument(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "", labels=(), buckets=None) -> Family:
        return self._instrument(name, "histogram", help, labels, buckets)

    def get(self, name: str) -> Family | None:
        with self._lock:
            return self._families.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._families)

    # -- exposition ---------------------------------------------------------
    def _families_sorted(self) -> list[Family]:
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def _family_groups(self) -> list[tuple[str, list[Family]]]:
        """Exposition order: sorted family names across the primary and
        every auxiliary registry, each name paired with its families
        (primary first).  With no auxiliaries this is exactly the
        pre-auxiliary single-registry order."""
        with self._lock:
            regs = [self, *self._aux]
        names = sorted({name for reg in regs for name in reg.names()})
        return [
            (name, [f for f in (reg.get(name) for reg in regs) if f is not None])
            for name in names
        ]

    @staticmethod
    def _labels_str(label_names, key, extra="") -> str:
        parts = [
            f'{n}="{_escape_label(v)}"' for n, v in zip(label_names, key)
        ]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    @classmethod
    def _family_prom_lines(cls, family: Family) -> list[str]:
        """One family's sample lines (no HELP/TYPE header — the caller
        owns headers so same-name families across registries share
        exactly one)."""
        lines: list[str] = []
        for key, child in sorted(family.children().items()):
            labels = cls._labels_str(family.label_names, key)
            if family.type in ("counter", "gauge"):
                lines.append(f"{family.name}{labels} {_fmt_value(child.value)}")
                continue
            counts, total_sum, count = child.snapshot()
            cum = 0
            for bound, c in zip(child.bounds, counts):
                cum += c
                le = cls._labels_str(
                    family.label_names, key, f'le="{_fmt_value(bound)}"'
                )
                lines.append(f"{family.name}_bucket{le} {cum}")
            le = cls._labels_str(family.label_names, key, 'le="+Inf"')
            lines.append(f"{family.name}_bucket{le} {count}")
            lines.append(f"{family.name}_sum{labels} {_fmt_value(total_sum)}")
            lines.append(f"{family.name}_count{labels} {count}")
        return lines

    def render_prometheus(self) -> str:
        """The whole registry — plus any attached auxiliaries — in
        Prometheus text format 0.0.4.  Families with no children yet
        still render their ``# HELP`` / ``# TYPE`` header, so an
        exposition check can assert every catalogued instrument is
        present before traffic has exercised it; same-name families
        across registries render one header with all their samples."""
        self._run_render_hook()
        lines: list[str] = []
        for __, families in self._family_groups():
            head = families[0]
            lines.append(f"# HELP {head.name} {_escape_help(head.help)}")
            lines.append(f"# TYPE {head.name} {head.type}")
            for family in families:
                lines.extend(self._family_prom_lines(family))
        return "\n".join(lines) + ("\n" if lines else "")

    @staticmethod
    def _family_json_samples(family: Family) -> list[dict]:
        samples = []
        for key, child in sorted(family.children().items()):
            labels = dict(zip(family.label_names, key))
            if family.type in ("counter", "gauge"):
                value = child.value
                samples.append({"labels": labels, "value": value})
            else:
                counts, total_sum, count = child.snapshot()
                pct = child.percentiles()
                samples.append(
                    {
                        "labels": labels,
                        "count": count,
                        "sum": total_sum,
                        "buckets": {
                            _fmt_value(b): c
                            for b, c in zip(child.bounds, counts)
                        },
                        "overflow": counts[-1],
                        **{
                            k: (None if math.isnan(v) else v)
                            for k, v in pct.items()
                        },
                    }
                )
        return samples

    def render_json(self) -> dict:
        """The whole registry — plus attached auxiliaries — as one
        JSON-serializable dict (histograms carry bucket counts plus
        estimated p50/p90/p99); same-name families across registries
        pool their samples under one entry."""
        self._run_render_hook()
        out: dict = {}
        for name, families in self._family_groups():
            head = families[0]
            samples: list[dict] = []
            for family in families:
                samples.extend(self._family_json_samples(family))
            out[name] = {
                "type": head.type,
                "help": head.help,
                "labels": list(head.label_names),
                "samples": samples,
            }
        return out

    def render_json_text(self) -> str:
        return json.dumps(self.render_json(), indent=2, sort_keys=True) + "\n"


# -- the default / current registry -----------------------------------------

_GLOBAL = MetricsRegistry(enabled=True)
_SCOPES = threading.local()


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-global default registry; returns the old one."""
    global _GLOBAL
    old, _GLOBAL = _GLOBAL, registry
    return old


def current_registry() -> MetricsRegistry:
    """The innermost :func:`use_registry` scope on this thread, else the
    process-global default."""
    stack = getattr(_SCOPES, "stack", None)
    return stack[-1] if stack else _GLOBAL


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Install ``registry`` as the current registry for this thread's
    scope — how a service routes the metrics of components it builds
    (engine shards, window banks) into its own registry."""
    stack = getattr(_SCOPES, "stack", None)
    if stack is None:
        stack = _SCOPES.stack = []
    stack.append(registry)
    try:
        yield registry
    finally:
        stack.pop()
