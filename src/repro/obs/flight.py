"""The flight recorder: one debug bundle per incident.

:func:`write_bundle` freezes a serving instance's observable state into
a single zip so a field incident or CI failure is reproducible from one
artifact:

* ``manifest.json`` — bundle format version + entry list
* ``config.json`` — the sampler config the service was built with
* ``stats.json`` — the ``stats()`` endpoint (ingest/query/engine/
  compaction counters + derived latency quantiles)
* ``metrics.json`` / ``metrics.prom`` — full registry expositions
* ``health.json`` — the probe report at dump time
* ``audit.json`` — audit status + recent verdict history
* ``trace.jsonl`` — the ambient trace ring (empty when tracing is off)
* ``trace_chrome.json`` — merged parent+worker Chrome trace (distinct
  pids, clock-aligned; parent-only in thread mode)
* ``workers/worker-NN-metrics.json`` / ``-trace.jsonl`` — per-worker
  telemetry: shipping/clock status with the raw unmerged metric
  snapshot, and the shipped span records (process mode only)
* ``environment.json`` — python/numpy/platform/pid/time
* ``shards/shard-NNN.rprs`` — per-shard snapshot envelopes
  (:func:`repro.engine.state.save_state` bytes, restorable with
  ``load_state``)

Everything is best-effort *except* the manifest: a section that raises
is recorded as an ``errors`` entry instead of killing the dump — a
flight recorder that crashes during the crash is useless.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
import zipfile

import numpy as np

from repro.obs.trace import current_tracer

__all__ = ["BUNDLE_FORMAT", "write_bundle"]

BUNDLE_FORMAT = 1


def _jsonable(obj):
    """A json.dumps ``default`` that copes with numpy scalars/arrays and
    anything else by falling back to ``repr``."""
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, float) and obj != obj:  # pragma: no cover
        return None
    return repr(obj)


def _dumps(payload) -> str:
    return json.dumps(payload, indent=2, sort_keys=True, default=_jsonable)


def _environment() -> dict:
    return {
        "python": sys.version,
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "pid": os.getpid(),
        "wall_time": time.time(),
        "monotonic": time.monotonic(),
    }


def write_bundle(service, path) -> dict:
    """Write the debug bundle for ``service`` to ``path`` (a zip file);
    returns the manifest dict (``entries`` + ``errors``)."""
    entries: list[str] = []
    errors: dict[str, str] = {}

    def _add(zf: zipfile.ZipFile, name: str, build) -> None:
        try:
            data = build()
        except Exception as exc:
            errors[name] = f"{type(exc).__name__}: {exc}"
            return
        if isinstance(data, str):
            data = data.encode("utf-8")
        zf.writestr(name, data)
        entries.append(name)

    with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as zf:
        _add(zf, "config.json", lambda: _dumps(service.config))
        _add(zf, "stats.json", lambda: _dumps(service.stats()))
        _add(
            zf,
            "metrics.json",
            lambda: _dumps(service.metrics.render_json()),
        )
        _add(zf, "metrics.prom", lambda: service.metrics.render_prometheus())
        _add(
            zf,
            "health.json",
            lambda: _dumps(service.health().to_dict()),
        )
        _add(zf, "audit.json", lambda: _dumps(service.audit_status()))

        def _trace() -> str:
            import io

            buf = io.StringIO()
            current_tracer().export_jsonl(buf)
            return buf.getvalue()

        _add(zf, "trace.jsonl", _trace)
        # Merged parent+worker Chrome trace (distinct pids, clock-aligned)
        # when the service exports one; the per-worker sections below hold
        # each worker's raw telemetry (unmerged metric snapshot + spans).
        export_chrome = getattr(service, "export_chrome", None)
        if callable(export_chrome):

            def _chrome() -> str:
                import io

                buf = io.StringIO()
                export_chrome(buf)
                return buf.getvalue()

            _add(zf, "trace_chrome.json", _chrome)
        info_fn = getattr(service, "worker_telemetry_info", None)
        if callable(info_fn):
            try:
                worker_info = info_fn() or []
            except Exception as exc:
                errors["workers/"] = f"{type(exc).__name__}: {exc}"
                worker_info = []
            for entry in worker_info:
                idx = int(entry.get("worker", 0))
                meta = {k: v for k, v in entry.items() if k != "trace"}
                _add(
                    zf,
                    f"workers/worker-{idx:02d}-metrics.json",
                    lambda meta=meta: _dumps(meta),
                )
                _add(
                    zf,
                    f"workers/worker-{idx:02d}-trace.jsonl",
                    lambda entry=entry: "".join(
                        json.dumps(rec, sort_keys=True, default=_jsonable) + "\n"
                        for rec in entry.get("trace") or []
                    ),
                )
        _add(zf, "environment.json", lambda: _dumps(_environment()))
        try:
            blobs = service.snapshot_shards_bytes()
        except Exception as exc:
            errors["shards/"] = f"{type(exc).__name__}: {exc}"
            blobs = []
        for i, blob in enumerate(blobs):
            name = f"shards/shard-{i:03d}.rprs"
            zf.writestr(name, blob)
            entries.append(name)
        manifest = {
            "format": BUNDLE_FORMAT,
            "entries": sorted(entries),
            "errors": errors,
        }
        zf.writestr("manifest.json", _dumps(manifest))
    return manifest
