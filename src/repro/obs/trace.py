"""Lightweight spans: ring-buffered structured events + JSONL export.

A span times one named operation and records where it ended up::

    from repro.obs import span

    with span("engine.fold", shards=8) as sp:
        ...
        sp.set(regime="rebase")        # attach attrs discovered mid-span

On exit the span appends one :class:`SpanEvent` — name, start, wall
duration, outcome (``"ok"`` or the exception type's name; exceptions
propagate untouched), and its attributes — to the ambient tracer's ring
buffer (a bounded ``deque``: old events fall off, recording never
blocks and never grows).

The ambient tracer is **disabled by default**: ``span(...)`` then
returns a shared no-op context manager, so permanently-instrumented
hot paths cost one flag check plus a kwargs dict.  Enable tracing by
installing a live :class:`Tracer` (:func:`set_default_tracer`) or, in
tests, with the :class:`TraceRecorder` harness::

    with TraceRecorder() as rec:
        service.submit(batch)
    assert rec.names().count("serving.apply") >= 1

Export for offline analysis is JSON-lines —
:meth:`Tracer.export_jsonl` writes one JSON object per event — or the
Chrome trace-event format (:meth:`Tracer.export_chrome`), loadable in
Perfetto / ``chrome://tracing``.  ``python -m repro.obs.trace`` converts
a JSONL export to either a summary table or a Chrome trace
(``--chrome out.json``).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import NamedTuple

__all__ = [
    "SpanEvent",
    "TraceRecorder",
    "Tracer",
    "current_tracer",
    "export_chrome_merged",
    "set_default_tracer",
    "span",
]


class SpanEvent(NamedTuple):
    """One finished span."""

    name: str
    start_ns: int  # perf_counter_ns at entry (monotonic ordering key)
    duration_ns: int
    outcome: str  # "ok" or the raising exception type's name
    attrs: dict
    thread: str = ""  # recording thread's name (Chrome trace lane)

    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "start_ns": self.start_ns,
                "duration_us": self.duration_ns / 1e3,
                "outcome": self.outcome,
                "attrs": self.attrs,
                "thread": self.thread,
            },
            sort_keys=True,
        )


class _NoopSpan:
    """The shared do-nothing span a disabled tracer returns."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class _Span:
    __slots__ = ("_tracer", "name", "attrs", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (e.g. the fold regime,
        bytes reclaimed)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter_ns() - self._t0
        outcome = "ok" if exc_type is None else exc_type.__name__
        self._tracer._record(
            SpanEvent(
                self.name,
                self._t0,
                duration,
                outcome,
                self.attrs,
                threading.current_thread().name,
            )
        )
        return False  # never swallow


class Tracer:
    """A ring buffer of :class:`SpanEvent`\\ s.

    ``capacity`` bounds retained events (oldest drop first);
    ``enabled=False`` makes :meth:`span` return the shared no-op span.
    ``deque.append`` is atomic under CPython, so recording takes no
    lock; the snapshot/clear/export paths do.
    """

    def __init__(self, capacity: int = 8192, enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be ≥ 1, got {capacity}")
        self.enabled = bool(enabled)
        self.capacity = capacity
        self._events: deque[SpanEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.dropped_hint = 0  # events recorded beyond capacity (approx)
        self._recorded = 0
        self._dropped_counter = None

    def bind_dropped_counter(self, counter) -> None:
        """Mirror ring-buffer drops into a real metric (the catalog's
        ``repro_trace_dropped_total``): each event recorded beyond
        capacity evicts exactly one older event, so each is one drop."""
        self._dropped_counter = counter

    def span(self, name: str, **attrs):
        """A context manager timing one operation (no-op when the tracer
        is disabled)."""
        if not self.enabled:
            return NOOP_SPAN
        return _Span(self, name, attrs)

    def _record(self, event: SpanEvent) -> None:
        self._recorded += 1
        self._events.append(event)
        if self._recorded > self.capacity:
            self.dropped_hint = self._recorded - self.capacity
            if self._dropped_counter is not None:
                self._dropped_counter.inc()

    def events(self) -> list[SpanEvent]:
        """A snapshot of the retained events, oldest first."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._recorded = 0
            self.dropped_hint = 0

    def export_jsonl(self, path_or_file) -> int:
        """Write the retained events as JSON lines (one object per
        event) to a path or writable file object; returns the number of
        events written."""
        events = self.events()
        payload = "".join(event.to_json() + "\n" for event in events)
        if hasattr(path_or_file, "write"):
            path_or_file.write(payload)
        else:
            with open(path_or_file, "w", encoding="utf-8") as fh:
                fh.write(payload)
        return len(events)

    def export_chrome(self, path_or_file) -> int:
        """Write the retained events as a Chrome trace-event JSON file
        (loadable in Perfetto / ``chrome://tracing``); returns the
        number of span events written."""
        records = [json.loads(event.to_json()) for event in self.events()]
        payload = json.dumps(_chrome_payload(records))
        if hasattr(path_or_file, "write"):
            path_or_file.write(payload)
        else:
            with open(path_or_file, "w", encoding="utf-8") as fh:
                fh.write(payload)
        return len(records)


# -- the ambient tracer ------------------------------------------------------

_DEFAULT = Tracer(enabled=False)


def current_tracer() -> Tracer:
    return _DEFAULT


def set_default_tracer(tracer: Tracer) -> Tracer:
    """Install the ambient tracer every module-level :func:`span` call
    reports to; returns the previous one."""
    global _DEFAULT
    old, _DEFAULT = _DEFAULT, tracer
    return old


def span(name: str, **attrs):
    """A span on the ambient tracer (a shared no-op while tracing is
    disabled — the default)."""
    tracer = _DEFAULT
    if not tracer.enabled:
        return NOOP_SPAN
    return _Span(tracer, name, attrs)


class TraceRecorder(Tracer):
    """The test harness: a live tracer that installs itself as the
    ambient tracer for a ``with`` scope and offers lookup helpers.

    ::

        with TraceRecorder() as rec:
            engine.sample()
        assert rec.spans("engine.fold")[0].attrs["regime"] == "scratch"
    """

    def __init__(self, capacity: int = 65536) -> None:
        super().__init__(capacity=capacity, enabled=True)
        self._previous: Tracer | None = None

    def __enter__(self) -> "TraceRecorder":
        self._previous = set_default_tracer(self)
        return self

    def __exit__(self, *exc_info) -> None:
        set_default_tracer(self._previous)
        self._previous = None

    def names(self) -> list[str]:
        return [event.name for event in self.events()]

    def spans(self, name: str) -> list[SpanEvent]:
        return [event for event in self.events() if event.name == name]

    def durations_us(self, name: str) -> list[float]:
        return [event.duration_ns / 1e3 for event in self.spans(name)]

    def outcomes(self, name: str) -> list[str]:
        return [event.outcome for event in self.spans(name)]


# -- Chrome trace-event conversion + CLI -------------------------------------


def _chrome_events(records, *, pid=0, offset_ns=0, tid_base=0):
    """JSONL-export records → (span events, thread-metadata events) for
    one process track.  ``offset_ns`` is subtracted from every
    ``start_ns`` — the worker-minus-parent clock offset — so spans from
    different perf-counter origins land on one timeline."""
    tids: dict[str, int] = {}
    span_events = []
    for rec in records:
        thread = rec.get("thread") or "main"
        tid = tids.setdefault(thread, tid_base + len(tids))
        args = dict(rec.get("attrs") or {})
        args["outcome"] = rec.get("outcome", "ok")
        span_events.append(
            {
                "name": rec["name"],
                "ph": "X",
                "ts": (rec["start_ns"] - offset_ns) / 1e3,
                "dur": rec.get("duration_us", 0.0),
                "pid": pid,
                "tid": tid,
                "cat": "repro",
                "args": args,
            }
        )
    meta_events = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": thread},
        }
        for thread, tid in tids.items()
    ]
    return span_events, meta_events


def _chrome_payload(records: list[dict], *, pid: int = 0, offset_ns: int = 0) -> dict:
    """JSONL-export records → a Chrome trace-event object.

    Complete events (``ph="X"``) carry microsecond start/duration; one
    thread lane per recording thread, named via ``thread_name``
    metadata events.
    """
    span_events, meta_events = _chrome_events(records, pid=pid, offset_ns=offset_ns)
    return {"traceEvents": span_events + meta_events, "displayTimeUnit": "ms"}


def export_chrome_merged(path_or_file, groups) -> int:
    """Merge span records from several processes into one Chrome trace.

    ``groups`` is a list of ``{"name", "pid", "offset_ns", "records"}``
    dicts — one per process track.  ``records`` are JSONL-export record
    dicts (:meth:`SpanEvent.to_json` shape); each group's ``offset_ns``
    (its perf-counter clock minus the reference clock, estimated from
    ping-RTT midpoints by the process plane) is subtracted so all
    tracks share one timeline.  Emits ``process_name`` metadata per
    group and sorts span events by timestamp, so per-track timestamps
    are monotone.  Returns the number of span events written.
    """
    span_events: list[dict] = []
    meta_events: list[dict] = []
    for group in groups:
        pid = int(group.get("pid") or 0)
        spans_, metas = _chrome_events(
            group.get("records") or [],
            pid=pid,
            offset_ns=int(group.get("offset_ns") or 0),
        )
        span_events.extend(spans_)
        meta_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": str(group.get("name") or f"pid{pid}")},
            }
        )
        meta_events.extend(metas)
    span_events.sort(key=lambda e: e["ts"])
    payload = json.dumps(
        {"traceEvents": span_events + meta_events, "displayTimeUnit": "ms"}
    )
    if hasattr(path_or_file, "write"):
        path_or_file.write(payload)
    else:
        with open(path_or_file, "w", encoding="utf-8") as fh:
            fh.write(payload)
    return len(span_events)


def main(argv=None) -> int:
    """``python -m repro.obs.trace``: inspect or convert a JSONL trace
    export.  Without ``--chrome`` prints a per-span summary table; with
    ``--chrome OUT`` writes a Perfetto-loadable Chrome trace."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.trace",
        description="Summarize or convert a repro trace JSONL export.",
    )
    parser.add_argument("input", help="JSONL file written by export_jsonl")
    parser.add_argument(
        "--chrome",
        metavar="OUT",
        help="write a Chrome trace-event JSON file instead of a summary",
    )
    args = parser.parse_args(argv)
    records = []
    with open(args.input, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(_chrome_payload(records)))
        print(f"wrote {len(records)} events to {args.chrome}")
        return 0
    by_name: dict[str, list[float]] = {}
    errors: dict[str, int] = {}
    for rec in records:
        by_name.setdefault(rec["name"], []).append(rec.get("duration_us", 0.0))
        if rec.get("outcome", "ok") != "ok":
            errors[rec["name"]] = errors.get(rec["name"], 0) + 1
    print(f"{'span':<32} {'count':>8} {'total_ms':>10} {'mean_us':>10} {'errors':>7}")
    for name in sorted(by_name):
        durs = by_name[name]
        print(
            f"{name:<32} {len(durs):>8} {sum(durs) / 1e3:>10.2f} "
            f"{sum(durs) / len(durs):>10.1f} {errors.get(name, 0):>7}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
