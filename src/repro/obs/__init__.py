"""repro.obs — zero-dependency metrics, tracing, and profiling.

The observability substrate every serving-path layer reports into:

* :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / log-bucketed
  ``Histogram`` instruments grouped in a thread-safe
  :class:`MetricsRegistry` with label support, Prometheus text
  (format 0.0.4) and JSON exposition, and a process-global default
  registry.  A *disabled* registry hands out shared no-op instruments,
  so instrumented code compiles down to a flag check — the
  bitwise-determinism contracts and perf gates are untouched.
* :mod:`repro.obs.trace` — lightweight span API
  (``span("engine.fold", shard=3)``) recording wall time + outcome into
  a ring buffer of structured events, a JSON-lines exporter for offline
  analysis, and a :class:`TraceRecorder` test harness.  The ambient
  tracer is disabled by default; spans then cost one flag check.
* :mod:`repro.obs.catalog` — the canonical metric-name catalog (the
  README "Observability" table is generated from it, and the test suite
  asserts a served workload's exposition carries every entry).
* :mod:`repro.obs.promcheck` — a Prometheus text-format line checker
  (``python -m repro.obs.promcheck``), used by the CI serving-smoke job
  to validate the ``repro-serve stats --format prom`` exposition.

Who reports where: :class:`~repro.serving.SamplerService` owns one
registry per service (its ``stats()`` endpoint is built on top of it);
:class:`~repro.engine.ShardedSamplerEngine` and
:class:`~repro.windows.WindowBank` default to the *current* registry —
the service installs its own while building the engine, so a served
engine's fold/window metrics land in the service registry, while
directly-constructed engines and banks report to the process-global
default.
"""

from repro.obs.audit import (
    AuditConfig,
    AuditEvent,
    Auditor,
    SequentialMonitor,
    ShadowTruth,
    audit_profile,
    register_audit_profile,
)
from repro.obs.catalog import METRIC_CATALOG
from repro.obs.flight import write_bundle
from repro.obs.health import (
    BurnRateTracker,
    HealthChecker,
    HealthReport,
    ProbeResult,
)
from repro.obs.metrics import (
    NOOP,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    log_buckets,
    quantile_from_counts,
    set_default_registry,
    use_registry,
)
from repro.obs.trace import (
    SpanEvent,
    TraceRecorder,
    Tracer,
    current_tracer,
    set_default_tracer,
    span,
)

__all__ = [
    "METRIC_CATALOG",
    "NOOP",
    "AuditConfig",
    "AuditEvent",
    "Auditor",
    "BurnRateTracker",
    "Counter",
    "Gauge",
    "HealthChecker",
    "HealthReport",
    "Histogram",
    "MetricsRegistry",
    "ProbeResult",
    "SequentialMonitor",
    "ShadowTruth",
    "SpanEvent",
    "TraceRecorder",
    "Tracer",
    "audit_profile",
    "current_registry",
    "current_tracer",
    "log_buckets",
    "quantile_from_counts",
    "register_audit_profile",
    "set_default_registry",
    "set_default_tracer",
    "span",
    "use_registry",
    "write_bundle",
]
