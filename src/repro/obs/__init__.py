"""repro.obs — zero-dependency metrics, tracing, and profiling.

The observability substrate every serving-path layer reports into:

* :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / log-bucketed
  ``Histogram`` instruments grouped in a thread-safe
  :class:`MetricsRegistry` with label support, Prometheus text
  (format 0.0.4) and JSON exposition, and a process-global default
  registry.  A *disabled* registry hands out shared no-op instruments,
  so instrumented code compiles down to a flag check — the
  bitwise-determinism contracts and perf gates are untouched.
* :mod:`repro.obs.trace` — lightweight span API
  (``span("engine.fold", shard=3)``) recording wall time + outcome into
  a ring buffer of structured events, a JSON-lines exporter for offline
  analysis, and a :class:`TraceRecorder` test harness.  The ambient
  tracer is disabled by default; spans then cost one flag check.
* :mod:`repro.obs.telemetry` — serializable registry snapshots/deltas
  and the per-worker merge state (:class:`WorkerTelemetry`) behind the
  cross-process telemetry plane: worker processes ship their registries
  over the frame transport and the parent folds them into one unified,
  ``worker``-labeled exposition with restart-proof base accounting.
* :mod:`repro.obs.catalog` — the canonical metric-name catalog (the
  README "Observability" table is generated from it, and the test suite
  asserts a served workload's exposition carries every entry).
* :mod:`repro.obs.promcheck` — a Prometheus text-format line checker
  (``python -m repro.obs.promcheck``), used by the CI serving-smoke job
  to validate the ``repro-serve stats --format prom`` exposition.

Who reports where: :class:`~repro.serving.SamplerService` owns one
registry per service (its ``stats()`` endpoint is built on top of it);
:class:`~repro.engine.ShardedSamplerEngine` and
:class:`~repro.windows.WindowBank` default to the *current* registry —
the service installs its own while building the engine, so a served
engine's fold/window metrics land in the service registry, while
directly-constructed engines and banks report to the process-global
default.
"""

from repro.obs.audit import (
    AuditConfig,
    AuditEvent,
    Auditor,
    SequentialMonitor,
    ShadowTruth,
    audit_profile,
    register_audit_profile,
)
from repro.obs.catalog import METRIC_CATALOG
from repro.obs.flight import write_bundle
from repro.obs.health import (
    BurnRateTracker,
    HealthChecker,
    HealthReport,
    ProbeResult,
    freshness_status,
)
from repro.obs.metrics import (
    NOOP,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    log_buckets,
    quantile_from_counts,
    set_default_registry,
    use_registry,
)
from repro.obs.telemetry import (
    WorkerTelemetry,
    apply_delta,
    render_snapshot_prometheus,
    snapshot_delta,
    snapshot_registry,
)
from repro.obs.trace import (
    SpanEvent,
    TraceRecorder,
    Tracer,
    current_tracer,
    export_chrome_merged,
    set_default_tracer,
    span,
)

__all__ = [
    "METRIC_CATALOG",
    "NOOP",
    "AuditConfig",
    "AuditEvent",
    "Auditor",
    "BurnRateTracker",
    "Counter",
    "Gauge",
    "HealthChecker",
    "HealthReport",
    "Histogram",
    "MetricsRegistry",
    "ProbeResult",
    "SequentialMonitor",
    "ShadowTruth",
    "SpanEvent",
    "TraceRecorder",
    "Tracer",
    "WorkerTelemetry",
    "apply_delta",
    "audit_profile",
    "current_registry",
    "current_tracer",
    "export_chrome_merged",
    "freshness_status",
    "log_buckets",
    "quantile_from_counts",
    "register_audit_profile",
    "render_snapshot_prometheus",
    "set_default_registry",
    "set_default_tracer",
    "snapshot_delta",
    "snapshot_registry",
    "span",
    "use_registry",
    "write_bundle",
]
