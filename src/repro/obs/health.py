"""Readiness/liveness probes and multi-window SLO burn rate.

Health is a *derived* signal: every probe reads state the serving stack
already maintains — queue occupancy, the query plane's latched refresh
error, fold staleness, worker apply failures, the audit plane's verdict
— and the SLO probe reads the latency histograms PR 6 installed.  The
checker computes, it never mutates; calling :meth:`HealthChecker.check`
twice in a row is safe and cheap.

Semantics follow the usual split:

* **live** — the process is worth keeping: the service is open and its
  ingest workers haven't died.  A not-live verdict means restart.
* **ready** — the service should receive traffic: live, and no probe is
  failing.  Saturated queues, a latched watermark-skew error, a stale
  fold, a flagged audit, or a burning SLO all take the instance out of
  rotation without restarting it.

The SLO probe is the standard multi-window burn-rate rule (two windows
so a short spike alone doesn't page): with objective latency ``T`` and
target success ratio ``slo``, the burn rate over a window is
``(fraction of observations over T) / (1 − slo)``; the probe fails when
*both* the short and long windows burn ≥ 14.4 (the "2% of a 30-day
budget in one hour" threshold) and warns at ≥ 6.  Windows are built
from periodic cuts of the cumulative histograms, so the tracker needs
:meth:`BurnRateTracker.observe` called on a cadence (the service ticker
does this; standalone checks degrade to "pass — insufficient data").

Probe results land in the ``repro_health_status`` gauge (per-probe
children plus ``ready`` / ``live``), so health history is scrapeable
alongside everything else.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

__all__ = [
    "BurnRateTracker",
    "HealthChecker",
    "HealthReport",
    "ProbeResult",
    "STATUS_VALUES",
    "freshness_status",
]

#: Probe status → gauge value.
STATUS_VALUES = {"pass": 1.0, "warn": 0.5, "fail": 0.0}

#: Multi-window burn-rate thresholds (Google SRE workbook's fast-burn
#: page rule): fail at 14.4× budget burn, warn at 6×.
BURN_FAIL = 14.4
BURN_WARN = 6.0


@dataclass(frozen=True)
class ProbeResult:
    """One probe's verdict."""

    name: str
    status: str  # "pass" | "warn" | "fail"
    detail: str = ""
    value: float | None = None

    def __post_init__(self) -> None:
        if self.status not in STATUS_VALUES:
            raise ValueError(f"unknown probe status {self.status!r}")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "detail": self.detail,
            "value": self.value,
        }


@dataclass(frozen=True)
class HealthReport:
    """The aggregate: every probe, plus the ready/live verdicts."""

    probes: tuple[ProbeResult, ...]
    live: bool
    ready: bool

    def probe(self, name: str) -> ProbeResult | None:
        for result in self.probes:
            if result.name == name:
                return result
        return None

    def to_dict(self) -> dict:
        return {
            "live": self.live,
            "ready": self.ready,
            "probes": [p.to_dict() for p in self.probes],
        }


def freshness_status(
    age_seconds: float | None, warn_after: float, fail_after: float | None = None
) -> str:
    """Map a signal's age to a probe status: ``None`` (never seen) or an
    age past ``fail_after`` fails, past ``warn_after`` warns, else
    passes.  With ``fail_after=None`` staleness never escalates past
    warn — the shape the workers probe wants for telemetry freshness,
    where a slow shipper should drain-warn, not restart."""
    if age_seconds is None:
        return "fail" if fail_after is not None else "warn"
    if fail_after is not None and age_seconds >= fail_after:
        return "fail"
    if age_seconds >= warn_after:
        return "warn"
    return "pass"


class _Cut:
    __slots__ = ("t", "count", "over")

    def __init__(self, t: float, count: int, over: int) -> None:
        self.t = t
        self.count = count
        self.over = over


class BurnRateTracker:
    """Multi-window SLO burn rate from cumulative latency histograms.

    ``objective_seconds`` is the latency objective ``T``; an observation
    counts against the error budget when it lands in a bucket wholly
    above ``T`` (bucket-resolution: choose ``T`` on a bucket boundary
    for exactness).  :meth:`observe` takes a cut of the histogram
    family's cumulative counters; burn rates are computed between the
    newest cut and the oldest cut inside each window.
    """

    def __init__(
        self,
        objective_seconds: float,
        slo: float = 0.99,
        short_window: float = 60.0,
        long_window: float = 600.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 0 < slo < 1:
            raise ValueError(f"slo must be in (0, 1), got {slo}")
        if not 0 < short_window < long_window:
            raise ValueError("need 0 < short_window < long_window")
        self.objective_seconds = float(objective_seconds)
        self.slo = float(slo)
        self.short_window = float(short_window)
        self.long_window = float(long_window)
        self._clock = clock
        # Cuts older than the long window get pruned; cadence-bounded.
        self._cuts: deque[_Cut] = deque(maxlen=4096)

    def cut_from_family(self, family) -> tuple[int, int]:
        """(total, over-objective) observations across a histogram
        family's children, from their cumulative bucket counts."""
        total = 0
        over = 0
        for child in family.children().values():
            counts, __, count = child.snapshot()
            total += count
            for bound, c in zip(child.bounds, counts):
                if bound > self.objective_seconds:
                    over += c
            over += counts[-1]  # overflow bucket is above any objective
        return total, over

    def observe(self, family) -> None:
        """Record one cut of the histogram family (call on a cadence)."""
        count, over = 0, 0
        if family is not None:
            count, over = self.cut_from_family(family)
        now = self._clock()
        self._cuts.append(_Cut(now, count, over))
        horizon = now - self.long_window - 1.0
        while len(self._cuts) > 2 and self._cuts[0].t < horizon:
            self._cuts.popleft()

    def _burn(self, window: float) -> float | None:
        """Burn rate over the trailing ``window`` seconds; None when the
        cuts don't yet span it or no traffic arrived inside it."""
        if len(self._cuts) < 2:
            return None
        newest = self._cuts[-1]
        base = None
        for cut in self._cuts:
            if cut.t <= newest.t - window:
                base = cut
            else:
                break
        if base is None:
            return None
        d_count = newest.count - base.count
        if d_count <= 0:
            return None
        d_over = newest.over - base.over
        return (d_over / d_count) / (1.0 - self.slo)

    def probe(self, name: str = "slo_burn") -> ProbeResult:
        short = self._burn(self.short_window)
        long = self._burn(self.long_window)
        if short is None or long is None:
            return ProbeResult(
                name, "pass", "insufficient burn-rate history", None
            )
        worst = max(short, long)
        detail = f"burn short={short:.2f}x long={long:.2f}x (slo={self.slo})"
        # Both windows must burn — the long window filters out spikes,
        # the short window proves the burn is still happening.
        if short >= BURN_FAIL and long >= BURN_FAIL:
            return ProbeResult(name, "fail", detail, worst)
        if short >= BURN_WARN and long >= BURN_WARN:
            return ProbeResult(name, "warn", detail, worst)
        return ProbeResult(name, "pass", detail, worst)


class HealthChecker:
    """Run a set of probe callables into one :class:`HealthReport`.

    ``probes`` maps name → zero-arg callable returning a
    :class:`ProbeResult`; a raising probe is itself a failure (detail =
    the exception).  ``liveness_names`` marks the probes whose failure
    means *restart* rather than *drain* — every other failing probe
    only takes readiness away.
    """

    def __init__(
        self,
        probes: dict[str, Callable[[], ProbeResult]],
        liveness_names: tuple[str, ...] = (),
        status_gauge=None,
    ) -> None:
        self._probes = dict(probes)
        self._liveness = tuple(liveness_names)
        self._gauge = status_gauge

    def check(self) -> HealthReport:
        results = []
        for name, fn in self._probes.items():
            try:
                result = fn()
            except Exception as exc:  # a broken probe is a failing probe
                result = ProbeResult(
                    name, "fail", f"probe raised: {type(exc).__name__}: {exc}"
                )
            if result.name != name:
                result = ProbeResult(
                    name, result.status, result.detail, result.value
                )
            results.append(result)
        live = all(
            r.status != "fail" for r in results if r.name in self._liveness
        )
        ready = live and all(r.status != "fail" for r in results)
        if self._gauge is not None:
            for r in results:
                self._gauge.labels(probe=r.name).set(STATUS_VALUES[r.status])
            self._gauge.labels(probe="live").set(1.0 if live else 0.0)
            self._gauge.labels(probe="ready").set(1.0 if ready else 0.0)
        return HealthReport(tuple(results), live, ready)
