"""Prometheus text-format (0.0.4) line checker.

``check_text`` validates an exposition string line by line — comment
grammar, metric-name grammar, label quoting, sample-value parseability,
``# TYPE`` declared before samples, histogram suffix rules (``_bucket``
carries ``le``; bucket counts are cumulative and non-decreasing) — and
optionally that the exposition is non-trivial (at least one sample with
a value > 0, so a wired-but-dead pipeline fails the check).

As a module it is the CI gate for the serving-smoke job::

    repro-serve stats --config '...' --format prom | python -m repro.obs.promcheck

Exit 0 when the exposition parses and carries live samples, 1 with the
violations on stderr otherwise.  ``--require NAME`` (repeatable) also
asserts a specific metric family is present.
"""

from __future__ import annotations

import argparse
import re
import sys

__all__ = ["check_text", "main"]

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"
_COMMENT_RE = re.compile(rf"^# (HELP|TYPE) ({_METRIC_NAME})(?: (.*))?$")
_SAMPLE_RE = re.compile(
    rf"^({_METRIC_NAME})(\{{(?:{_LABEL_NAME}=\"(?:[^\"\\\n]|\\[\\\"n])*\"(?:,{_LABEL_NAME}=\"(?:[^\"\\\n]|\\[\\\"n])*\")*)?\}})? "
    r"(\S+)(?: (\S+))?$"
)
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")
_HISTO_SUFFIX = re.compile(r"(.*)_(bucket|sum|count)$")


def _parse_value(text: str) -> float | None:
    if text in ("+Inf", "-Inf", "NaN"):
        return {"+Inf": float("inf"), "-Inf": float("-inf"), "NaN": float("nan")}[
            text
        ]
    try:
        return float(text)
    except ValueError:
        return None


def check_text(
    text: str, require: tuple[str, ...] = (), require_samples: bool = True
) -> list[str]:
    """Validate one exposition; returns a list of violations (empty =
    pass)."""
    errors: list[str] = []
    types: dict[str, str] = {}
    live_samples = 0
    sampled_names: set[str] = set()
    last_bucket: dict[str, float] = {}  # series key -> last cumulative count

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            match = _COMMENT_RE.match(line)
            if match is None:
                errors.append(f"line {lineno}: malformed comment: {line!r}")
                continue
            kind, name, rest = match.groups()
            if kind == "TYPE":
                if rest not in _TYPES:
                    errors.append(
                        f"line {lineno}: unknown TYPE {rest!r} for {name}"
                    )
                elif name in types:
                    errors.append(f"line {lineno}: duplicate TYPE for {name}")
                else:
                    types[name] = rest or ""
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {lineno}: malformed sample line: {line!r}")
            continue
        name, labels, value_text, timestamp = match.groups()
        value = _parse_value(value_text)
        if value is None:
            errors.append(
                f"line {lineno}: unparseable value {value_text!r} for {name}"
            )
            continue
        if timestamp is not None and _parse_value(timestamp) is None:
            errors.append(
                f"line {lineno}: unparseable timestamp {timestamp!r}"
            )
        base = name
        suffix = _HISTO_SUFFIX.match(name)
        if name not in types and suffix is not None and suffix.group(1) in types:
            base = suffix.group(1)
            if types[base] != "histogram" and suffix.group(2) == "bucket":
                errors.append(
                    f"line {lineno}: _bucket sample for non-histogram {base}"
                )
            if suffix.group(2) == "bucket":
                if labels is None or 'le="' not in labels:
                    errors.append(
                        f"line {lineno}: histogram bucket without le label"
                    )
                else:
                    series = name + re.sub(r',?le="[^"]*"', "", labels)
                    prev = last_bucket.get(series)
                    if prev is not None and value < prev:
                        errors.append(
                            f"line {lineno}: non-cumulative bucket counts "
                            f"for {series}"
                        )
                    last_bucket[series] = value
        if base not in types:
            errors.append(f"line {lineno}: sample {name} has no # TYPE header")
        sampled_names.add(base)
        if value == value and value > 0:  # NaN-safe
            live_samples += 1

    for name in require:
        if name not in types:
            errors.append(f"required metric family {name!r} missing")
    if require_samples and live_samples == 0:
        errors.append(
            "exposition has no sample with a value > 0 — the pipeline is "
            "wired but nothing was observed"
        )
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.promcheck",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "path",
        nargs="?",
        help="exposition file (default: stdin)",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="assert this metric family is present (repeatable)",
    )
    parser.add_argument(
        "--allow-empty",
        action="store_true",
        help="do not require at least one sample with value > 0",
    )
    args = parser.parse_args(argv)
    if args.path:
        with open(args.path, encoding="utf-8") as fh:
            text = fh.read()
    else:
        text = sys.stdin.read()
    errors = check_text(
        text,
        require=tuple(args.require),
        require_samples=not args.allow_empty,
    )
    if errors:
        for error in errors:
            print(f"promcheck: {error}", file=sys.stderr)
        return 1
    lines = sum(1 for ln in text.splitlines() if ln and not ln.startswith("#"))
    print(f"promcheck: OK ({lines} samples)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke
    raise SystemExit(main())
