"""Online statistical self-verification: the serving audit plane.

The paper's headline property — *truly perfect* sampling, zero
statistical distance between the output and the target distribution —
is exactly the kind of guarantee that silently rots under composition:
snapshot/restore, shard merges, compaction, cached folds, and
per-reader query views each preserve it only if their implementations
are right.  This module makes the guarantee *observable on a live
service* with a controlled false-positive rate:

* :class:`ShadowTruth` — a per-(tenant, kind) ground-truth model fed
  from the same accepted batches the ingest workers apply.  Small
  universes keep the exact frequency vector (per tenant, merged at
  query time); past ``exact_universe_max`` distinct items the truth
  demotes itself to per-tenant Misra–Gries summaries whose certified
  sandwich ``f_i − m/(k+1) ≤ est(i) ≤ f_i`` still yields *provable*
  per-item probability upper bounds.  Windowed kinds model the window:
  a count-window ring for ``sw-*`` and a timestamped chunk store (with
  expiry) for ``tw_*`` / ``window_bank``.
* :class:`SequentialMonitor` — an anytime-valid sequential test.  Each
  audit tick produces one goodness-of-fit p-value (chi-square on the
  support in exact mode; certified one-sided binomial bounds on the
  heavy coordinates in sketch mode); the monitor folds it into a
  product e-process via the κ-calibrator ``e(p) = κ·p^(κ−1)``
  (``E[e(U)] = 1`` for uniform p, so the running product is a
  nonnegative martingale under the null) and flags when the product
  reaches ``1/α`` — by Ville's inequality the probability a *correct*
  sampler is ever flagged, over an unbounded monitoring horizon, is at
  most α.
* :class:`Auditor` — the orchestration: feed accounting, target
  construction, per-tick evaluation, verdict latching, catalog metrics
  (``repro_audit_verdict`` / ``repro_audit_draws_total`` /
  ``repro_audit_tvd_bound`` / ``repro_audit_evalue`` /
  ``repro_audit_ticks_total``) and structured ``serving.audit`` events
  in the ambient trace ring.

The serving integration (dedicated ``sample_many`` batches off the
published fold, tick scheduling, race guards) lives in
:meth:`repro.serving.SamplerService.audit_tick`; the auditor itself is
deliberately service-agnostic so component-level audits work too —
count-based sliding windows (which the sharded engine cannot serve,
merging being undefined for them) are audited by feeding a bare sampler
and the auditor the same stream and handing the draws to
:meth:`Auditor.evaluate`.

Statistical honesty notes: *truly perfect* is a guarantee about one
draw's marginal law — a one-sample-per-pass streaming sampler commits
to state-fixed candidates, so repeated draws from one published fold
are never iid from the target.  What is soundly testable per state is
therefore kind-dependent (see :class:`AuditProfile.membership_only`):
built-in frequency kinds get a certified support-membership audit
(whole-stream / count-window / time-horizon live set), distinct kinds
additionally get conditional uniformity over the drawn categories, and
the full chi-square/TV machinery applies only to samplers with fresh
per-draw randomness (the :mod:`repro.perfect.biased` fault-injection
instrument, and any plug-in kind that registers a profile without
``membership_only``).  Chi-square p-values are asymptotic (cells pooled
below ``min_expected``), so α is nominal rather than exact at small
draw counts; sketch (Misra–Gries) mode tests only heavy-coordinate
*inflation* — a one-sided test, since the sketch certifies upper bounds
but not the tail's composition; ``pool`` configs expose no ``sample()``
and are reported ``unsupported`` rather than silently "passing".
"""

from __future__ import annotations

import copy
import math
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, NamedTuple

import numpy as np
from scipy import stats as sps

from repro.obs.catalog import CATALOG_HELP
from repro.obs.metrics import current_registry
from repro.obs.trace import span
from repro.sketches.misra_gries import MisraGries
from repro.stats.distance import chi_square_gof, total_variation, tv_upper_bound

__all__ = [
    "AuditConfig",
    "AuditEvent",
    "AuditProfile",
    "Auditor",
    "SequentialMonitor",
    "ShadowTruth",
    "audit_profile",
    "register_audit_profile",
]

#: Pending feed items the truth consolidates eagerly past this size
#: (otherwise consolidation is deferred to the next audit tick, keeping
#: the hot submit path at one list-append).
MAX_PENDING_ITEMS = 1 << 20

#: Floor for per-tick p-values inside the e-process (log-space guard;
#: an off-support draw — probability zero under the null — lands here).
P_FLOOR = 1e-300


@dataclass(frozen=True)
class AuditConfig:
    """Knobs for the audit plane.

    ``interval=0`` disables the service ticker's audit leg — ticks then
    run only when :meth:`repro.serving.SamplerService.audit_tick` is
    called explicitly (the deterministic-test configuration).
    """

    interval: float = 0.25  # audit tick cadence, seconds (0 = manual)
    draws: int = 512  # dedicated sample_many draws per tick
    alpha: float = 0.01  # anytime false-positive budget (Ville)
    kappa: float = 0.5  # e-process calibrator exponent, in (0, 1)
    min_draws: int = 64  # minimum ITEM draws to evaluate a tick
    min_expected: float = 5.0  # chi-square pooling threshold
    exact_universe_max: int = 1 << 16  # distinct items before MG demotion
    mg_capacity: int = 512  # Misra–Gries counters per tenant after demotion
    max_history: int = 64  # retained AuditEvents
    query_kwargs: dict | None = None  # extra kwargs for the audit draws

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise ValueError(f"interval must be ≥ 0, got {self.interval}")
        if self.draws < 1:
            raise ValueError(f"draws must be ≥ 1, got {self.draws}")
        if not 0 < self.alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if not 0 < self.kappa < 1:
            raise ValueError(f"kappa must be in (0, 1), got {self.kappa}")


@dataclass(frozen=True)
class AuditProfile:
    """How to model one sampler kind's target distribution.

    ``category`` is ``"frequency"`` (p_i ∝ weight(f_i) over live items),
    ``"distinct"`` (membership in the live distinct set plus conditional
    uniformity over the drawn categories — see
    :meth:`Auditor._evaluate_exact` for why full-support uniformity is
    *not* the per-state null), or ``"unsupported"`` (the kind exposes no
    auditable ``sample`` — e.g. ``pool``).  ``window`` (count) and
    ``horizon`` (seconds) pick the live-set model; both ``None`` means
    whole-stream.
    """

    category: str
    weight: Callable[[np.ndarray], np.ndarray] | None = None
    window: int | None = None
    horizon: float | None = None
    #: One-sample-per-pass streaming samplers commit to state-fixed
    #: candidates (Algorithm 1 instances each hold one ``(item, count)``;
    #: ``bounded`` rides R fixed F0 candidates through accept/reject), so
    #: repeated draws from one state are *marginally* perfect but never
    #: iid from the target — a distribution-shape test would flag every
    #: correct instance.  ``True`` (all built-in frequency kinds) audits
    #: only support membership, which the shadow truth certifies exactly
    #: (whole-stream, count-window, or time-horizon live set).  Leave
    #: ``False`` only for samplers with fresh per-draw randomness (e.g.
    #: :mod:`repro.perfect.biased`), where the full chi-square/TV
    #: machinery is sound.
    membership_only: bool = False


class TruthTarget(NamedTuple):
    """One consistent cut of the shadow truth's target distribution."""

    mode: str  # "exact" | "sketch" | "empty" | "unsupported"
    support: np.ndarray  # live items (exact mode) or heavy items (sketch)
    probs: np.ndarray  # exact probabilities (exact mode only)
    p_hi: np.ndarray  # certified per-item upper bounds (sketch mode only)
    detail: str = ""


def _measure_weight(measure) -> Callable[[np.ndarray], np.ndarray]:
    """Vectorize a scalar ``Measure`` over a counts array, evaluating
    each distinct count once (live supports repeat counts heavily)."""

    def weight(counts: np.ndarray) -> np.ndarray:
        uniq, inverse = np.unique(counts, return_inverse=True)
        vals = np.array([float(measure(float(c))) for c in uniq])
        return vals[inverse]

    return weight


def _lp_weight(p: float) -> Callable[[np.ndarray], np.ndarray]:
    def weight(counts: np.ndarray) -> np.ndarray:
        return counts.astype(np.float64) ** p

    return weight


def _freq_from_measure(config, **extra):
    from repro.engine.registry import build_measure

    extra.setdefault("membership_only", True)
    return AuditProfile(
        "frequency", weight=_measure_weight(build_measure(config["measure"])),
        **extra,
    )


def _profile_g(config, query_kwargs):
    return _freq_from_measure(config)


def _profile_lp(config, query_kwargs):
    return AuditProfile(
        "frequency", weight=_lp_weight(float(config["p"])),
        membership_only=True,
    )


def _profile_distinct(config, query_kwargs):
    return AuditProfile("distinct")


def _profile_unsupported(config, query_kwargs):
    return AuditProfile("unsupported")


def _profile_sw_g(config, query_kwargs):
    return _freq_from_measure(config, window=int(config["window"]))


def _profile_sw_lp(config, query_kwargs):
    return AuditProfile(
        "frequency", weight=_lp_weight(float(config["p"])),
        window=int(config["window"]), membership_only=True,
    )


def _profile_sw_f0(config, query_kwargs):
    return AuditProfile("distinct", window=int(config["window"]))


def _profile_tw_g(config, query_kwargs):
    return _freq_from_measure(config, horizon=float(config["horizon"]))


def _profile_tw_lp(config, query_kwargs):
    return AuditProfile(
        "frequency", weight=_lp_weight(float(config["p"])),
        horizon=float(config["horizon"]), membership_only=True,
    )


def _profile_tw_f0(config, query_kwargs):
    return AuditProfile("distinct", horizon=float(config["horizon"]))


def _profile_window_bank(config, query_kwargs):
    # The audited window is the *queried* rung's horizon — the audit
    # draws pass the same ``horizon=`` the truth models here.
    horizon = float(
        (query_kwargs or {}).get("horizon", min(config["resolutions"]))
    )
    if config.get("measure") is not None:
        return _freq_from_measure(config, horizon=horizon)
    return AuditProfile(
        "frequency", weight=_lp_weight(float(config["p"])), horizon=horizon,
        membership_only=True,
    )


_PROFILES: dict[str, Callable[[dict, dict | None], AuditProfile]] = {
    "g": _profile_g,
    "lp": _profile_lp,
    "f0": _profile_distinct,
    "oracle-f0": _profile_distinct,
    "algorithm5-f0": _profile_distinct,
    "bounded": _profile_g,
    "pool": _profile_unsupported,
    "sw-g": _profile_sw_g,
    "sw-lp": _profile_sw_lp,
    "sw-f0": _profile_sw_f0,
    "tw_g": _profile_tw_g,
    "tw_lp": _profile_tw_lp,
    "tw_f0": _profile_tw_f0,
    "window_bank": _profile_window_bank,
}


def register_audit_profile(
    kind: str, builder: Callable[[dict, dict | None], AuditProfile]
) -> None:
    """Teach the audit plane a plug-in sampler kind's target model
    (the audit-side counterpart of
    :func:`repro.engine.registry.register_sampler`)."""
    _PROFILES[kind] = builder


def audit_profile(config: dict, query_kwargs: dict | None = None) -> AuditProfile:
    """The :class:`AuditProfile` for a sampler config dict.  Kinds with
    no registered profile are reported unsupported rather than guessed."""
    kind = dict(config).get("kind")
    builder = _PROFILES.get(kind)
    if builder is None:
        return AuditProfile("unsupported")
    return builder(dict(config), query_kwargs)


class ShadowTruth:
    """Ground truth for one audited stream, fed from accepted batches.

    The hot-path :meth:`feed` is one lock + list-append + version bump;
    counting is consolidated lazily at :meth:`target` time (or eagerly
    past :data:`MAX_PENDING_ITEMS` pending items).  Per-tenant exact
    counts (or, after demotion, per-tenant Misra–Gries summaries) are
    merged into one global target at query time — window membership for
    the windowed categories is a property of the *interleaved* accepted
    stream, so those keep one global window structure plus per-tenant
    item tallies.
    """

    def __init__(self, profile: AuditProfile, config: AuditConfig) -> None:
        self._profile = profile
        self._cfg = config
        self._lock = threading.Lock()
        self.version = 0  # bumped per feed; evaluate() races key on it
        self._pending: list[tuple[str, np.ndarray, np.ndarray | None]] = []
        self._pending_items = 0
        self._tenant_items: dict[str, int] = {}
        # exact / sketch (whole-stream) state
        self._mode = "exact"
        self._counts: dict[str, dict[int, int]] = {}
        self._sketches: dict[str, MisraGries] = {}
        self._distinct: set[int] = set()
        # count-window state (global ring)
        self._ring: deque[int] | None = (
            deque(maxlen=profile.window) if profile.window else None
        )
        self._ring_counts: dict[int, int] = {}
        # time-window state (chunk store with expiry)
        self._chunks: deque[tuple[np.ndarray, np.ndarray]] = deque()
        self._now = -math.inf

    @property
    def mode(self) -> str:
        """``exact`` or ``sketch`` (post-demotion)."""
        return self._mode

    def tenant_items(self) -> dict[str, int]:
        """Items fed per tenant (``_default`` for the anonymous one)."""
        with self._lock:
            out = dict(self._tenant_items)
            for tenant, arr, __ in self._pending:
                out[tenant] = out.get(tenant, 0) + int(arr.size)
            return out

    def feed(self, items, timestamps=None, tenant: str | None = None) -> None:
        """Record one accepted batch (cheap: defer counting)."""
        arr = np.asarray(getattr(items, "items", items), dtype=np.int64)
        if arr.size == 0:
            return
        if self._profile.horizon is not None and timestamps is None:
            raise ValueError(
                "time-windowed audit truth needs timestamps with every batch"
            )
        ts = (
            None
            if timestamps is None
            else np.asarray(timestamps, dtype=np.float64)
        )
        key = "_default" if tenant is None else str(tenant)
        with self._lock:
            self._pending.append((key, arr, ts))
            self._pending_items += int(arr.size)
            self.version += 1
            if self._pending_items > MAX_PENDING_ITEMS:
                self._drain_locked()

    # -- consolidation (always under the lock) ------------------------------
    def _drain_locked(self) -> None:
        for tenant, arr, ts in self._pending:
            self._tenant_items[tenant] = (
                self._tenant_items.get(tenant, 0) + int(arr.size)
            )
            if self._profile.horizon is not None:
                self._chunks.append((ts, arr))
                self._now = max(self._now, float(ts.max()))
                continue
            if self._ring is not None:
                self._feed_ring(arr)
                continue
            uniq, cnts = np.unique(arr, return_counts=True)
            if self._mode == "sketch":
                sketch = self._sketch_for(tenant)
                for item, cnt in zip(uniq.tolist(), cnts.tolist()):
                    sketch.update(item, cnt)
            else:
                counts = self._counts.setdefault(tenant, {})
                for item, cnt in zip(uniq.tolist(), cnts.tolist()):
                    counts[item] = counts.get(item, 0) + cnt
                self._distinct.update(uniq.tolist())
        self._pending.clear()
        self._pending_items = 0
        if (
            self._mode == "exact"
            and self._ring is None
            and self._profile.horizon is None
            and len(self._distinct) > self._cfg.exact_universe_max
        ):
            self._demote_locked()
        if self._profile.horizon is not None:
            self._expire_chunks(self._now)

    def _sketch_for(self, tenant: str) -> MisraGries:
        sketch = self._sketches.get(tenant)
        if sketch is None:
            sketch = self._sketches[tenant] = MisraGries(self._cfg.mg_capacity)
        return sketch

    def _demote_locked(self) -> None:
        """Exact → Misra–Gries, per tenant (support outgrew the cap)."""
        for tenant, counts in self._counts.items():
            sketch = self._sketch_for(tenant)
            for item, cnt in counts.items():
                sketch.update(item, cnt)
        self._counts.clear()
        self._distinct.clear()
        self._mode = "sketch"

    def _feed_ring(self, arr: np.ndarray) -> None:
        ring, counts = self._ring, self._ring_counts
        window = ring.maxlen
        if arr.size >= window:
            ring.clear()
            counts.clear()
            arr = arr[-window:]
            ring.extend(arr.tolist())
            uniq, cnts = np.unique(arr, return_counts=True)
            counts.update(zip(uniq.tolist(), cnts.tolist()))
            return
        for item in arr.tolist():
            if len(ring) == window:
                old = ring.popleft()
                left = counts[old] - 1
                if left:
                    counts[old] = left
                else:
                    del counts[old]
            ring.append(item)
            counts[item] = counts.get(item, 0) + 1

    def _expire_chunks(self, now: float) -> None:
        cutoff = now - self._profile.horizon
        while self._chunks and float(self._chunks[0][0].max()) <= cutoff:
            self._chunks.popleft()

    def _live_time_counts(self, now: float) -> dict[int, int]:
        cutoff = now - self._profile.horizon
        out: dict[int, int] = {}
        for ts, arr in self._chunks:
            live = arr[ts > cutoff]
            if live.size == 0:
                continue
            uniq, cnts = np.unique(live, return_counts=True)
            for item, cnt in zip(uniq.tolist(), cnts.tolist()):
                out[item] = out.get(item, 0) + cnt
        return out

    # -- the target ---------------------------------------------------------
    def target(self, now: float | None = None) -> TruthTarget:
        """The current target distribution (a consistent cut).

        ``now`` pins the clock for time-windowed kinds — pass the
        published fold's watermark so the truth and the audited draws
        agree on window membership.
        """
        empty = np.empty(0)
        with self._lock:
            self._drain_locked()
            if self._profile.horizon is not None:
                clock = self._now if now is None else float(now)
                counts = self._live_time_counts(clock)
            elif self._ring is not None:
                counts = dict(self._ring_counts)
            elif self._mode == "sketch":
                return self._sketch_target_locked()
            else:
                counts = {}
                for tenant_counts in self._counts.values():
                    for item, cnt in tenant_counts.items():
                        counts[item] = counts.get(item, 0) + cnt
        if not counts:
            return TruthTarget("empty", empty, empty, empty, "no live items")
        support = np.fromiter(counts.keys(), dtype=np.int64, count=len(counts))
        order = np.argsort(support)
        support = support[order]
        if self._profile.category == "distinct":
            probs = np.full(support.size, 1.0 / support.size)
        else:
            vals = np.fromiter(
                counts.values(), dtype=np.float64, count=len(counts)
            )[order]
            weights = self._profile.weight(vals)
            total = float(weights.sum())
            if total <= 0:
                return TruthTarget("empty", empty, empty, empty, "zero weight")
            probs = weights / total
        return TruthTarget("exact", support, probs, empty)

    def _sketch_target_locked(self) -> TruthTarget:
        empty = np.empty(0)
        if self._profile.category == "distinct":
            # A frequency sketch cannot certify the distinct-set shape.
            return TruthTarget(
                "unsupported", empty, empty, empty,
                "distinct-kind audit needs the exact regime "
                "(raise exact_universe_max)",
            )
        sketches = list(self._sketches.values())
        merged = copy.deepcopy(sketches[0])
        for other in sketches[1:]:
            merged.merge(other)
        d = merged.error_bound()
        heavy = {i: est for i, est in merged.items().items() if est > d}
        if not heavy:
            return TruthTarget("empty", empty, empty, empty, "no heavy items")
        items = np.fromiter(heavy.keys(), dtype=np.int64, count=len(heavy))
        order = np.argsort(items)
        items = items[order]
        ests = np.fromiter(
            heavy.values(), dtype=np.float64, count=len(heavy)
        )[order]
        # Certified per-item probability upper bounds (weight monotone
        # nondecreasing): p_true(i) = w(f_i)/F with est_i ≤ f_i ≤
        # est_i + d and F ≥ Σ_heavy w(est_j), so
        # p_true(i) ≤ w(est_i + d) / Σ_heavy w(est_j).
        f_lo = float(self._profile.weight(ests).sum())
        if f_lo <= 0:
            return TruthTarget("empty", empty, empty, empty, "zero weight")
        p_hi = np.minimum(1.0, self._profile.weight(ests + d) / f_lo)
        return TruthTarget("sketch", items, empty, p_hi)


class SequentialMonitor:
    """The anytime-valid verdict keeper: a product e-process over the
    per-tick p-values (see the module docstring for the math)."""

    def __init__(
        self, alpha: float = 0.01, kappa: float = 0.5
    ) -> None:
        if not 0 < alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if not 0 < kappa < 1:
            raise ValueError(f"kappa must be in (0, 1), got {kappa}")
        self.alpha = alpha
        self.kappa = kappa
        self.log_e = 0.0
        self.ticks = 0
        self.flagged = False  # latches: a flag never clears
        self.last_p: float | None = None

    @property
    def e_value(self) -> float:
        return math.exp(min(self.log_e, 700.0))

    @property
    def threshold(self) -> float:
        return 1.0 / self.alpha

    def update(self, p_value: float) -> bool:
        """Fold one tick's p-value into the e-process; returns whether
        the monitor is (now or already) flagged."""
        p = min(1.0, max(float(p_value), P_FLOOR))
        self.log_e += math.log(self.kappa) + (self.kappa - 1.0) * math.log(p)
        self.ticks += 1
        self.last_p = p
        if self.log_e >= math.log(self.threshold):
            self.flagged = True
        return self.flagged


@dataclass
class AuditEvent:
    """One audit tick's outcome (kept in the auditor's bounded history
    and mirrored as a ``serving.audit`` span in the trace ring)."""

    tick: int
    result: str  # evaluated | skipped_* | discarded_race | unsupported
    draws: int = 0
    item_draws: int = 0
    p_value: float | None = None
    e_value: float | None = None
    flagged: bool = False
    tv_observed: float | None = None
    tv_bound: float | None = None
    mode: str = ""
    support: int = 0
    generation: int | None = None
    watermark: float | None = None
    detail: str = ""

    def to_dict(self) -> dict:
        return {k: v for k, v in self.__dict__.items()}


class Auditor:
    """Feed accounting + per-tick evaluation + verdict for one audited
    sampler config.  Service wiring lives in
    :class:`repro.serving.SamplerService`; tests drive bare samplers
    through :meth:`feed` / :meth:`evaluate` directly."""

    def __init__(
        self,
        kind_config: dict,
        config: AuditConfig | None = None,
        *,
        metrics=None,
    ) -> None:
        self.config = config if config is not None else AuditConfig()
        self.kind = dict(kind_config).get("kind")
        self.profile = audit_profile(kind_config, self.config.query_kwargs)
        self.supported = self.profile.category != "unsupported"
        self.truth = (
            ShadowTruth(self.profile, self.config) if self.supported else None
        )
        self.monitor = SequentialMonitor(self.config.alpha, self.config.kappa)
        self._history: deque[AuditEvent] = deque(maxlen=self.config.max_history)
        self._ticks = 0
        self._draws_total = 0
        self._evaluated = 0
        self._lock = threading.Lock()
        registry = current_registry() if metrics is None else metrics
        self._m_verdict = registry.gauge(
            "repro_audit_verdict", CATALOG_HELP["repro_audit_verdict"]
        )
        self._m_draws = registry.counter(
            "repro_audit_draws_total", CATALOG_HELP["repro_audit_draws_total"]
        )
        self._m_tvd = registry.gauge(
            "repro_audit_tvd_bound", CATALOG_HELP["repro_audit_tvd_bound"]
        )
        self._m_evalue = registry.gauge(
            "repro_audit_evalue", CATALOG_HELP["repro_audit_evalue"]
        )
        self._m_ticks = registry.counter(
            "repro_audit_ticks_total",
            CATALOG_HELP["repro_audit_ticks_total"],
            labels=("result",),
        )
        self._m_verdict.set(self.verdict)

    # -- state --------------------------------------------------------------
    @property
    def verdict(self) -> int:
        """``1`` passing, ``0`` flagged, ``-1`` unsupported / no
        evaluated tick yet."""
        if self.monitor.flagged:
            return 0
        if not self.supported or self._evaluated == 0:
            return -1
        return 1

    @property
    def flagged(self) -> bool:
        return self.monitor.flagged

    @property
    def draws_total(self) -> int:
        return self._draws_total

    @property
    def truth_version(self) -> int:
        return 0 if self.truth is None else self.truth.version

    def history(self) -> list[AuditEvent]:
        with self._lock:
            return list(self._history)

    def status(self) -> dict:
        """The machine-readable audit endpoint (stats / flight bundle)."""
        last = None
        with self._lock:
            if self._history:
                last = self._history[-1].to_dict()
        return {
            "kind": self.kind,
            "supported": self.supported,
            "category": self.profile.category,
            "verdict": self.verdict,
            "flagged": self.flagged,
            "ticks": self._ticks,
            "evaluated_ticks": self._evaluated,
            "draws_total": self._draws_total,
            "e_value": self.monitor.e_value,
            "e_threshold": self.monitor.threshold,
            "alpha": self.config.alpha,
            "truth_mode": None if self.truth is None else self.truth.mode,
            "tenant_items": (
                {} if self.truth is None else self.truth.tenant_items()
            ),
            "last_event": last,
        }

    # -- feeding ------------------------------------------------------------
    def feed(self, items, timestamps=None, tenant: str | None = None) -> None:
        if self.truth is not None:
            self.truth.feed(items, timestamps, tenant)

    # -- ticks --------------------------------------------------------------
    def _finish(self, event: AuditEvent) -> AuditEvent:
        with self._lock:
            self._history.append(event)
        self._m_ticks.labels(result=event.result).inc()
        self._m_verdict.set(self.verdict)
        with span("serving.audit") as sp:
            sp.set(
                result=event.result,
                draws=event.draws,
                p_value=event.p_value,
                e_value=event.e_value,
                flagged=event.flagged,
                tv_bound=event.tv_bound,
                generation=event.generation,
            )
        return event

    def record_skip(self, reason: str, detail: str = "") -> AuditEvent:
        """Record a tick that could not be evaluated (queues busy, fold
        race, refresh error) — still visible in history and metrics."""
        self._ticks += 1
        return self._finish(
            AuditEvent(tick=self._ticks, result=reason, detail=detail)
        )

    def evaluate(
        self,
        results,
        now: float | None = None,
        generation: int | None = None,
    ) -> AuditEvent:
        """Judge one batch of dedicated audit draws against the truth.

        ``results`` is a sequence of
        :class:`~repro.core.types.SampleResult`; EMPTY/FAIL draws are
        excluded (the perfection guarantee is conditional on returning
        an item), so the test runs on the ITEM draws only.
        """
        self._ticks += 1
        draws = len(results)
        self._draws_total += draws
        self._m_draws.add(draws)
        base = dict(
            tick=self._ticks, draws=draws, generation=generation, watermark=now
        )
        if not self.supported:
            return self._finish(
                AuditEvent(
                    result="unsupported",
                    detail=f"kind {self.kind!r} exposes no auditable sample()",
                    **base,
                )
            )
        items = np.asarray(
            [r.item for r in results if getattr(r, "is_item", False)],
            dtype=np.int64,
        )
        base["item_draws"] = int(items.size)
        if items.size < self.config.min_draws:
            return self._finish(
                AuditEvent(
                    result="skipped_sparse",
                    detail=(
                        f"{items.size} item draws < min_draws="
                        f"{self.config.min_draws}"
                    ),
                    **base,
                )
            )
        target = self.truth.target(now=now)
        if target.mode in ("empty", "unsupported"):
            return self._finish(
                AuditEvent(
                    result=f"skipped_{target.mode}", detail=target.detail,
                    **base,
                )
            )
        if target.mode == "exact":
            event = self._evaluate_exact(items, target, base)
        else:
            event = self._evaluate_sketch(items, target, base)
        self._evaluated += 1
        self._m_evalue.set(self.monitor.e_value)
        if event.tv_bound is not None:
            self._m_tvd.set(event.tv_bound)
        return self._finish(event)

    def _evaluate_exact(
        self, items: np.ndarray, target: TruthTarget, base: dict
    ) -> AuditEvent:
        idx = np.searchsorted(target.support, items)
        idx_clamped = np.minimum(idx, target.support.size - 1)
        on_support = target.support[idx_clamped] == items
        n = int(items.size)
        off = int(n - int(on_support.sum()))
        if self.profile.membership_only:
            # The sampler's repeated-draw law is state-conditional
            # (e.g. ``bounded``'s accept/reject over state-fixed F0
            # candidates): distribution-shape tests would flag every
            # correct instance, so only support membership — which is
            # certified by the shadow truth — is judged.
            p_value = 0.0 if off else 1.0
            detail = (
                f"{off} draws outside the live support" if off
                else "support-membership audit (state-conditional sampler)"
            )
            flagged = self.monitor.update(p_value)
            return AuditEvent(
                result="evaluated",
                p_value=float(max(p_value, P_FLOOR)),
                e_value=self.monitor.e_value,
                flagged=flagged,
                mode="exact",
                support=int(target.support.size),
                detail=detail,
                **base,
            )
        if self.profile.category == "distinct":
            # Conditional-uniformity null.  A truly perfect F0 sampler
            # is *marginally* uniform over the live distinct set, but
            # its candidate set is fixed at state level (Algorithm 5's
            # random S, min-hash's argmin), so repeated draws from one
            # state are uniform only over that subset — full-support
            # chi-square would flag every correct sampler.  The sound
            # per-state null is: every draw lands inside the true
            # distinct set (certified, p = 0 otherwise) and draws are
            # uniform over the categories actually drawn.
            __, cond = np.unique(items[on_support], return_counts=True)
            counts = cond.astype(np.float64)
            k = int(counts.size)
            probs = (
                np.full(k, 1.0 / k) if k else np.empty(0, dtype=np.float64)
            )
            detail = f"conditional-uniform over {k} drawn categories"
        else:
            counts = np.bincount(
                idx_clamped[on_support], minlength=target.support.size
            ).astype(np.float64)
            k = int(target.support.size)
            probs = target.probs
            detail = ""
        if off > 0:
            # An item with zero live frequency has probability zero
            # under the null — certified evidence, not a p-value.
            p_value = 0.0
            detail = f"{off} draws outside the live support"
        else:
            __, p_value = chi_square_gof(counts, probs, self.config.min_expected)
        if k == 0:
            tv_obs, tv_bound = 1.0, 1.0
        else:
            tv_obs = total_variation(counts / n, probs)
            tv_bound = tv_upper_bound(tv_obs, k, n, delta=self.config.alpha)
        flagged = self.monitor.update(p_value)
        return AuditEvent(
            result="evaluated",
            p_value=float(max(p_value, P_FLOOR)),
            e_value=self.monitor.e_value,
            flagged=flagged,
            tv_observed=float(tv_obs),
            tv_bound=float(tv_bound),
            mode="exact",
            support=k,
            detail=detail,
            **base,
        )

    def _evaluate_sketch(
        self, items: np.ndarray, target: TruthTarget, base: dict
    ) -> AuditEvent:
        """One-sided heavy-coordinate inflation test: for each heavy
        item the sketch certifies ``P(draw = i) ≤ p_hi(i)``; a draw
        count binomially improbable under every certified bound is
        evidence of bias.  Bonferroni across the heavy set keeps the
        tick p-value valid (conservatively) under the null."""
        n = int(items.size)
        idx = np.searchsorted(target.support, items)
        idx_clamped = np.minimum(idx, target.support.size - 1)
        on_support = target.support[idx_clamped] == items
        counts = np.bincount(
            idx_clamped[on_support], minlength=target.support.size
        )
        p_min = 1.0
        for k_i, p_i in zip(counts.tolist(), target.p_hi.tolist()):
            if k_i == 0:
                continue
            p_min = min(p_min, float(sps.binom.sf(k_i - 1, n, p_i)))
        p_value = min(1.0, p_min * target.support.size)
        flagged = self.monitor.update(p_value)
        return AuditEvent(
            result="evaluated",
            p_value=float(max(p_value, P_FLOOR)),
            e_value=self.monitor.e_value,
            flagged=flagged,
            mode="sketch",
            support=int(target.support.size),
            detail="one-sided heavy-inflation test (Misra–Gries regime)",
            **base,
        )
