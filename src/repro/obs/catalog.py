"""The canonical metric-name catalog.

One row per instrument the serving path registers: name, type, label
names, and meaning.  The README "Observability" table mirrors this
list, the test suite asserts a served workload's Prometheus exposition
carries every entry, and the CI serving-smoke job checks the same
through ``repro-serve stats --format prom``.

Keep this in sync with the instrumentation sites:
:mod:`repro.core.g_sampler`, :mod:`repro.engine.shard`,
:mod:`repro.serving.service`, :mod:`repro.serving.workers`,
:mod:`repro.serving.router`, :mod:`repro.serving.executor`,
:mod:`repro.windows.bank`.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["CATALOG_HELP", "CatalogEntry", "METRIC_CATALOG"]


class CatalogEntry(NamedTuple):
    name: str
    type: str
    labels: tuple[str, ...]
    meaning: str


METRIC_CATALOG: tuple[CatalogEntry, ...] = (
    # -- ingest kernel (timeline-precomputed pool batch path) ----------------
    CatalogEntry(
        "repro_ingest_heap_events_total", "counter", (),
        "Heap replacement events replayed by the batched pool ingest kernel",
    ),
    CatalogEntry(
        "repro_ingest_settle_scans_total", "counter", (),
        "Full-chunk position-index scans taken by the batched pool ingest kernel",
    ),
    # -- engine (merged-view cache + lifecycle) ------------------------------
    CatalogEntry(
        "repro_engine_fold_total", "counter", ("regime",),
        "Merged-view cache outcomes: full hit / prefix rebase / from-scratch fold",
    ),
    CatalogEntry(
        "repro_engine_fold_seconds", "histogram", ("regime",),
        "Fold (re)build duration for the rebase and scratch regimes",
    ),
    CatalogEntry(
        "repro_engine_epoch_bumps_total", "counter", ("reason",),
        "Shard mutation-epoch bumps by cause (ingest/compact/restore/merge/invalidate)",
    ),
    CatalogEntry(
        "repro_engine_compaction_passes_total", "counter", (),
        "Engine-wide expiry-compaction passes (query-time and cadence legs)",
    ),
    CatalogEntry(
        "repro_engine_compaction_reclaimed_bytes_total", "counter", (),
        "Approximate bytes of expired state dropped by engine compaction",
    ),
    # -- windows (per-resolution ladder) -------------------------------------
    CatalogEntry(
        "repro_windows_ingested_items_total", "counter", ("resolution",),
        "Items ingested per WindowBank ladder rung (every rung sees the full stream)",
    ),
    CatalogEntry(
        "repro_windows_expired_reclaimed_bytes_total", "counter", ("resolution",),
        "Approximate bytes of expired window generations reclaimed per rung",
    ),
    # -- serving front door ---------------------------------------------------
    CatalogEntry(
        "repro_serving_submitted_items_total", "counter", ("tenant",),
        "Items admitted through submit() per tenant",
    ),
    CatalogEntry(
        "repro_serving_applied_items_total", "counter", ("shard",),
        "Items landed in shard state by the ingest workers",
    ),
    CatalogEntry(
        "repro_serving_failed_items_total", "counter", ("shard",),
        "Items whose apply raised (occupancy drained, state unchanged)",
    ),
    CatalogEntry(
        "repro_serving_backpressure_shed_total", "counter", ("tenant",),
        "Submits rejected at the queue high-water mark (shed policy or block timeout)",
    ),
    CatalogEntry(
        "repro_serving_rate_limited_total", "counter", ("tenant",),
        "Submits rejected by the tenant's token bucket",
    ),
    CatalogEntry(
        "repro_serving_submit_seconds", "histogram", ("outcome",),
        "Front-door submit latency by outcome (accepted/shed/rate_limited)",
    ),
    CatalogEntry(
        "repro_serving_ingest_apply_seconds", "histogram", ("shard",),
        "Worker micro-batch apply latency (coalesce + ingest_shard under the lock)",
    ),
    CatalogEntry(
        "repro_serving_batch_coalesce_items", "histogram", (),
        "Coalesced micro-batch sizes handed to ingest_shard",
    ),
    CatalogEntry(
        "repro_serving_query_seconds", "histogram", ("method", "outcome"),
        "Query-plane latency for sample/sample_many by outcome",
    ),
    CatalogEntry(
        "repro_serving_queue_depth", "gauge", ("shard",),
        "Per-shard queue occupancy, queued + in-flight items (live callback)",
    ),
    CatalogEntry(
        "repro_serving_queue_pending_items", "gauge", (),
        "Total items accepted but not yet applied (live callback)",
    ),
    CatalogEntry(
        "repro_serving_tenant_buckets", "gauge", (),
        "Token buckets currently tracked by the tenant rate limiter",
    ),
    # -- process-parallel ingest plane ----------------------------------------
    CatalogEntry(
        "repro_serving_ipc_frames_total", "counter", ("direction",),
        "IPC frames crossing the front door's worker pipes, by direction (send/recv)",
    ),
    CatalogEntry(
        "repro_serving_ipc_bytes_total", "counter", ("direction",),
        "IPC frame payload bytes crossing the worker pipes, by direction",
    ),
    CatalogEntry(
        "repro_serving_worker_restarts_total", "counter", ("worker",),
        "Lossless shard-process restarts (dead worker rebooted from the mirror)",
    ),
    CatalogEntry(
        "repro_serving_worker_queue_depth", "gauge", ("worker",),
        "Queued + in-flight items across one worker's owned shard lanes (live callback)",
    ),
    # -- query plane / fold publication ---------------------------------------
    CatalogEntry(
        "repro_serving_fold_refresh_total", "counter", ("result",),
        "Fold refresh attempts: published / unchanged / error",
    ),
    CatalogEntry(
        "repro_serving_fold_generation", "gauge", (),
        "Currently-published fold generation (-1 before the first publish)",
    ),
    CatalogEntry(
        "repro_serving_fold_age_seconds", "gauge", (),
        "Seconds since the current fold generation was published",
    ),
    CatalogEntry(
        "repro_serving_fold_epoch_lag", "gauge", (),
        "Shard mutation-epoch bumps not yet reflected by the published fold",
    ),
    CatalogEntry(
        "repro_serving_watermark_skew_latched", "gauge", (),
        "1 while a failed refresh (e.g. watermark skew) is latched on the query plane",
    ),
    # -- service ticker -------------------------------------------------------
    CatalogEntry(
        "repro_serving_compaction_passes_total", "counter", (),
        "Shard-by-shard expiry-compaction passes run by the service ticker",
    ),
    CatalogEntry(
        "repro_serving_compaction_reclaimed_bytes_total", "counter", (),
        "Approximate bytes reclaimed by the service ticker's compaction passes",
    ),
    # -- audit plane ----------------------------------------------------------
    CatalogEntry(
        "repro_audit_verdict", "gauge", (),
        "Audit verdict: 1 passing, 0 flagged (latched), -1 unsupported or no evaluated tick yet",
    ),
    CatalogEntry(
        "repro_audit_draws_total", "counter", (),
        "Dedicated audit draws taken off published folds",
    ),
    CatalogEntry(
        "repro_audit_tvd_bound", "gauge", (),
        "Latest certified upper bound on the output-vs-target total variation distance",
    ),
    CatalogEntry(
        "repro_audit_evalue", "gauge", (),
        "Running e-process value; crossing 1/alpha flags the sampler (anytime-valid)",
    ),
    CatalogEntry(
        "repro_audit_ticks_total", "counter", ("result",),
        "Audit ticks by outcome (evaluated/skipped_*/discarded_race/unsupported)",
    ),
    # -- cross-process telemetry plane ----------------------------------------
    CatalogEntry(
        "repro_worker_telemetry_ships_total", "counter", ("worker",),
        "Telemetry payloads (metric snapshot + span batch) merged from a shard worker",
    ),
    CatalogEntry(
        "repro_worker_telemetry_spans_total", "counter", ("worker",),
        "Worker-side span events shipped to the parent inside telemetry payloads",
    ),
    CatalogEntry(
        "repro_worker_telemetry_merge_errors_total", "counter", ("worker",),
        "Telemetry payloads whose metric snapshot failed to merge (type/ladder conflict)",
    ),
    CatalogEntry(
        "repro_worker_telemetry_age_seconds", "gauge", ("worker",),
        "Seconds since a worker's telemetry was last merged (live callback; -1 before the first)",
    ),
    CatalogEntry(
        "repro_worker_telemetry_clock_offset_seconds", "gauge", ("worker",),
        "Estimated worker-minus-parent perf-counter clock offset (min-RTT ping midpoint)",
    ),
    # -- health / trace -------------------------------------------------------
    CatalogEntry(
        "repro_health_status", "gauge", ("probe",),
        "Health probe status at last check: 1 pass, 0.5 warn, 0 fail",
    ),
    CatalogEntry(
        "repro_trace_dropped_total", "counter", (),
        "Trace span events dropped by the ring buffer since the tracer was bound",
    ),
)

#: name → meaning, so every instrumentation site registers with the
#: catalog's help text instead of restating it.
CATALOG_HELP: dict[str, str] = {entry.name: entry.meaning for entry in METRIC_CATALOG}
