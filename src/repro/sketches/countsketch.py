"""The CountSketch frequency estimator (Charikar–Chen–Farach-Colton).

This is the estimation core of precision-sampling Lp samplers
([AKO11, JST11, JW18b]) — our *perfect-but-not-truly-perfect* baseline
(:mod:`repro.perfect.precision_sampling`) uses it to find the maximal
scaled coordinate, exactly as the paper describes those prior works.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sketches.hashing import KWiseHash

__all__ = ["CountSketch"]


class CountSketch:
    """CountSketch with ``depth`` rows of ``width`` buckets.

    Median-of-rows point estimates satisfy
    ``|est(i) − f_i| ≤ 3‖f_tail‖₂/√width`` per row with constant
    probability; the median over ``depth = O(log 1/δ)`` rows boosts this to
    ``1 − δ``.  Supports signed (turnstile) updates and real-valued deltas,
    which the precision-sampling baseline needs after exponential scaling.
    """

    __slots__ = ("_table", "_bucket_hashes", "_sign_hashes", "_width", "_depth")

    def __init__(
        self,
        width: int,
        depth: int,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be ≥ 1")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self._width = width
        self._depth = depth
        self._table = np.zeros((depth, width), dtype=np.float64)
        self._bucket_hashes = [KWiseHash(2, width, rng) for _ in range(depth)]
        # 4-wise independence suffices for the variance bound (AMS-style).
        self._sign_hashes = [KWiseHash(4, 1 << 16, rng) for _ in range(depth)]

    @classmethod
    def from_error(
        cls,
        epsilon: float,
        delta: float,
        seed: int | np.random.Generator | None = None,
    ) -> "CountSketch":
        width = max(1, math.ceil(9.0 / epsilon**2))
        depth = max(1, math.ceil(4 * math.log(1.0 / delta)))
        return cls(width, depth, seed)

    @property
    def width(self) -> int:
        return self._width

    @property
    def depth(self) -> int:
        return self._depth

    def _sign(self, row: int, item: int) -> int:
        return 1 - 2 * (self._sign_hashes[row](item) & 1)

    def update(self, item: int, delta: float = 1.0) -> None:
        for row in range(self._depth):
            bucket = self._bucket_hashes[row](item)
            self._table[row, bucket] += self._sign(row, item) * delta

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def estimate(self, item: int) -> float:
        """Median-of-rows unbiased point estimate of ``f_item``."""
        vals = [
            self._sign(row, item) * self._table[row, self._bucket_hashes[row](item)]
            for row in range(self._depth)
        ]
        return float(np.median(vals))

    def l2_estimate(self) -> float:
        """Median-of-rows estimate of ``‖f‖₂`` (AMS via the sketch rows)."""
        row_norms = np.sqrt((self._table**2).sum(axis=1))
        return float(np.median(row_norms))
