"""The Misra–Gries deterministic heavy-hitter summary ([MG82], Theorem 3.2).

With ``capacity = k`` counters on an insertion-only stream of length ``m``:

* every item with ``f_i > m/(k+1)`` is present in the summary, and
* each stored estimate satisfies ``f_i − m/(k+1) ≤ est(i) ≤ f_i``.

Theorem 3.4 uses this determinism to extract a *guaranteed* bound
``‖f‖∞ ≤ Z ≤ ‖f‖∞ + m/(k+1)`` — any randomized estimator would inject
additive error into the sampler's distribution, breaking true perfection.
"""

from __future__ import annotations

__all__ = ["MisraGries"]


class MisraGries:
    """Misra–Gries summary with ``capacity`` counters.

    Notes
    -----
    The classic "decrement-all" step is implemented lazily: when the
    summary is full and a new item arrives, every counter is decremented
    and zero-count entries evicted.  Amortized O(1) updates.
    """

    __slots__ = ("_capacity", "_counters", "_m")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be ≥ 1, got {capacity}")
        self._capacity = capacity
        self._counters: dict[int, int] = {}
        self._m = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def stream_length(self) -> int:
        """Number of unit insertions processed so far."""
        return self._m

    def update(self, item: int, count: int = 1) -> None:
        """Process ``count`` insertions of ``item``."""
        if count < 1:
            raise ValueError("Misra-Gries accepts positive insertions only")
        self._m += count
        counters = self._counters
        if item in counters:
            counters[item] += count
            return
        if len(counters) < self._capacity:
            counters[item] = count
            return
        # Summary full: decrement everyone by the largest amount that keeps
        # the new item's residual count, evicting exhausted counters.
        decrement = min(count, min(counters.values()))
        remaining = count - decrement
        dead = []
        for key in counters:
            counters[key] -= decrement
            if counters[key] == 0:
                dead.append(key)
        for key in dead:
            del counters[key]
        if remaining > 0:
            # Recurse at most O(log count) times; for unit updates this
            # branch never recurses.
            self.update(item, remaining)

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def estimate(self, item: int) -> int:
        """Lower-bound estimate of ``f_item`` (0 if not tracked)."""
        return self._counters.get(item, 0)

    def error_bound(self) -> float:
        """The deterministic additive error ``m/(capacity+1)``."""
        return self._m / (self._capacity + 1)

    def heavy_hitters(self, threshold: float) -> dict[int, int]:
        """All tracked items whose *estimate* exceeds ``threshold``."""
        return {i: c for i, c in self._counters.items() if c > threshold}

    def items(self) -> dict[int, int]:
        """Copy of the tracked (item, estimate) pairs."""
        return dict(self._counters)

    def linf_upper_bound(self) -> float:
        """A certified upper bound ``Z``: ``‖f‖∞ ≤ Z ≤ ‖f‖∞ + m/(k+1)``.

        This is the deterministic normalizer Theorem 3.4 needs.  Proof:
        for the true maximizer ``i*``, ``est(i*) ≥ f_{i*} − m/(k+1)``, so
        ``max est + m/(k+1) ≥ ‖f‖∞``; and every estimate is ≤ its true
        frequency ≤ ``‖f‖∞``.
        """
        best = max(self._counters.values(), default=0)
        return best + self.error_bound()
