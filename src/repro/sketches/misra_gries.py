"""The Misra–Gries deterministic heavy-hitter summary ([MG82], Theorem 3.2).

With ``capacity = k`` counters on an insertion-only stream of length ``m``:

* every item with ``f_i > m/(k+1)`` is present in the summary, and
* each stored estimate satisfies ``f_i − m/(k+1) ≤ est(i) ≤ f_i``.

Theorem 3.4 uses this determinism to extract a *guaranteed* bound
``‖f‖∞ ≤ Z ≤ ‖f‖∞ + m/(k+1)`` — any randomized estimator would inject
additive error into the sampler's distribution, breaking true perfection.
"""

from __future__ import annotations

import numpy as np

from repro.lifecycle.memory import INSTANCE_BYTES, mapping_bytes

__all__ = ["MisraGries"]


class MisraGries:
    """Misra–Gries summary with ``capacity`` counters.

    Notes
    -----
    The classic "decrement-all" step is implemented lazily: when the
    summary is full and a new item arrives, every counter is decremented
    and zero-count entries evicted.  Amortized O(1) updates.
    """

    __slots__ = ("_capacity", "_counters", "_m")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be ≥ 1, got {capacity}")
        self._capacity = capacity
        self._counters: dict[int, int] = {}
        self._m = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def stream_length(self) -> int:
        """Number of unit insertions processed so far."""
        return self._m

    def update(self, item: int, count: int = 1) -> None:
        """Process ``count`` insertions of ``item``."""
        if count < 1:
            raise ValueError("Misra-Gries accepts positive insertions only")
        self._m += count
        counters = self._counters
        while True:
            if item in counters:
                counters[item] += count
                return
            if len(counters) < self._capacity:
                counters[item] = count
                return
            # Summary full: decrement everyone by the largest amount that
            # keeps the new item's residual count, evicting exhausted
            # counters.  At most O(log count) rounds; unit updates never
            # loop.
            decrement = min(count, min(counters.values()))
            dead = []
            for key in counters:
                counters[key] -= decrement
                if counters[key] == 0:
                    dead.append(key)
            for key in dead:
                del counters[key]
            count -= decrement
            if count == 0:
                return

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def update_batch(self, items) -> None:
        """Ingest a chunk via per-distinct-item weighted updates.

        The resulting summary can differ from the unit-update run (the
        decrement schedule depends on arrival grouping) but the
        deterministic sandwich ``f_i − m/(k+1) ≤ est(i) ≤ f_i`` — all the
        samplers ever rely on — holds for any weighted update order.
        """
        arr = np.asarray(items, dtype=np.int64)
        if arr.size == 0:
            return
        uniq, cnts = np.unique(arr, return_counts=True)
        for item, count in zip(uniq.tolist(), cnts.tolist()):
            self.update(item, count)

    def merge(self, other: "MisraGries") -> None:
        """Absorb another summary ([ACHPWY12] mergeable-summaries style).

        Counters are summed, then the ``(capacity+1)``-th largest value is
        subtracted from all (evicting the non-positive) — the per-item
        undercount is at most ``m₁/(k+1) + m₂/(k+1) = m/(k+1)``, so the
        certified ``linf_upper_bound`` survives merging.
        """
        if not isinstance(other, MisraGries):
            raise TypeError(f"cannot merge MisraGries with {type(other).__name__}")
        if other._capacity != self._capacity:
            raise ValueError(
                f"capacities differ: {self._capacity} vs {other._capacity}"
            )
        merged = self._counters
        for item, count in other._counters.items():
            merged[item] = merged.get(item, 0) + count
        self._m += other._m
        if len(merged) > self._capacity:
            cut = sorted(merged.values(), reverse=True)[self._capacity]
            self._counters = {
                item: count - cut for item, count in merged.items() if count > cut
            }

    def snapshot(self) -> dict:
        """Checkpoint as plain arrays + scalars (see repro.engine.state)."""
        size = len(self._counters)
        return {
            "kind": "misra_gries",
            "capacity": self._capacity,
            "stream_length": self._m,
            "keys": np.fromiter(self._counters.keys(), dtype=np.int64, count=size),
            "vals": np.fromiter(self._counters.values(), dtype=np.int64, count=size),
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "misra_gries":
            raise ValueError(f"not a misra_gries snapshot: {state.get('kind')!r}")
        self._capacity = int(state["capacity"])
        self._m = int(state["stream_length"])
        self._counters = {
            int(k): int(v) for k, v in zip(state["keys"], state["vals"])
        }

    def approx_size_bytes(self) -> int:
        """Approximate resident bytes of the counter table."""
        return INSTANCE_BYTES + mapping_bytes(len(self._counters))

    def estimate(self, item: int) -> int:
        """Lower-bound estimate of ``f_item`` (0 if not tracked)."""
        return self._counters.get(item, 0)

    def error_bound(self) -> float:
        """The deterministic additive error ``m/(capacity+1)``."""
        return self._m / (self._capacity + 1)

    def heavy_hitters(self, threshold: float) -> dict[int, int]:
        """All tracked items whose *estimate* exceeds ``threshold``."""
        return {i: c for i, c in self._counters.items() if c > threshold}

    def items(self) -> dict[int, int]:
        """Copy of the tracked (item, estimate) pairs."""
        return dict(self._counters)

    def linf_upper_bound(self) -> float:
        """A certified upper bound ``Z``: ``‖f‖∞ ≤ Z ≤ ‖f‖∞ + m/(k+1)``.

        This is the deterministic normalizer Theorem 3.4 needs.  Proof:
        for the true maximizer ``i*``, ``est(i*) ≥ f_{i*} − m/(k+1)``, so
        ``max est + m/(k+1) ≥ ‖f‖∞``; and every estimate is ≤ its true
        frequency ≤ ``‖f‖∞``.
        """
        best = max(self._counters.values(), default=0)
        return best + self.error_bound()
