"""k-wise independent hash families over the Mersenne prime ``2^31 − 1``.

The paper's algorithms assume either limited-independence hashing (AMS,
CountSketch) or a random oracle (Remark 5.1).  We implement the standard
polynomial construction: a random degree-``k−1`` polynomial over
``GF(p)`` is a k-wise independent family.  ``p = 2^31 − 1`` keeps all
intermediate products inside ``int64``, so evaluation is vectorizable.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MERSENNE_P", "KWiseHash", "PairwiseHash", "random_oracle_hash"]

MERSENNE_P = (1 << 31) - 1


class KWiseHash:
    """A hash drawn from a k-wise independent family ``[0, p) → [0, out_range)``.

    Parameters
    ----------
    k:
        Independence (polynomial degree is ``k − 1``).
    out_range:
        Outputs are reduced modulo ``out_range`` (slight non-uniformity of
        the modular reduction is ≤ out_range/p, negligible for our sizes).
    seed:
        Seed or Generator for drawing the coefficients.
    """

    __slots__ = ("_coeffs", "_out_range")

    def __init__(
        self,
        k: int,
        out_range: int,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"independence k must be ≥ 1, got {k}")
        if not 1 <= out_range <= MERSENNE_P:
            raise ValueError(f"out_range must be in [1, {MERSENNE_P}]")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        coeffs = rng.integers(0, MERSENNE_P, size=k, dtype=np.int64)
        # A zero leading coefficient only reduces the effective degree; force
        # it non-zero so the family is exactly the degree-(k-1) family.
        if k > 1 and coeffs[-1] == 0:
            coeffs[-1] = 1
        self._coeffs = coeffs
        self._out_range = out_range

    @property
    def independence(self) -> int:
        return int(self._coeffs.size)

    @property
    def out_range(self) -> int:
        return self._out_range

    def __call__(self, x: int | np.ndarray) -> int | np.ndarray:
        """Evaluate the hash at ``x`` (scalar or array)."""
        arr = np.asarray(x, dtype=np.int64) % MERSENNE_P
        acc = np.zeros_like(arr)
        # Horner evaluation mod p; products stay < 2^62.
        for c in self._coeffs[::-1]:
            acc = (acc * arr + c) % MERSENNE_P
        out = acc % self._out_range
        if np.isscalar(x) or arr.ndim == 0:
            return int(out)
        return out

    def sign(self, x: int | np.ndarray) -> int | np.ndarray:
        """±1 values derived from the low bit (for sign sketches use an
        even ``out_range``)."""
        h = self(x)
        if isinstance(h, np.ndarray):
            return 1 - 2 * (h & 1)
        return 1 - 2 * (h & 1)


class PairwiseHash(KWiseHash):
    """The common 2-wise (``ax + b``) special case."""

    def __init__(self, out_range: int, seed: int | np.random.Generator | None = None) -> None:
        super().__init__(2, out_range, seed)


def random_oracle_hash(
    n: int, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """A full random-oracle table ``h : [0, n) → [0, 1)``.

    Used by the random-oracle F0 sampler (Remark 5.1).  Storing the table is
    exactly the Ω(n) randomness cost the paper charges the random-oracle
    model with — we make the cost explicit by materializing it.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    return rng.random(n)
