"""Deterministic k-sparse recovery and sparsity testing (Theorems D.1/D.2).

The paper cites Ganguly's k-set structures [Gan08, GM08] for strict
turnstile F0 sampling.  We implement the classical power-sum / Prony
construction those structures are built on:

* maintain the ``2k`` (or ``4k`` for the tester) power-sum *moments*
  ``s_j = Σ_i f_i·x_i^j mod q`` where ``x_i = i + 1`` embeds the universe
  into ``GF(q)^*``;
* when ``f`` is k-sparse, the moment sequence obeys a linear recurrence
  whose characteristic polynomial has the support points as roots —
  Berlekamp–Massey finds it, root extraction finds the support, and a
  Vandermonde solve recovers the frequencies, all deterministically.

Space is ``O(k)`` field elements and updates cost ``O(k)`` — matching the
``O(k·log)``-style bounds of Theorem D.2 up to the word model.

The tester keeps ``4k`` moments: if verification of a recovered ≤k-sparse
candidate against all ``4k`` moments passes, then either the candidate is
exactly ``f`` or ``f`` has sparsity ``> 3k`` (two vectors sharing 4k
power-sums differ in > 4k coordinates).  This reproduces the promise-gap
structure of Theorem D.1 with gap factor 3.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["SparseRecovery", "SparsityTester", "RecoveryResult"]

# A 31-bit Mersenne prime: products of two residues fit in int64.
_Q = (1 << 31) - 1


def _berlekamp_massey(seq: list[int], q: int) -> list[int]:
    """Minimal LFSR (connection polynomial) for ``seq`` over GF(q).

    Returns ``[1, c_1, ..., c_L]`` such that
    ``s_j = −(c_1 s_{j−1} + ... + c_L s_{j−L})`` for all valid ``j``.
    """
    c = [1] + [0] * len(seq)
    b = [1] + [0] * len(seq)
    l, m, bb = 0, 1, 1
    for i, s in enumerate(seq):
        # Discrepancy.
        d = s % q
        for j in range(1, l + 1):
            d = (d + c[j] * seq[i - j]) % q
        if d == 0:
            m += 1
            continue
        coef = d * pow(bb, q - 2, q) % q
        if 2 * l <= i:
            old_c = c[:]
            for j in range(len(b) - m):
                c[j + m] = (c[j + m] - coef * b[j]) % q
            l, b, bb, m = i + 1 - l, old_c, d, 1
        else:
            for j in range(len(b) - m):
                c[j + m] = (c[j + m] - coef * b[j]) % q
            m += 1
    return c[: l + 1]


def _solve_mod(a: np.ndarray, rhs: np.ndarray, q: int) -> np.ndarray:
    """Gaussian elimination mod prime ``q`` for small dense systems."""
    a = a.astype(object) % q
    rhs = rhs.astype(object) % q
    d = a.shape[0]
    for col in range(d):
        pivot = next((r for r in range(col, d) if a[r, col] % q), None)
        if pivot is None:
            raise ArithmeticError("singular Vandermonde system")
        if pivot != col:
            a[[col, pivot]] = a[[pivot, col]]
            rhs[[col, pivot]] = rhs[[pivot, col]]
        inv = pow(int(a[col, col]), q - 2, q)
        a[col] = (a[col] * inv) % q
        rhs[col] = (rhs[col] * inv) % q
        for r in range(d):
            if r != col and a[r, col]:
                factor = a[r, col]
                a[r] = (a[r] - factor * a[col]) % q
                rhs[r] = (rhs[r] - factor * rhs[col]) % q
    return rhs.astype(np.int64)


@dataclasses.dataclass(frozen=True)
class RecoveryResult:
    """Outcome of a recovery attempt."""

    success: bool
    support: tuple[int, ...] = ()
    frequencies: tuple[int, ...] = ()

    def as_dict(self) -> dict[int, int]:
        return dict(zip(self.support, self.frequencies))


class SparseRecovery:
    """Deterministic recovery of a k-sparse frequency vector.

    Parameters
    ----------
    n:
        Universe size (items in ``[0, n)``; requires ``n + 1 < q``).
    k:
        Sparsity budget.
    moments:
        Number of power sums tracked; ``2k`` suffices for recovery,
        ``4k`` additionally enables verification (used by the tester).
    """

    __slots__ = ("_n", "_k", "_num_moments", "_moments", "_powers_cache")

    def __init__(self, n: int, k: int, moments: int | None = None) -> None:
        if k < 1:
            raise ValueError("sparsity k must be ≥ 1")
        if n + 1 >= _Q:
            raise ValueError("universe too large for the 31-bit field")
        self._n = n
        self._k = k
        self._num_moments = moments if moments is not None else 2 * k
        if self._num_moments < 2 * k:
            raise ValueError("need at least 2k moments for recovery")
        self._moments = np.zeros(self._num_moments, dtype=np.int64)
        self._powers_cache: dict[int, np.ndarray] = {}

    @property
    def k(self) -> int:
        return self._k

    @property
    def n(self) -> int:
        return self._n

    def _powers(self, item: int) -> np.ndarray:
        powers = self._powers_cache.get(item)
        if powers is None:
            x = item + 1  # embed [0, n) into GF(q)^*
            powers = np.empty(self._num_moments, dtype=np.int64)
            acc = 1
            for j in range(self._num_moments):
                powers[j] = acc
                acc = (acc * x) % _Q
            self._powers_cache[item] = powers
        return powers

    def update(self, item: int, delta: int = 1) -> None:
        if not 0 <= item < self._n:
            raise ValueError(f"item {item} outside universe [0, {self._n})")
        self._moments = (self._moments + (delta % _Q) * self._powers(item)) % _Q

    def extend(self, updates) -> None:
        """Apply ``(item, delta)`` pairs or bare items (unit insertions)."""
        for u in updates:
            if isinstance(u, tuple):
                self.update(*u)
            else:
                self.update(u)

    def is_zero(self) -> bool:
        """True iff all tracked moments vanish (so ``f = 0`` whenever
        ``f`` is ≤(moments/2)-sparse with entries in ``(−q, q)``)."""
        return not self._moments.any()

    def recover(self) -> RecoveryResult:
        """Attempt recovery; succeeds iff ``f`` is ≤k-sparse.

        Frequencies are returned as signed integers in
        ``(−q/2, q/2)`` (sufficient for all experiments, where
        ``|f_i| < 2^30``).
        """
        if self.is_zero():
            return RecoveryResult(True, (), ())
        seq = [int(v) for v in self._moments[: 2 * self._k]]
        conn = _berlekamp_massey(seq, _Q)
        degree = len(conn) - 1
        if degree == 0 or degree > self._k:
            return RecoveryResult(False)
        support = self._find_roots(conn)
        if len(support) != degree:
            return RecoveryResult(False)
        freqs = self._solve_frequencies(support, degree)
        if freqs is None:
            return RecoveryResult(False)
        pairs = [
            (item, f)
            for item, f in sorted(zip(support, freqs))
            if f != 0
        ]
        result = RecoveryResult(
            True,
            tuple(item for item, __ in pairs),
            tuple(f for __, f in pairs),
        )
        if not self._verify(result):
            return RecoveryResult(False)
        return result

    def _find_roots(self, conn: list[int]) -> list[int]:
        """Universe scan for roots of the connection polynomial.

        The roots are the field points ``i + 1`` of the support.  Scanning
        ``[0, n)`` is O(n·k) — acceptable at experiment scale and fully
        deterministic (Chien search over the embedded universe).
        """
        candidates = np.arange(1, self._n + 1, dtype=np.int64)
        acc = np.zeros_like(candidates)
        for c in conn:  # evaluate x^L + c_1 x^{L-1} + ... + c_L via Horner
            acc = (acc * candidates + c) % _Q
        return [int(i) for i in np.flatnonzero(acc == 0)]

    def _solve_frequencies(self, support: list[int], degree: int):
        xs = np.asarray([item + 1 for item in support], dtype=object)
        vander = np.empty((degree, degree), dtype=object)
        row = np.ones(degree, dtype=object)
        for j in range(degree):
            vander[j] = row
            row = (row * xs) % _Q
        rhs = self._moments[:degree].astype(object)
        try:
            sol = _solve_mod(vander, rhs, _Q)
        except ArithmeticError:
            return None
        centered = [int(v) if v <= _Q // 2 else int(v) - _Q for v in sol]
        return centered

    def _verify(self, result: RecoveryResult) -> bool:
        """Check the candidate reproduces *all* tracked moments."""
        expected = np.zeros(self._num_moments, dtype=np.int64)
        for item, f in zip(result.support, result.frequencies):
            expected = (expected + (f % _Q) * self._powers(item)) % _Q
        return bool((expected == self._moments).all())


class SparsityTester:
    """Gap sparsity tester in the spirit of Theorem D.1.

    Maintains ``4k`` moments.  :meth:`is_k_sparse` returns

    * ``True``  — ``f`` is ≤k-sparse, and :meth:`recover` yields it; or
    * ``False`` — ``f`` is *not* ≤k-sparse (it may have any sparsity
      > k; vectors of sparsity in ``(k, 3k]`` are always detected, the
      promise-gap analogue of the paper's (k, 4k) separation).
    """

    __slots__ = ("_recovery",)

    def __init__(self, n: int, k: int) -> None:
        self._recovery = SparseRecovery(n, k, moments=4 * k)

    @property
    def k(self) -> int:
        return self._recovery.k

    def update(self, item: int, delta: int = 1) -> None:
        self._recovery.update(item, delta)

    def extend(self, updates) -> None:
        self._recovery.extend(updates)

    def is_k_sparse(self) -> bool:
        return self._recovery.recover().success

    def recover(self) -> RecoveryResult:
        return self._recovery.recover()
