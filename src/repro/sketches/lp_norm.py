"""Insertion-only ``F_p`` moment estimation.

The estimator is the classical AMS sampling estimator ([AMS99]): reservoir-
sample a position ``J`` uniformly, count the occurrences ``r`` of the
sampled item from ``J`` onward, and output ``X = m·(r^p − (r−1)^p)``.  The
telescoping identity that makes ``X`` unbiased for ``F_p`` is the very same
identity Framework 1.3 builds on, so this module is both a substrate (the
sliding-window samplers need norm estimates) and a minimal demonstration of
the paper's core trick.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["exact_fp", "FpEstimator"]


def exact_fp(frequencies: np.ndarray, p: float) -> float:
    """Exact ``F_p = Σ |f_i|^p`` of a frequency vector (oracle helper)."""
    freq = np.abs(np.asarray(frequencies, dtype=np.float64))
    nonzero = freq[freq > 0]
    if nonzero.size == 0:
        return 0.0
    return float((nonzero**p).sum())


class _AmsUnit:
    """One AMS sampling unit: a uniform position and its forward count."""

    __slots__ = ("item", "count", "_t", "_rng")

    def __init__(self, rng: np.random.Generator) -> None:
        self.item: int | None = None
        self.count = 0
        self._t = 0
        self._rng = rng

    def update(self, item: int) -> None:
        self._t += 1
        if self._rng.random() < 1.0 / self._t:
            self.item = item
            self.count = 0
        if item == self.item:
            self.count += 1


class FpEstimator:
    """Median-of-means AMS estimator for ``F_p`` on insertion-only streams.

    Parameters
    ----------
    p:
        Moment order, ``p > 0``.
    per_group, groups:
        ``per_group`` units are averaged per group; the median over
        ``groups`` groups is returned.  Accuracy improves as
        ``O(1/√per_group)`` relative to the distribution's coefficient of
        variation (which is bounded by ``p·n^{1−1/p}`` for ``p ≥ 1``).
    """

    __slots__ = ("_p", "_units", "_groups", "_per_group", "_m")

    def __init__(
        self,
        p: float,
        per_group: int = 64,
        groups: int = 5,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if p <= 0:
            raise ValueError(f"p must be positive, got {p}")
        if per_group < 1 or groups < 1:
            raise ValueError("per_group and groups must be ≥ 1")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self._p = p
        self._groups = groups
        self._per_group = per_group
        self._units = [_AmsUnit(rng) for _ in range(groups * per_group)]
        self._m = 0

    @property
    def p(self) -> float:
        return self._p

    @property
    def stream_length(self) -> int:
        return self._m

    def update(self, item: int) -> None:
        self._m += 1
        for unit in self._units:
            unit.update(item)

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def estimate(self) -> float:
        """Median-of-means estimate of ``F_p``."""
        if self._m == 0:
            return 0.0
        p = self._p
        vals = np.asarray(
            [
                self._m * (u.count**p - (u.count - 1) ** p) if u.count > 0 else 0.0
                for u in self._units
            ],
            dtype=np.float64,
        )
        means = vals.reshape(self._groups, self._per_group).mean(axis=1)
        return float(np.median(means))

    def lp_estimate(self) -> float:
        """Estimate of ``‖f‖_p = F_p^{1/p}``."""
        return max(self.estimate(), 0.0) ** (1.0 / self._p)


def theoretical_units_for_error(p: float, n: int, epsilon: float) -> int:
    """How many AMS units give relative error ``ε`` w.const.p. for ``p ≥ 1``.

    [AMS99]: the estimator's variance is at most ``p·n^{1−1/p}·F_p²``, so
    ``O(p·n^{1−1/p}/ε²)`` averaged copies suffice.  Exposed for the space
    accounting in benchmarks.
    """
    if p < 1:
        return math.ceil(1.0 / epsilon**2)
    return math.ceil(p * n ** (1.0 - 1.0 / p) / epsilon**2)
