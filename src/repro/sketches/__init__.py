"""Streaming sketch substrates.

Everything the paper's samplers lean on is implemented here from scratch:

* :mod:`repro.sketches.hashing` — k-wise independent hash families over a
  Mersenne-prime field (substitute for the paper's random oracle /
  Nisan-PRG derandomization).
* :mod:`repro.sketches.misra_gries` — the deterministic heavy-hitter
  summary (Theorem 3.2, [MG82]) supplying the ``Z ≥ ‖f‖∞`` normalizer of
  Theorem 3.4.
* :mod:`repro.sketches.countsketch` / :mod:`repro.sketches.count_min` —
  randomized frequency estimators used by the precision-sampling baseline.
* :mod:`repro.sketches.ams` — the AMS F2 sketch.
* :mod:`repro.sketches.lp_norm` — insertion-only ``(1±ε)`` Fp estimation.
* :mod:`repro.sketches.smooth_histogram` — the Braverman–Ostrovsky smooth
  histogram framework (Definitions A.1–A.3, Theorems A.4/A.5) used by the
  sliding-window samplers.
* :mod:`repro.sketches.sparse_recovery` — deterministic k-sparse recovery
  and the sparsity tester (Theorems D.1, D.2) for strict turnstile F0.
"""

from repro.sketches.hashing import KWiseHash, PairwiseHash, random_oracle_hash
from repro.sketches.misra_gries import MisraGries
from repro.sketches.count_min import CountMin
from repro.sketches.countsketch import CountSketch
from repro.sketches.ams import AmsF2
from repro.sketches.lp_norm import FpEstimator, exact_fp
from repro.sketches.smooth_histogram import (
    SmoothHistogram,
    SlidingWindowFpEstimate,
    SlidingWindowCountEstimate,
    fp_smoothness,
)
from repro.sketches.sparse_recovery import SparseRecovery, SparsityTester

__all__ = [
    "KWiseHash",
    "PairwiseHash",
    "random_oracle_hash",
    "MisraGries",
    "CountMin",
    "CountSketch",
    "AmsF2",
    "FpEstimator",
    "exact_fp",
    "SmoothHistogram",
    "SlidingWindowFpEstimate",
    "SlidingWindowCountEstimate",
    "fp_smoothness",
    "SparseRecovery",
    "SparsityTester",
]
