"""The Alon–Matias–Szegedy F2 sketch ([AMS99]).

Algorithm 6 (sliding-window L2 sampler) needs a constant-factor
approximation ``F`` of ``√F2``; the AMS sign sketch provides it in
O(log n) words.  The telescoping identity at the heart of the paper's
Framework 1.3 is itself credited to AMS, so the sketch doubles as a
historically faithful substrate.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sketches.hashing import KWiseHash

__all__ = ["AmsF2"]


class AmsF2:
    """AMS F2 estimator: median of ``groups`` means of ``per_group`` square
    sign-sums.

    ``estimate()`` is within ``(1 ± ε)F2`` with probability ``1 − δ`` for
    ``per_group = O(1/ε²)`` and ``groups = O(log 1/δ)``.
    """

    __slots__ = ("_sums", "_signs", "_groups", "_per_group")

    def __init__(
        self,
        per_group: int = 16,
        groups: int = 5,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if per_group < 1 or groups < 1:
            raise ValueError("per_group and groups must be ≥ 1")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self._groups = groups
        self._per_group = per_group
        total = groups * per_group
        self._sums = np.zeros(total, dtype=np.float64)
        self._signs = [KWiseHash(4, 1 << 16, rng) for _ in range(total)]

    @classmethod
    def from_error(
        cls,
        epsilon: float,
        delta: float,
        seed: int | np.random.Generator | None = None,
    ) -> "AmsF2":
        per_group = max(1, math.ceil(8.0 / epsilon**2))
        groups = max(1, math.ceil(4 * math.log(1.0 / delta)))
        return cls(per_group, groups, seed)

    def update(self, item: int, delta: float = 1.0) -> None:
        for idx, h in enumerate(self._signs):
            sign = 1 - 2 * (h(item) & 1)
            self._sums[idx] += sign * delta

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def estimate(self) -> float:
        """Median-of-means estimate of ``F2 = Σ f_i²``."""
        squares = self._sums**2
        means = squares.reshape(self._groups, self._per_group).mean(axis=1)
        return float(np.median(means))

    def l2_estimate(self) -> float:
        """Estimate of ``‖f‖₂ = √F2``."""
        return math.sqrt(max(self.estimate(), 0.0))
