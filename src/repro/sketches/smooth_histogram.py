"""The Braverman–Ostrovsky smooth histogram framework ([BO07]; paper
Definitions A.1–A.3, Theorems A.4/A.5, Figure 1).

A *smooth* function admits sliding-window estimation by maintaining a
logarithmic number of suffix estimators ("checkpoints"): once a suffix's
value is within ``(1 − β)`` of an enclosing suffix it stays within
``(1 − α)`` forever, so middle checkpoints can be discarded.  The active
window is always sandwiched between two adjacent checkpoints (the paper's
Figure 1), and the younger one's estimate is a ``(1 ± α)``-approximation.

The histogram is generic over the per-suffix estimator: any object exposing
``update(item)`` and ``estimate() -> float``.  ``ExactSuffixFp`` (linear
space, exact) and :class:`repro.sketches.lp_norm.FpEstimator` (sublinear,
randomized) are the two stock choices.
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np

from repro.lifecycle.memory import INSTANCE_BYTES, mapping_bytes

__all__ = [
    "fp_smoothness",
    "ExactSuffixFp",
    "SmoothHistogram",
    "SlidingWindowFpEstimate",
    "SlidingWindowCountEstimate",
]


def fp_smoothness(p: float, alpha: float) -> tuple[float, float]:
    """The ``(α, β)`` smoothness of ``F_p`` (Theorem A.4).

    For ``p ≥ 1``, ``F_p`` is ``(α, α^p/p^p)``-smooth; for ``p < 1`` it is
    ``(α, α)``-smooth.
    """
    if not 0 < alpha < 1:
        raise ValueError("alpha must be in (0, 1)")
    if p <= 0:
        raise ValueError("p must be positive")
    if p < 1:
        return alpha, alpha
    return alpha, (alpha / p) ** p


class ExactSuffixFp:
    """Exact ``F_p`` of a suffix — the simplest smooth-histogram estimator.

    Linear space in the suffix support; used when the experiment's focus is
    the histogram machinery rather than the inner sketch.
    """

    __slots__ = ("_p", "_freq", "_fp")

    def __init__(self, p: float) -> None:
        self._p = p
        self._freq: dict[int, int] = {}
        self._fp = 0.0

    def update(self, item: int) -> None:
        c = self._freq.get(item, 0)
        self._freq[item] = c + 1
        self._fp += (c + 1) ** self._p - c**self._p

    def estimate(self) -> float:
        return self._fp

    def approx_size_bytes(self) -> int:
        return INSTANCE_BYTES + mapping_bytes(len(self._freq))

    def snapshot(self) -> dict:
        ordered = sorted(self._freq.items())  # canonical serialization
        return {
            "kind": "exact_suffix_fp",
            "p": self._p,
            "fp": self._fp,
            "keys": np.fromiter((k for k, __ in ordered), dtype=np.int64,
                                count=len(ordered)),
            "vals": np.fromiter((v for __, v in ordered), dtype=np.int64,
                                count=len(ordered)),
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "exact_suffix_fp":
            raise ValueError(
                f"not an exact_suffix_fp snapshot: {state.get('kind')!r}"
            )
        self._p = float(state["p"])
        self._fp = float(state["fp"])
        self._freq = {int(k): int(v) for k, v in zip(state["keys"], state["vals"])}


class _Checkpoint:
    __slots__ = ("start", "estimator")

    def __init__(self, start: int, estimator) -> None:
        self.start = start
        self.estimator = estimator


class SmoothHistogram:
    """Maintain ``(1 ± α)`` sliding-window estimates of a smooth function.

    Parameters
    ----------
    estimator_factory:
        Zero-argument callable producing a fresh suffix estimator.
    beta:
        The smoothness parameter β controlling checkpoint density; the
        number of live checkpoints is ``O((1/β) log(max value))``.
    window:
        Window size ``W``.
    """

    __slots__ = ("_factory", "_beta", "_window", "_checkpoints", "_t")

    def __init__(
        self,
        estimator_factory: Callable[[], object],
        beta: float,
        window: int,
    ) -> None:
        if not 0 < beta < 1:
            raise ValueError("beta must be in (0, 1)")
        if window <= 0:
            raise ValueError("window must be positive")
        self._factory = estimator_factory
        self._beta = beta
        self._window = window
        self._checkpoints: list[_Checkpoint] = []
        self._t = 0

    @property
    def window(self) -> int:
        return self._window

    @property
    def time(self) -> int:
        return self._t

    @property
    def checkpoint_count(self) -> int:
        return len(self._checkpoints)

    def checkpoint_starts(self) -> list[int]:
        """Timestamps (start indices) of the live checkpoints."""
        return [c.start for c in self._checkpoints]

    def approx_size_bytes(self) -> int:
        """Approximate resident bytes across the live checkpoints
        (inner estimators without their own accounting count as one
        instance shell each)."""
        total = INSTANCE_BYTES
        for cp in self._checkpoints:
            sizer = getattr(cp.estimator, "approx_size_bytes", None)
            total += INSTANCE_BYTES + (sizer() if callable(sizer) else INSTANCE_BYTES)
        return total

    def update(self, item: int) -> None:
        """Process one stream update."""
        self._t += 1
        # A new checkpoint starts at every update (Definition A.2); pruning
        # keeps only logarithmically many alive.
        self._checkpoints.append(_Checkpoint(self._t, self._factory()))
        for cp in self._checkpoints:
            cp.estimator.update(item)
        self._prune()
        self._expire()

    def _prune(self) -> None:
        """Enforce Definition A.2 (3): among any x_i < x_{i+1} < x_{i+2},
        drop x_{i+1} when g(x_{i+2}) ≥ (1 − β/2)·g(x_i)."""
        kept = self._checkpoints
        changed = True
        threshold = 1.0 - self._beta / 2.0
        while changed:
            changed = False
            i = 0
            while i + 2 < len(kept):
                outer = kept[i].estimator.estimate()
                inner = kept[i + 2].estimator.estimate()
                if inner >= threshold * outer:
                    del kept[i + 1]
                    changed = True
                else:
                    i += 1

    def _expire(self) -> None:
        """Drop all but one checkpoint that precedes the active window."""
        window_start = self._t - self._window + 1
        while (
            len(self._checkpoints) >= 2
            and self._checkpoints[1].start <= window_start
        ):
            self._checkpoints.pop(0)

    def snapshot(self) -> dict:
        """Checkpoint the histogram (requires the inner estimators to be
        snapshotable, e.g. :class:`ExactSuffixFp`)."""
        checkpoints = {}
        for i, cp in enumerate(self._checkpoints):
            estimator = cp.estimator
            if not callable(getattr(estimator, "snapshot", None)):
                raise ValueError(
                    f"inner estimator {type(estimator).__name__} has no "
                    "snapshot(); the histogram cannot be checkpointed"
                )
            checkpoints[str(i)] = {
                "start": cp.start,
                "estimator": estimator.snapshot(),
            }
        return {
            "kind": "smooth_histogram",
            "beta": self._beta,
            "window": self._window,
            "time": self._t,
            "checkpoints": checkpoints,
        }

    def restore(self, state: dict) -> None:
        """Overwrite from a :meth:`snapshot` dict (the estimator factory
        is construction-time configuration and must match)."""
        if state.get("kind") != "smooth_histogram":
            raise ValueError(
                f"not a smooth_histogram snapshot: {state.get('kind')!r}"
            )
        if float(state["beta"]) != self._beta or int(state["window"]) != self._window:
            raise ValueError(
                f"snapshot has beta={state['beta']}, window={state['window']}; "
                f"histogram has beta={self._beta}, window={self._window}"
            )
        self._t = int(state["time"])
        checkpoints: list[_Checkpoint] = []
        entries = state["checkpoints"]
        for i in range(len(entries)):
            entry = entries[str(i)]
            estimator = self._factory()
            estimator.restore(entry["estimator"])
            checkpoints.append(_Checkpoint(int(entry["start"]), estimator))
        self._checkpoints = checkpoints

    def estimate(self) -> float:
        """Estimate of the function over the active window.

        Returns the younger of the two sandwiching checkpoints (the
        paper's ``x_2``), falling back to ``x_1`` when the stream is still
        shorter than the window.
        """
        if not self._checkpoints:
            return 0.0
        window_start = self._t - self._window + 1
        for cp in self._checkpoints:
            if cp.start >= window_start:
                return cp.estimator.estimate()
        return self._checkpoints[-1].estimator.estimate()

    def sandwich(self) -> tuple[float, float]:
        """The (older, younger) sandwiching estimates around the window.

        The true window value lies between them for monotone functions;
        the pair width certifies the approximation quality (Figure 1).
        """
        if not self._checkpoints:
            return 0.0, 0.0
        window_start = self._t - self._window + 1
        older = self._checkpoints[0].estimator.estimate()
        for cp in self._checkpoints:
            if cp.start >= window_start:
                return older, cp.estimator.estimate()
            older = cp.estimator.estimate()
        return older, self._checkpoints[-1].estimator.estimate()


class SlidingWindowFpEstimate:
    """Theorem A.5 substitute: an estimate ``F`` with ``F ≤ L_p ≤ 2F``.

    Wraps a smooth histogram over exact suffix ``F_p`` with ``β`` chosen so
    the histogram's multiplicative error is at most 2; the returned value is
    the histogram estimate deflated by the guaranteed over-approximation
    factor, yielding the one-sided guarantee Algorithm 6 consumes.
    """

    __slots__ = ("_hist", "_p")

    def __init__(self, p: float, window: int, alpha: float = 0.5) -> None:
        __, beta = fp_smoothness(p, alpha)
        self._p = p
        self._hist = SmoothHistogram(lambda: ExactSuffixFp(p), beta, window)

    def update(self, item: int) -> None:
        self._hist.update(item)

    def lp_lower_bound(self) -> float:
        """A value ``F`` with ``F ≤ ‖f_window‖_p ≤ 2F`` (when the window
        is full; early in the stream the histogram covers a superset)."""
        fp_over = self._hist.estimate()  # within (1±α) of window Fp
        lp_over = max(fp_over, 0.0) ** (1.0 / self._p)
        # Estimate can exceed the truth by (1+α)^{1/p} ≤ 2^{1/p} ≤ 2;
        # deflate so the result is a certified lower bound with ratio ≤ 2.
        return lp_over / 2.0 ** (1.0 / self._p)

    @property
    def checkpoint_count(self) -> int:
        return self._hist.checkpoint_count


class SlidingWindowCountEstimate:
    """Smooth-histogram estimate of the window's update count (``F_1``).

    ``F_1`` of the active window is ``min(t, W)`` and is known exactly, so
    this class mainly exists to exercise/validate the histogram on the one
    function whose truth is trivially available.
    """

    __slots__ = ("_hist", "_t", "_window")

    def __init__(self, window: int, beta: float = 0.25) -> None:
        self._hist = SmoothHistogram(lambda: ExactSuffixFp(1.0), beta, window)
        self._t = 0
        self._window = window

    def update(self, item: int) -> None:
        self._t += 1
        self._hist.update(item)

    def estimate(self) -> float:
        return self._hist.estimate()

    def exact(self) -> int:
        return min(self._t, self._window)

    @property
    def checkpoint_count(self) -> int:
        return self._hist.checkpoint_count


def expected_checkpoints(beta: float, max_value: float) -> int:
    """The ``O((1/β)·log(max value))`` checkpoint bound, for assertions."""
    if max_value <= 1:
        return 2
    return math.ceil(2.0 / beta * math.log2(max_value)) + 2
