"""The Count-Min sketch (Cormode–Muthukrishnan).

Used by the fast perfect-sampler variants (Appendix B.2) to identify the
maximal scaled coordinate, and generally as the cheap frequency oracle in
the precision-sampling baseline.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sketches.hashing import KWiseHash

__all__ = ["CountMin"]


class CountMin:
    """Count-Min sketch with ``depth`` rows of ``width`` counters.

    Guarantees (insertion-only): ``f_i ≤ est(i) ≤ f_i + εm`` with
    probability ``1 − δ`` for ``width = ⌈e/ε⌉``, ``depth = ⌈ln 1/δ⌉``.
    """

    __slots__ = ("_table", "_hashes", "_width", "_depth", "_total")

    def __init__(
        self,
        width: int,
        depth: int,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be ≥ 1")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self._width = width
        self._depth = depth
        self._table = np.zeros((depth, width), dtype=np.int64)
        self._hashes = [KWiseHash(2, width, rng) for _ in range(depth)]
        self._total = 0

    @classmethod
    def from_error(
        cls,
        epsilon: float,
        delta: float,
        seed: int | np.random.Generator | None = None,
    ) -> "CountMin":
        """Size the sketch for additive error ``εm`` w.p. ``1 − δ``."""
        if not 0 < epsilon < 1 or not 0 < delta < 1:
            raise ValueError("epsilon and delta must lie in (0, 1)")
        width = math.ceil(math.e / epsilon)
        depth = math.ceil(math.log(1.0 / delta))
        return cls(width, max(depth, 1), seed)

    @property
    def width(self) -> int:
        return self._width

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def total(self) -> int:
        return self._total

    def update(self, item: int, delta: int = 1) -> None:
        for row, h in enumerate(self._hashes):
            self._table[row, h(item)] += delta
        self._total += delta

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def estimate(self, item: int) -> int:
        """Point estimate: minimum over rows (one-sided overestimate)."""
        return int(min(self._table[row, h(item)] for row, h in enumerate(self._hashes)))

    def heavy_hitters(self, candidates, threshold: float) -> dict[int, int]:
        """Candidates whose estimate exceeds ``threshold``."""
        out: dict[int, int] = {}
        for item in candidates:
            est = self.estimate(item)
            if est > threshold:
                out[item] = est
        return out
