"""Stream model, workload generators, and exact ground-truth trackers.

This subpackage is the substrate every sampler in :mod:`repro` runs on.  A
*stream* is a sequence of updates to an implicit frequency vector
``f ∈ R^n`` (Section 1.3 of the paper).  Three regimes are modelled:

* **insertion-only** — each update increments one coordinate by one;
* **turnstile** — updates carry signed integer deltas (the *strict*
  turnstile additionally promises all intermediate vectors stay
  non-negative);
* **sliding window** — only the most recent ``W`` insertion-only updates
  are *active* (Section 4).

Ground truth trackers (:class:`FrequencyVector`,
:class:`WindowedFrequency`) compute the exact frequency vector so tests and
benchmarks can compare sampler output distributions against the true target
distribution.
"""

from repro.streams.stream import (
    Stream,
    StreamKind,
    TurnstileStream,
    Update,
)
from repro.streams.frequency import (
    FrequencyVector,
    WindowedFrequency,
)
from repro.streams.timestamped import (
    TimestampedStream,
    bursty_arrivals,
    poisson_arrivals,
    uniform_arrivals,
    with_arrivals,
)
from repro.streams.generators import (
    adversarial_order_stream,
    constant_stream,
    matrix_stream,
    permuted,
    planted_heavy_hitter_stream,
    random_order_stream,
    sparse_support_stream,
    stream_from_frequencies,
    strict_turnstile_stream,
    two_level_stream,
    uniform_stream,
    zipf_stream,
)

__all__ = [
    "Stream",
    "StreamKind",
    "TimestampedStream",
    "TurnstileStream",
    "Update",
    "bursty_arrivals",
    "poisson_arrivals",
    "uniform_arrivals",
    "with_arrivals",
    "FrequencyVector",
    "WindowedFrequency",
    "adversarial_order_stream",
    "constant_stream",
    "matrix_stream",
    "permuted",
    "planted_heavy_hitter_stream",
    "random_order_stream",
    "sparse_support_stream",
    "stream_from_frequencies",
    "strict_turnstile_stream",
    "two_level_stream",
    "uniform_stream",
    "zipf_stream",
]
