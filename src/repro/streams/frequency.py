"""Exact ground-truth frequency tracking.

These trackers use linear space on purpose: they are the *oracle* against
which sublinear samplers are validated, not part of any sampler.
"""

from __future__ import annotations

from collections import Counter, deque

import numpy as np

__all__ = ["FrequencyVector", "WindowedFrequency"]


class FrequencyVector:
    """Exact frequency vector maintained incrementally.

    Supports signed updates so the same oracle serves insertion-only and
    turnstile experiments.
    """

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"universe size must be positive, got {n}")
        self._n = n
        self._freq = Counter()
        self._total = 0

    @property
    def n(self) -> int:
        return self._n

    @property
    def total(self) -> int:
        """Sum of all frequencies (``F_1`` for non-negative vectors)."""
        return self._total

    def update(self, item: int, delta: int = 1) -> None:
        if not 0 <= item < self._n:
            raise ValueError(f"item {item} outside universe [0, {self._n})")
        new = self._freq[item] + delta
        if new == 0:
            del self._freq[item]
        else:
            self._freq[item] = new
        self._total += delta

    def extend(self, items) -> None:
        """Apply a batch of unit insertions."""
        for item in items:
            self.update(item)

    def __getitem__(self, item: int) -> int:
        return self._freq.get(item, 0)

    def support(self) -> list[int]:
        """Indices with non-zero frequency."""
        return sorted(self._freq)

    def f0(self) -> int:
        """Number of distinct items with non-zero frequency."""
        return len(self._freq)

    def vector(self) -> np.ndarray:
        """Dense copy of the frequency vector."""
        out = np.zeros(self._n, dtype=np.int64)
        for item, count in self._freq.items():
            out[item] = count
        return out

    def fp(self, p: float) -> float:
        """Moment ``F_p = Σ |f_i|^p`` over the support."""
        return float(sum(abs(c) ** p for c in self._freq.values()))

    def f_g(self, g) -> float:
        """Generalized moment ``F_G = Σ G(f_i)`` for a measure ``g``."""
        return float(sum(g(c) for c in self._freq.values()))

    def linf(self) -> int:
        """``‖f‖∞`` (0 for the empty vector)."""
        if not self._freq:
            return 0
        return max(abs(c) for c in self._freq.values())


class WindowedFrequency:
    """Exact frequency vector of the last ``window`` insertion-only updates.

    A deque of the active updates gives O(1) amortized updates; memory is
    O(W), which is fine for an oracle.
    """

    def __init__(self, n: int, window: int) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self._inner = FrequencyVector(n)
        self._window = window
        self._active: deque[int] = deque()

    @property
    def n(self) -> int:
        return self._inner.n

    @property
    def window(self) -> int:
        return self._window

    @property
    def active_count(self) -> int:
        """Number of active (non-expired) updates, ``min(t, W)``."""
        return len(self._active)

    def update(self, item: int) -> None:
        self._active.append(item)
        self._inner.update(item, 1)
        if len(self._active) > self._window:
            expired = self._active.popleft()
            self._inner.update(expired, -1)

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def __getitem__(self, item: int) -> int:
        return self._inner[item]

    def vector(self) -> np.ndarray:
        return self._inner.vector()

    def support(self) -> list[int]:
        return self._inner.support()

    def f0(self) -> int:
        return self._inner.f0()

    def fp(self, p: float) -> float:
        return self._inner.fp(p)

    def f_g(self, g) -> float:
        return self._inner.f_g(g)

    def linf(self) -> int:
        return self._inner.linf()
