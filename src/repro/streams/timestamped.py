"""Timestamped (wall-clock) streams and arrival-process generators.

The sliding-window constructions of Section 4 are stated over *count*
windows ("the last ``W`` updates"), but serving traffic is measured in
*time* windows ("the last five minutes").  :class:`TimestampedStream`
pairs an insertion-only item sequence with a non-decreasing array of
arrival timestamps, giving :mod:`repro.windows` the substrate it samples
over, and gives tests the exact time-window ground truth
(:meth:`TimestampedStream.window_frequencies`).

Arrival processes are generated separately from item values so any
existing workload generator composes with any traffic shape:

* :func:`uniform_arrivals` — a constant-rate clock (one update every
  ``1/rate`` seconds);
* :func:`poisson_arrivals` — i.i.d. exponential inter-arrival gaps, the
  memoryless baseline for request traffic;
* :func:`bursty_arrivals` — a two-state modulated Poisson process
  alternating geometric-length runs of base-rate and burst-rate
  traffic, the regime where time windows and count windows disagree
  most (a count window reaches far into quiet history during a burst).

:func:`with_arrivals` glues a :class:`~repro.streams.Stream` to a
generated clock in one call.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.streams.stream import Stream

__all__ = [
    "TimestampedStream",
    "uniform_arrivals",
    "poisson_arrivals",
    "bursty_arrivals",
    "with_arrivals",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class TimestampedStream:
    """An insertion-only stream whose updates carry arrival timestamps.

    Parameters
    ----------
    items:
        Coordinate updates in ``[0, n)``, one insertion each.
    timestamps:
        Arrival time of each update, in seconds.  Must be non-negative
        and non-decreasing (ties are allowed — batched arrivals).
    n:
        Universe size.

    The object is immutable; iterating yields ``(item, timestamp)``
    pairs.
    """

    __slots__ = ("_stream", "_timestamps")

    def __init__(
        self,
        items: Sequence[int] | np.ndarray,
        timestamps: Sequence[float] | np.ndarray,
        n: int,
    ) -> None:
        stream = Stream(items, n)
        ts = np.asarray(timestamps, dtype=np.float64)
        if ts.ndim != 1:
            raise ValueError("timestamps must form a 1-d sequence")
        if ts.size != len(stream):
            raise ValueError(
                f"{len(stream)} items but {ts.size} timestamps"
            )
        if ts.size:
            if float(ts[0]) < 0:
                raise ValueError("timestamps must be non-negative")
            if np.any(np.diff(ts) < 0):
                raise ValueError("timestamps must be non-decreasing")
        ts.setflags(write=False)
        self._stream = stream
        self._timestamps = ts

    @property
    def n(self) -> int:
        """Universe size."""
        return self._stream.n

    @property
    def items(self) -> np.ndarray:
        """Read-only array of the stream's items."""
        return self._stream.items

    @property
    def timestamps(self) -> np.ndarray:
        """Read-only array of arrival timestamps (seconds)."""
        return self._timestamps

    @property
    def stream(self) -> Stream:
        """The underlying order-only :class:`~repro.streams.Stream`."""
        return self._stream

    @property
    def start_time(self) -> float:
        """Timestamp of the first update (0.0 when empty)."""
        return float(self._timestamps[0]) if self._timestamps.size else 0.0

    @property
    def end_time(self) -> float:
        """Timestamp of the last update (0.0 when empty)."""
        return float(self._timestamps[-1]) if self._timestamps.size else 0.0

    @property
    def duration(self) -> float:
        """``end_time − start_time``."""
        return self.end_time - self.start_time

    def __len__(self) -> int:
        return len(self._stream)

    def __iter__(self) -> Iterator[tuple[int, float]]:
        return zip(self._stream.items.tolist(), self._timestamps.tolist())

    def __repr__(self) -> str:
        return (
            f"TimestampedStream(m={len(self)}, n={self.n}, "
            f"span=[{self.start_time:.3f}, {self.end_time:.3f}])"
        )

    def prefix(self, t: int) -> "TimestampedStream":
        """The stream truncated to its first ``t`` updates."""
        return TimestampedStream(
            self._stream.items[:t], self._timestamps[:t], self.n
        )

    def prefix_until(self, now: float) -> "TimestampedStream":
        """All updates with timestamp ≤ ``now``."""
        cut = int(np.searchsorted(self._timestamps, now, side="right"))
        return self.prefix(cut)

    def active_slice(self, horizon: float, now: float | None = None) -> np.ndarray:
        """Items with timestamp in the window ``(now − horizon, now]``."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if now is None:
            now = self.end_time
        lo = int(np.searchsorted(self._timestamps, now - horizon, side="right"))
        hi = int(np.searchsorted(self._timestamps, now, side="right"))
        return self._stream.items[lo:hi]

    def window_frequencies(
        self, horizon: float, now: float | None = None
    ) -> np.ndarray:
        """Exact frequency vector of the time window ``(now − horizon, now]``
        — the ground truth :mod:`repro.windows` samplers are validated
        against."""
        active = self.active_slice(horizon, now)
        return np.bincount(active, minlength=self.n).astype(np.int64)


def uniform_arrivals(m: int, rate: float, *, start: float = 0.0) -> np.ndarray:
    """``m`` arrivals at a constant ``rate`` per second, starting at
    ``start`` (the first arrival lands at ``start + 1/rate``)."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if start < 0:
        raise ValueError(f"start must be non-negative, got {start}")
    return start + np.arange(1, m + 1, dtype=np.float64) / rate


def poisson_arrivals(
    m: int,
    rate: float,
    *,
    start: float = 0.0,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """``m`` Poisson-process arrivals (exponential gaps, mean ``1/rate``)."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if start < 0:
        raise ValueError(f"start must be non-negative, got {start}")
    gaps = _rng(seed).exponential(scale=1.0 / rate, size=m)
    return start + np.cumsum(gaps)


def bursty_arrivals(
    m: int,
    base_rate: float,
    burst_rate: float,
    *,
    mean_run: int = 200,
    start: float = 0.0,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """A two-state modulated Poisson clock: geometric-length runs
    (mean ``mean_run`` updates) alternate between ``base_rate`` and
    ``burst_rate``.

    During a burst the same number of updates spans a much shorter wall
    interval, so a time window holds many more updates than usual — the
    load shape the :class:`repro.windows.WindowBank` instance-count
    slack has to absorb.
    """
    if base_rate <= 0 or burst_rate <= 0:
        raise ValueError("rates must be positive")
    if mean_run < 1:
        raise ValueError(f"mean_run must be ≥ 1, got {mean_run}")
    if start < 0:
        raise ValueError(f"start must be non-negative, got {start}")
    rng = _rng(seed)
    gaps = np.empty(m, dtype=np.float64)
    filled = 0
    bursting = False
    while filled < m:
        run = min(int(rng.geometric(1.0 / mean_run)), m - filled)
        rate = burst_rate if bursting else base_rate
        gaps[filled:filled + run] = rng.exponential(scale=1.0 / rate, size=run)
        filled += run
        bursting = not bursting
    return start + np.cumsum(gaps)


def with_arrivals(
    stream: Stream,
    *,
    process: str = "poisson",
    rate: float = 1000.0,
    start: float = 0.0,
    seed: int | np.random.Generator | None = None,
    **kwargs,
) -> TimestampedStream:
    """Attach a generated arrival clock to an existing stream.

    ``process`` is one of ``"uniform"``, ``"poisson"``, ``"bursty"``
    (extra keyword arguments go to the arrival generator; ``"bursty"``
    reads ``rate`` as the base rate and needs ``burst_rate``).
    """
    m = len(stream)
    if process == "uniform":
        ts = uniform_arrivals(m, rate, start=start, **kwargs)
    elif process == "poisson":
        ts = poisson_arrivals(m, rate, start=start, seed=seed, **kwargs)
    elif process == "bursty":
        burst_rate = kwargs.pop("burst_rate", 10.0 * rate)
        ts = bursty_arrivals(
            m, rate, burst_rate, start=start, seed=seed, **kwargs
        )
    else:
        raise ValueError(
            f"unknown arrival process {process!r}; "
            "known: bursty, poisson, uniform"
        )
    return TimestampedStream(stream.items, ts, stream.n)
