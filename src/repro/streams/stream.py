"""Core stream abstractions.

All samplers consume streams through the small interface defined here.
Items are integers in ``[0, n)`` (0-based, unlike the paper's ``[n]``; the
translation is mechanical).  Insertion-only streams are stored as a dense
``numpy`` integer array because every experiment replays the same stream
through many sampler instances, and array iteration dominates the harness
cost otherwise.
"""

from __future__ import annotations

import dataclasses
import enum
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["StreamKind", "Update", "Stream", "TurnstileStream"]


class StreamKind(enum.Enum):
    """Which streaming regime a stream's updates obey."""

    INSERTION_ONLY = "insertion-only"
    STRICT_TURNSTILE = "strict-turnstile"
    GENERAL_TURNSTILE = "general-turnstile"


@dataclasses.dataclass(frozen=True, slots=True)
class Update:
    """A single signed update ``(item, delta)`` to coordinate ``item``.

    Insertion-only streams use ``delta == 1`` exclusively; the class exists
    so turnstile algorithms and the lower-bound reduction can share one
    update vocabulary.
    """

    item: int
    delta: int = 1

    def __post_init__(self) -> None:
        if self.item < 0:
            raise ValueError(f"item must be non-negative, got {self.item}")
        if self.delta == 0:
            raise ValueError("zero-delta updates are not allowed")


class Stream:
    """An insertion-only stream over the universe ``[0, n)``.

    Parameters
    ----------
    items:
        The sequence of coordinate updates, one insertion each.
    n:
        Universe size.  Every item must lie in ``[0, n)``.

    The object is immutable; iterating yields plain ``int`` items.
    """

    __slots__ = ("_items", "_n")

    def __init__(self, items: Sequence[int] | np.ndarray, n: int) -> None:
        if n <= 0:
            raise ValueError(f"universe size must be positive, got {n}")
        arr = np.asarray(items, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError("stream items must form a 1-d sequence")
        if arr.size and (arr.min() < 0 or arr.max() >= n):
            raise ValueError(f"stream items must lie in [0, {n})")
        arr.setflags(write=False)
        self._items = arr
        self._n = n

    @property
    def n(self) -> int:
        """Universe size."""
        return self._n

    @property
    def items(self) -> np.ndarray:
        """Read-only array of the stream's items."""
        return self._items

    @property
    def kind(self) -> StreamKind:
        return StreamKind.INSERTION_ONLY

    def __len__(self) -> int:
        return int(self._items.size)

    def __iter__(self) -> Iterator[int]:
        return iter(self._items.tolist())

    def __getitem__(self, index: int) -> int:
        return int(self._items[index])

    def __repr__(self) -> str:
        return f"Stream(m={len(self)}, n={self._n})"

    def frequencies(self) -> np.ndarray:
        """Exact frequency vector ``f`` induced by the whole stream."""
        return np.bincount(self._items, minlength=self._n).astype(np.int64)

    def window_frequencies(self, window: int) -> np.ndarray:
        """Exact frequency vector of the last ``window`` updates."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        active = self._items[-window:]
        return np.bincount(active, minlength=self._n).astype(np.int64)

    def prefix(self, t: int) -> "Stream":
        """The stream truncated to its first ``t`` updates."""
        return Stream(self._items[:t], self._n)

    def concat(self, other: "Stream") -> "Stream":
        """Concatenate two streams over the same universe."""
        if other.n != self._n:
            raise ValueError("cannot concatenate streams over different universes")
        return Stream(np.concatenate([self._items, other.items]), self._n)

    def shuffled(self, rng: np.random.Generator) -> "Stream":
        """A uniformly random reordering (the *random-order* model)."""
        return Stream(rng.permutation(self._items), self._n)


class TurnstileStream:
    """A turnstile stream of signed updates over ``[0, n)``.

    Parameters
    ----------
    updates:
        Iterable of :class:`Update` (or ``(item, delta)`` pairs).
    n:
        Universe size.
    strict:
        When true, validates the *strict* turnstile promise — every
        intermediate frequency vector is non-negative (Appendix D).
    """

    __slots__ = ("_updates", "_n", "_strict")

    def __init__(
        self,
        updates: Iterable[Update | tuple[int, int]],
        n: int,
        strict: bool = True,
    ) -> None:
        if n <= 0:
            raise ValueError(f"universe size must be positive, got {n}")
        normalized: list[Update] = []
        for u in updates:
            if not isinstance(u, Update):
                u = Update(*u)
            if u.item >= n:
                raise ValueError(f"item {u.item} outside universe [0, {n})")
            normalized.append(u)
        self._updates = tuple(normalized)
        self._n = n
        self._strict = strict
        if strict:
            self._check_strictness()

    def _check_strictness(self) -> None:
        freq = np.zeros(self._n, dtype=np.int64)
        for u in self._updates:
            freq[u.item] += u.delta
            if freq[u.item] < 0:
                raise ValueError(
                    "strict turnstile promise violated: coordinate "
                    f"{u.item} went negative"
                )

    @property
    def n(self) -> int:
        return self._n

    @property
    def kind(self) -> StreamKind:
        if self._strict:
            return StreamKind.STRICT_TURNSTILE
        return StreamKind.GENERAL_TURNSTILE

    @property
    def updates(self) -> tuple[Update, ...]:
        return self._updates

    def __len__(self) -> int:
        return len(self._updates)

    def __iter__(self) -> Iterator[Update]:
        return iter(self._updates)

    def __repr__(self) -> str:
        return f"TurnstileStream(m={len(self)}, n={self._n}, kind={self.kind.value})"

    def frequencies(self) -> np.ndarray:
        """Exact final frequency vector."""
        freq = np.zeros(self._n, dtype=np.int64)
        for u in self._updates:
            freq[u.item] += u.delta
        return freq

    @staticmethod
    def from_difference(x: Sequence[int], y: Sequence[int]) -> "TurnstileStream":
        """Build the ``f = x − y`` stream of the Theorem 1.2 reduction.

        Alice inserts ``x``; Bob deletes ``y``.  The result is a *general*
        turnstile stream (intermediate negativity is allowed).
        """
        x_arr = np.asarray(x, dtype=np.int64)
        y_arr = np.asarray(y, dtype=np.int64)
        if x_arr.shape != y_arr.shape:
            raise ValueError("x and y must have the same length")
        n = int(x_arr.size)
        ups: list[Update] = []
        for i in range(n):
            if x_arr[i]:
                ups.append(Update(i, int(x_arr[i])))
        for i in range(n):
            if y_arr[i]:
                ups.append(Update(i, -int(y_arr[i])))
        return TurnstileStream(ups, n, strict=False)
