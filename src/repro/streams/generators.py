"""Synthetic workload generators.

Every generator is deterministic given a seed and returns a
:class:`repro.streams.Stream` (or :class:`TurnstileStream`).  The workloads
mirror the settings the paper's introduction motivates: skewed network
traffic (Zipf), near-uniform sensor streams, sparse-support event logs, and
planted heavy hitters for sanity checks.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.streams.stream import Stream, TurnstileStream, Update

__all__ = [
    "zipf_stream",
    "uniform_stream",
    "constant_stream",
    "two_level_stream",
    "sparse_support_stream",
    "planted_heavy_hitter_stream",
    "random_order_stream",
    "adversarial_order_stream",
    "permuted",
    "strict_turnstile_stream",
    "matrix_stream",
    "stream_from_frequencies",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def stream_from_frequencies(
    frequencies: Sequence[int] | np.ndarray,
    *,
    order: str = "sorted",
    seed: int | np.random.Generator | None = None,
) -> Stream:
    """Materialize a stream with the exact frequency vector ``frequencies``.

    Parameters
    ----------
    frequencies:
        Non-negative integer target frequencies; index ``i`` appears
        ``frequencies[i]`` times.
    order:
        ``"sorted"`` emits all copies of item 0, then item 1, ...;
        ``"random"`` shuffles (the random-order model);
        ``"interleaved"`` round-robins across items (worst case for
        collision-based samplers).
    """
    freq = np.asarray(frequencies, dtype=np.int64)
    if freq.ndim != 1:
        raise ValueError("frequencies must be one-dimensional")
    if freq.size and freq.min() < 0:
        raise ValueError("frequencies must be non-negative")
    n = int(freq.size)
    items = np.repeat(np.arange(n, dtype=np.int64), freq)
    if order == "sorted":
        pass
    elif order == "random":
        items = _rng(seed).permutation(items)
    elif order == "interleaved":
        items = _interleave(freq)
    else:
        raise ValueError(f"unknown order {order!r}")
    return Stream(items, n)


def _interleave(freq: np.ndarray) -> np.ndarray:
    """Round-robin ordering: one copy of each still-live item per round."""
    remaining = freq.copy()
    out: list[int] = []
    while remaining.any():
        live = np.flatnonzero(remaining)
        out.extend(live.tolist())
        remaining[live] -= 1
    return np.asarray(out, dtype=np.int64)


def zipf_stream(
    n: int,
    m: int,
    *,
    alpha: float = 1.1,
    seed: int | np.random.Generator | None = None,
) -> Stream:
    """A stream of ``m`` i.i.d. draws from a Zipf(``alpha``) law on ``[0, n)``.

    Zipfian item popularity is the canonical model for network traffic and
    e-commerce logs; heavy hitters make Lp sampling for ``p > 1``
    interesting (large items dominate ``F_p``).
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    rng = _rng(seed)
    weights = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** alpha
    weights /= weights.sum()
    items = rng.choice(n, size=m, p=weights)
    return Stream(items, n)


def uniform_stream(
    n: int, m: int, *, seed: int | np.random.Generator | None = None
) -> Stream:
    """``m`` i.i.d. uniform draws from ``[0, n)``."""
    rng = _rng(seed)
    return Stream(rng.integers(0, n, size=m), n)


def constant_stream(n: int, m: int, *, item: int = 0) -> Stream:
    """``m`` copies of a single item — the maximally skewed stream."""
    if not 0 <= item < n:
        raise ValueError(f"item {item} outside universe [0, {n})")
    return Stream(np.full(m, item, dtype=np.int64), n)


def two_level_stream(
    n: int,
    *,
    heavy_items: int,
    heavy_count: int,
    light_count: int = 1,
    order: str = "random",
    seed: int | np.random.Generator | None = None,
) -> Stream:
    """``heavy_items`` items appearing ``heavy_count`` times; the rest
    appear ``light_count`` times.

    The two-level shape is where perfect and approximate samplers differ
    most visibly: an approximate sampler's relative error moves noticeable
    mass between the two levels.
    """
    if heavy_items > n:
        raise ValueError("more heavy items than universe size")
    freq = np.full(n, light_count, dtype=np.int64)
    freq[:heavy_items] = heavy_count
    return stream_from_frequencies(freq, order=order, seed=seed)


def sparse_support_stream(
    n: int,
    support: int,
    m: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> Stream:
    """A stream touching only ``support`` uniformly chosen coordinates.

    Exercises the ``F0 ≤ √n`` branch of Algorithm 5 when
    ``support ≤ √n``.
    """
    if support > n:
        raise ValueError("support cannot exceed universe size")
    if support <= 0:
        raise ValueError("support must be positive")
    rng = _rng(seed)
    alive = rng.choice(n, size=support, replace=False)
    items = rng.choice(alive, size=m)
    return Stream(items, n)


def planted_heavy_hitter_stream(
    n: int,
    m: int,
    *,
    heavy_fraction: float = 0.5,
    heavy_item: int = 0,
    seed: int | np.random.Generator | None = None,
) -> Stream:
    """One planted item carrying ``heavy_fraction`` of the mass, rest uniform."""
    if not 0 < heavy_fraction < 1:
        raise ValueError("heavy_fraction must be in (0, 1)")
    rng = _rng(seed)
    heavy_m = int(round(m * heavy_fraction))
    light = rng.integers(0, n, size=m - heavy_m)
    items = np.concatenate([np.full(heavy_m, heavy_item, dtype=np.int64), light])
    return Stream(rng.permutation(items), n)


def random_order_stream(
    frequencies: Sequence[int] | np.ndarray,
    *,
    seed: int | np.random.Generator | None = None,
) -> Stream:
    """A uniformly random arrival order of the multiset given by
    ``frequencies`` — the model of Appendix C."""
    return stream_from_frequencies(frequencies, order="random", seed=seed)


def adversarial_order_stream(
    frequencies: Sequence[int] | np.ndarray,
) -> Stream:
    """Round-robin (interleaved) order: adjacent equal pairs are as rare as
    possible, the hardest case for collision-based samplers."""
    return stream_from_frequencies(frequencies, order="interleaved")


def permuted(stream: Stream, *, seed: int | np.random.Generator | None = None) -> Stream:
    """Shuffle an existing stream into random order."""
    return stream.shuffled(_rng(seed))


def strict_turnstile_stream(
    n: int,
    m: int,
    *,
    delete_fraction: float = 0.3,
    max_delta: int = 3,
    seed: int | np.random.Generator | None = None,
) -> TurnstileStream:
    """A random strict turnstile stream.

    Insertions arrive with random positive deltas; with probability
    ``delete_fraction`` an update instead deletes part of some currently
    positive coordinate, never driving it negative (the strict promise).
    """
    if not 0 <= delete_fraction < 1:
        raise ValueError("delete_fraction must be in [0, 1)")
    rng = _rng(seed)
    freq = np.zeros(n, dtype=np.int64)
    updates: list[Update] = []
    while len(updates) < m:
        positive = np.flatnonzero(freq)
        if positive.size and rng.random() < delete_fraction:
            item = int(rng.choice(positive))
            delta = -int(rng.integers(1, freq[item] + 1))
        else:
            item = int(rng.integers(0, n))
            delta = int(rng.integers(1, max_delta + 1))
        freq[item] += delta
        updates.append(Update(item, delta))
    return TurnstileStream(updates, n, strict=True)


def matrix_stream(
    rows: int,
    cols: int,
    m: int,
    *,
    row_weights: Sequence[float] | None = None,
    seed: int | np.random.Generator | None = None,
) -> list[tuple[int, int]]:
    """Entry-wise insertion stream for an ``rows × cols`` matrix.

    Returns a list of ``(row, col)`` single-unit updates, the input format
    of Algorithm 3 (matrix G-sampler).  ``row_weights`` biases which rows
    receive mass (default uniform).
    """
    rng = _rng(seed)
    if row_weights is None:
        p = None
    else:
        p = np.asarray(row_weights, dtype=np.float64)
        if p.size != rows:
            raise ValueError("row_weights must have one entry per row")
        p = p / p.sum()
    r = rng.choice(rows, size=m, p=p)
    c = rng.integers(0, cols, size=m)
    return list(zip(r.tolist(), c.tolist()))
