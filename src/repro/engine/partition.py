"""Universe partitioning for the sharded engine.

A shard layout must be a *function of the item alone* — every occurrence
of an item has to land on the same shard, or the shards' forward counts
(and hence the merged sampler's rejection weights) are wrong.  Two
vectorized strategies are provided:

* ``modulo`` — ``item % shards``; transparent, but correlates with any
  arithmetic structure in the item ids;
* ``hash`` — multiply–shift hashing (Dietzfelbinger et al.): multiply by
  a seeded odd 64-bit constant and keep the top bits, which scrambles
  structured id spaces before the modulo.

Both are deterministic given ``(strategy, shards, seed)``, so a stream
replayed anywhere partitions identically — the property the merge layer
and the exactness tests rely on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["UniversePartitioner"]

_STRATEGIES = ("hash", "modulo")


class UniversePartitioner:
    """Deterministic, vectorized item → shard assignment.

    Parameters
    ----------
    shards:
        Number of shards ``K ≥ 1``.
    strategy:
        ``"hash"`` (default) or ``"modulo"``.
    seed:
        Seeds the multiply–shift constant; ignored for ``"modulo"``.
    """

    __slots__ = ("_shards", "_strategy", "_seed", "_multiplier")

    def __init__(self, shards: int, strategy: str = "hash", seed: int = 0) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if strategy not in _STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; choose from {_STRATEGIES}")
        self._shards = shards
        self._strategy = strategy
        self._seed = seed
        rng = np.random.default_rng(seed)
        # Odd multiplier — multiply-shift needs it to be a bijection.
        self._multiplier = np.uint64(int(rng.integers(1 << 63, 1 << 64, dtype=np.uint64)) | 1)

    @property
    def shards(self) -> int:
        return self._shards

    @property
    def strategy(self) -> str:
        return self._strategy

    @property
    def seed(self) -> int:
        return self._seed

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UniversePartitioner):
            return NotImplemented
        return (
            self._shards == other._shards
            and self._strategy == other._strategy
            and self._seed == other._seed
        )

    def __repr__(self) -> str:
        return (
            f"UniversePartitioner(shards={self._shards}, "
            f"strategy={self._strategy!r}, seed={self._seed})"
        )

    def assign(self, items) -> np.ndarray:
        """Shard id of each item, vectorized."""
        arr = np.asarray(items, dtype=np.int64)
        if self._shards == 1:
            return np.zeros(arr.shape, dtype=np.int64)
        if self._strategy == "modulo":
            return arr % self._shards
        mixed = arr.astype(np.uint64) * self._multiplier
        return ((mixed >> np.uint64(32)).astype(np.int64)) % self._shards

    def split(self, items) -> list[np.ndarray]:
        """Partition a chunk into per-shard subchunks, preserving the
        within-shard arrival order (the only order the samplers see)."""
        arr = np.asarray(items, dtype=np.int64)
        ids = self.assign(arr)
        return [arr[ids == k] for k in range(self._shards)]
