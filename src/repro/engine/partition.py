"""Universe partitioning for the sharded engine.

A shard layout must be a *function of the item alone* — every occurrence
of an item has to land on the same shard, or the shards' forward counts
(and hence the merged sampler's rejection weights) are wrong.  Two
vectorized strategies are provided:

* ``modulo`` — ``item % shards``; transparent, but correlates with any
  arithmetic structure in the item ids;
* ``hash`` — multiply–shift hashing (Dietzfelbinger et al.): multiply by
  a seeded odd 64-bit constant and keep the top bits, which scrambles
  structured id spaces before the modulo.

Both are deterministic given ``(strategy, shards, seed)``, so a stream
replayed anywhere partitions identically — the property the merge layer
and the exactness tests rely on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["UniversePartitioner"]

_STRATEGIES = ("hash", "modulo")


class UniversePartitioner:
    """Deterministic, vectorized item → shard assignment.

    Parameters
    ----------
    shards:
        Number of shards ``K ≥ 1``.
    strategy:
        ``"hash"`` (default) or ``"modulo"``.
    seed:
        Seeds the multiply–shift constant; ignored for ``"modulo"``.
    """

    __slots__ = ("_shards", "_strategy", "_seed", "_multiplier", "_vmap")

    def __init__(self, shards: int, strategy: str = "hash", seed: int = 0) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if strategy not in _STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; choose from {_STRATEGIES}")
        self._shards = shards
        self._strategy = strategy
        self._seed = seed
        rng = np.random.default_rng(seed)
        # Odd multiplier — multiply-shift needs it to be a bijection.
        self._multiplier = np.uint64(int(rng.integers(1 << 63, 1 << 64, dtype=np.uint64)) | 1)
        self._vmap: np.ndarray | None = None

    @property
    def shards(self) -> int:
        return self._shards

    @property
    def strategy(self) -> str:
        return self._strategy

    @property
    def seed(self) -> int:
        return self._seed

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UniversePartitioner):
            return NotImplemented
        return (
            self._shards == other._shards
            and self._strategy == other._strategy
            and self._seed == other._seed
        )

    def __repr__(self) -> str:
        return (
            f"UniversePartitioner(shards={self._shards}, "
            f"strategy={self._strategy!r}, seed={self._seed})"
        )

    def assign(self, items) -> np.ndarray:
        """Shard id of each item, vectorized."""
        arr = np.asarray(items, dtype=np.int64)
        if self._shards == 1:
            return np.zeros(arr.shape, dtype=np.int64)
        if self._strategy == "modulo":
            return arr % self._shards
        return self._mix(arr).astype(np.int64)

    def _mix(self, arr: np.ndarray) -> np.ndarray:
        """Multiply–shift ids as ``uint64`` with in-place intermediates
        (same values :meth:`assign` returns, minus the final cast)."""
        mixed = arr.astype(np.uint64)
        mixed *= self._multiplier
        mixed >>= np.uint64(32)
        k = self._shards
        if k & (k - 1) == 0:
            mixed &= np.uint64(k - 1)  # == % k for powers of two
        else:
            mixed %= np.uint64(k)
        return mixed

    def split_indices(self, items) -> tuple[np.ndarray | None, np.ndarray]:
        """One-pass shard grouping: ``(order, bounds)`` such that
        ``arr[order][bounds[k]:bounds[k+1]]`` is shard ``k``'s subchunk in
        arrival order.

        A single stable argsort of the shard ids (radix sort for ints)
        replaces the K boolean-mask passes a per-shard selection would
        take, so the cost no longer grows with the shard count; callers
        with parallel arrays (e.g. timestamps) reuse the same ``order``
        for each.  ``order`` is ``None`` for the identity grouping
        (single shard).
        """
        arr = np.asarray(items, dtype=np.int64)
        n = int(arr.size)
        if self._shards == 1:
            return None, np.array([0, n], dtype=np.int64)
        ids = self._ids(arr)
        # 8/16-bit keys take numpy's radix path (~5x the 64-bit merge sort).
        order = np.argsort(ids, kind="stable")
        counts = np.bincount(ids, minlength=self._shards)
        bounds = np.zeros(self._shards + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        return order, bounds

    def _ids(self, arr: np.ndarray) -> np.ndarray:
        """Shard ids in the narrowest dtype the shard count allows."""
        if self._strategy == "modulo":
            ids = arr % self._shards
        else:
            ids = self._mix(arr)
        if self._shards <= 0xFF:
            return ids.astype(np.uint8)
        if self._shards <= 0xFFFF:
            return ids.astype(np.uint16)
        return ids.astype(np.int64)

    def value_shards(self, universe: int) -> np.ndarray:
        """The whole value → shard map for ``[0, universe)`` as one
        narrow-dtype array (cached: the map is a pure function of the
        partitioner).

        For bounded universes a gather through this map replaces the
        per-item hash mix, and a weighted ``bincount`` of it against a
        value histogram yields per-shard subchunk lengths without
        touching the items — the sharded engine's shared-index fast path
        leans on both.
        """
        vmap = self._vmap
        if vmap is None or vmap.size < universe:
            vmap = self._ids(np.arange(universe, dtype=np.int64))
            self._vmap = vmap
        return vmap[:universe]

    def split(self, items) -> list[np.ndarray]:
        """Partition a chunk into per-shard subchunks, preserving the
        within-shard arrival order (the only order the samplers see)."""
        arr = np.asarray(items, dtype=np.int64)
        if self._shards == 1:
            return [arr]
        if self._shards <= 16:
            # At small K a selection pass per shard beats the argsort.
            ids = self._ids(arr)
            return [
                arr[np.flatnonzero(ids == k)] for k in range(self._shards)
            ]
        order, bounds = self.split_indices(arr)
        grouped = arr[order]
        return [
            grouped[bounds[k]:bounds[k + 1]] for k in range(self._shards)
        ]
