"""Config-driven sampler construction — a thin kind → spec table.

Apps, examples, benchmarks, and the shard coordinator all need samplers
built from declarative descriptions rather than hand-written constructor
calls — a config dict travels over the wire, a constructor call does
not.  Two factories:

* ``build_measure({"name": "huber", "tau": 2.0})`` → a ``Measure``;
* ``build_sampler({"kind": "lp", "p": 2.0, "n": 4096, "seed": 7})`` →
  a ready sampler.

Both validate eagerly: unknown kinds and unknown keys raise ``ValueError``
listing the alternatives, so a typo'd config fails at build time, not as
a silently-default sampler.  ``register_sampler`` / ``register_measure``
extend the registries (plug-in measures, experimental samplers) without
touching this module.

Every registered kind builds a :class:`repro.lifecycle.StreamSampler`,
and the per-kind knowledge the engine needs beyond construction lives
here as declarative :class:`KindSpec` traits rather than as engine-side
dispatch:

* ``shared_shard_seed`` — shard copies must be constructed from the
  *same* seed so their shared randomness (random subsets S, min-hash
  oracles) lines up for merging;
* ``mergeable`` — whether ``merge`` is mathematically meaningful for
  the family (count-based windows implement the hook but always raise:
  "the last W updates" of a sharded stream has no global arrival order);
* ``shard_config`` — an optional config rewrite applied once per engine
  (e.g. ``window_bank`` derives one shared ``f0_seed`` for its F0
  members while its pool members keep independent per-shard seeds).
"""

from __future__ import annotations

import difflib
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core.f0_sampler import (
    Algorithm5F0Sampler,
    BoundedMeasureSampler,
    RandomOracleF0Sampler,
    TrulyPerfectF0Sampler,
)
from repro.core.g_sampler import SamplerPool, TrulyPerfectGSampler
from repro.core.lp_sampler import TrulyPerfectLpSampler
from repro.core.measures import (
    BoundedMeasure,
    CauchyMeasure,
    FairMeasure,
    GemanMcClureMeasure,
    HuberMeasure,
    L1L2Measure,
    LpMeasure,
    Measure,
    TukeyMeasure,
)
from repro.sliding_window import (
    SlidingWindowF0Sampler,
    SlidingWindowGSampler,
    SlidingWindowLpSampler,
)
from repro.windows import (
    TimeWindowF0Sampler,
    TimeWindowGSampler,
    TimeWindowLpSampler,
    WindowBank,
)

__all__ = [
    "KindSpec",
    "build_measure",
    "build_sampler",
    "kind_spec",
    "register_measure",
    "register_sampler",
    "sampler_kinds",
    "measure_names",
    "SHARD_SHARED_SEED_KINDS",
]


@dataclass(frozen=True)
class KindSpec:
    """Everything the engine knows about a sampler kind, declaratively."""

    build: Callable[[dict], object]
    shared_shard_seed: bool = False
    mergeable: bool = True
    shard_config: Callable[[dict, int | None], dict] | None = None


def _unknown_name_error(role: str, name, known: tuple[str, ...]) -> ValueError:
    """A loud, actionable error for a typo'd registry name: lists every
    registered alternative and, when one is close, suggests it."""
    message = f"unknown {role} {name!r}; known: {', '.join(known)}"
    if isinstance(name, str):
        close = difflib.get_close_matches(name, known, n=1)
        if close:
            message += f" (did you mean {close[0]!r}?)"
    return ValueError(message)


def _measure_lp(cfg: dict) -> Measure:
    return LpMeasure(float(cfg.pop("p")))


def _measure_with_tau(cls: type, default: float) -> Callable[[dict], Measure]:
    def build(cfg: dict) -> Measure:
        return cls(float(cfg.pop("tau", default)))

    return build


_MEASURES: dict[str, Callable[[dict], Measure]] = {
    "lp": _measure_lp,
    "l1l2": lambda cfg: L1L2Measure(),
    "fair": _measure_with_tau(FairMeasure, 1.0),
    "huber": _measure_with_tau(HuberMeasure, 1.0),
    "cauchy": _measure_with_tau(CauchyMeasure, 1.0),
    "tukey": _measure_with_tau(TukeyMeasure, 5.0),
    # Geman–McClure has no shape parameter (G(x) = (x²/2)/(1+x²)).
    "geman-mcclure": lambda cfg: GemanMcClureMeasure(),
}


def measure_names() -> tuple[str, ...]:
    return tuple(sorted(_MEASURES))


def register_measure(name: str, builder: Callable[[dict], Measure]) -> None:
    """Add a measure builder; ``builder(cfg)`` must ``pop`` every key it
    consumes (leftover keys are reported as errors)."""
    _MEASURES[name] = builder


def build_measure(spec) -> Measure:
    """Build a measure from ``{"name": ..., **params}`` (a ``Measure``
    instance passes through unchanged)."""
    if isinstance(spec, Measure):
        return spec
    if not isinstance(spec, dict):
        raise TypeError(f"measure spec must be a dict or Measure, got {type(spec).__name__}")
    cfg = dict(spec)
    name = cfg.pop("name", None)
    if name not in _MEASURES:
        raise _unknown_name_error("measure", name, measure_names())
    try:
        measure = _MEASURES[name](cfg)
    except KeyError as missing:
        raise ValueError(
            f"measure {name!r} requires key {missing}"
        ) from None
    if cfg:
        raise ValueError(f"unknown keys for measure {name!r}: {sorted(cfg)}")
    return measure


def _pop_common(cfg: dict) -> dict:
    return {
        "delta": float(cfg.pop("delta", 0.05)),
        "seed": cfg.pop("seed", None),
    }


def _build_g(cfg: dict):
    common = _pop_common(cfg)
    return TrulyPerfectGSampler(
        build_measure(cfg.pop("measure")),
        instances=cfg.pop("instances", None),
        m_hint=cfg.pop("m_hint", None),
        **common,
    )


def _build_lp(cfg: dict):
    common = _pop_common(cfg)
    return TrulyPerfectLpSampler(
        p=float(cfg.pop("p")),
        n=int(cfg.pop("n")),
        m_hint=cfg.pop("m_hint", None),
        instances=cfg.pop("instances", None),
        **common,
    )


def _build_f0(cfg: dict):
    common = _pop_common(cfg)
    return TrulyPerfectF0Sampler(n=int(cfg.pop("n")), **common)


def _build_oracle_f0(cfg: dict):
    return RandomOracleF0Sampler(n=int(cfg.pop("n")), seed=cfg.pop("seed", None))


def _build_algorithm5_f0(cfg: dict):
    return Algorithm5F0Sampler(n=int(cfg.pop("n")), seed=cfg.pop("seed", None))


def _build_pool(cfg: dict):
    return SamplerPool(instances=int(cfg.pop("instances")), seed=cfg.pop("seed", None))


def _build_bounded(cfg: dict):
    common = _pop_common(cfg)
    measure = build_measure(cfg.pop("measure"))
    if not isinstance(measure, BoundedMeasure):
        raise ValueError(
            f"kind 'bounded' needs a bounded measure, got {measure.name}"
        )
    return BoundedMeasureSampler(
        measure, n=int(cfg.pop("n")), oracle=bool(cfg.pop("oracle", True)), **common
    )


def _build_sw_g(cfg: dict):
    common = _pop_common(cfg)
    return SlidingWindowGSampler(
        build_measure(cfg.pop("measure")),
        window=int(cfg.pop("window")),
        instances=cfg.pop("instances", None),
        **common,
    )


def _build_sw_lp(cfg: dict):
    common = _pop_common(cfg)
    return SlidingWindowLpSampler(
        p=float(cfg.pop("p")),
        window=int(cfg.pop("window")),
        instances=cfg.pop("instances", None),
        alpha=float(cfg.pop("alpha", 0.5)),
        **common,
    )


def _build_sw_f0(cfg: dict):
    common = _pop_common(cfg)
    return SlidingWindowF0Sampler(
        n=int(cfg.pop("n")), window=int(cfg.pop("window")), **common
    )


def _build_tw_g(cfg: dict):
    common = _pop_common(cfg)
    return TimeWindowGSampler(
        build_measure(cfg.pop("measure")),
        horizon=float(cfg.pop("horizon")),
        instances=cfg.pop("instances", None),
        expected_window_count=cfg.pop("expected_window_count", None),
        **common,
    )


def _build_tw_lp(cfg: dict):
    common = _pop_common(cfg)
    return TimeWindowLpSampler(
        p=float(cfg.pop("p")),
        horizon=float(cfg.pop("horizon")),
        instances=cfg.pop("instances", None),
        expected_window_count=cfg.pop("expected_window_count", None),
        **common,
    )


def _build_tw_f0(cfg: dict):
    common = _pop_common(cfg)
    return TimeWindowF0Sampler(
        n=int(cfg.pop("n")), horizon=float(cfg.pop("horizon")), **common
    )


def _build_window_bank(cfg: dict):
    common = _pop_common(cfg)
    measure = cfg.pop("measure", None)
    return WindowBank(
        cfg.pop("resolutions"),
        measure=build_measure(measure) if measure is not None else None,
        p=cfg.pop("p", None),
        n=cfg.pop("n", None),
        instances=cfg.pop("instances", None),
        expected_rate=cfg.pop("expected_rate", None),
        f0_seed=cfg.pop("f0_seed", None),
        **common,
    )


def _window_bank_shard_config(config: dict, seed: int | None) -> dict:
    """A bank's F0 members merge only when their random subsets match
    across shards; pool members still want independent per-shard seeds.
    Derive one shared ``f0_seed`` from the engine seed so a sharded bank
    works out of the box."""
    if config.get("n") is not None and config.get("f0_seed") is None:
        config = dict(config)
        config["f0_seed"] = int(
            np.random.default_rng(np.random.SeedSequence(seed)).integers(2**31)
        )
    return config


_SAMPLERS: dict[str, KindSpec] = {
    "g": KindSpec(_build_g),
    "lp": KindSpec(_build_lp),
    "f0": KindSpec(_build_f0, shared_shard_seed=True),
    "oracle-f0": KindSpec(_build_oracle_f0, shared_shard_seed=True),
    "algorithm5-f0": KindSpec(_build_algorithm5_f0, shared_shard_seed=True),
    "pool": KindSpec(_build_pool),
    "bounded": KindSpec(_build_bounded, shared_shard_seed=True),
    "sw-g": KindSpec(_build_sw_g, mergeable=False),
    "sw-lp": KindSpec(_build_sw_lp, mergeable=False),
    "sw-f0": KindSpec(_build_sw_f0, mergeable=False),
    "tw_g": KindSpec(_build_tw_g),
    "tw_lp": KindSpec(_build_tw_lp),
    "tw_f0": KindSpec(_build_tw_f0, shared_shard_seed=True),
    "window_bank": KindSpec(_build_window_bank, shard_config=_window_bank_shard_config),
}

#: Stock sampler kinds whose shard copies must be constructed from the
#: *same* seed — derived from the spec table (single source of truth:
#: the per-kind ``shared_shard_seed`` trait, which is what the engine
#: reads; this constant is a convenience view over the built-in kinds
#: and does not track later ``register_sampler`` calls).  ``window_bank``
#: is deliberately absent — its F0 members share via the ``f0_seed``
#: key its ``shard_config`` hook derives.
SHARD_SHARED_SEED_KINDS = frozenset(
    kind for kind, spec in _SAMPLERS.items() if spec.shared_shard_seed
)


def sampler_kinds() -> tuple[str, ...]:
    return tuple(sorted(_SAMPLERS))


def register_sampler(
    kind: str,
    builder: Callable[[dict], object],
    *,
    shared_shard_seed: bool = False,
    mergeable: bool = True,
    shard_config: Callable[[dict, int | None], dict] | None = None,
) -> None:
    """Add a sampler kind; ``builder(cfg)`` must ``pop`` every key it
    consumes (leftover keys are reported as errors).  The keyword traits
    feed the sharded engine — see :class:`KindSpec`.

    To serve behind :class:`~repro.engine.ShardedSamplerEngine`, the
    built sampler must implement the full
    :class:`repro.lifecycle.StreamSampler` protocol (since PR 3 that
    includes ``update_batch``, ``compact``, ``watermark``, and
    ``approx_size_bytes`` on top of the original checkpoint hooks —
    inherit :class:`repro.lifecycle.StaticLifecycleMixin` for the
    no-wall-clock defaults); plain :func:`build_sampler` use has no such
    requirement.  Two query-fast-path contracts the engine additionally
    relies on: ``compact`` must return a *positive* byte count whenever
    it changed any state that can influence an answer (the engine keys
    merged-view cache invalidation on it), and an optional vectorized
    ``sample_many(k, **kwargs)`` — when present — must draw exactly as
    ``k`` sequential ``sample`` calls would (the engine delegates
    batched queries to it)."""
    _SAMPLERS[kind] = KindSpec(
        builder,
        shared_shard_seed=shared_shard_seed,
        mergeable=mergeable,
        shard_config=shard_config,
    )


def kind_spec(kind) -> KindSpec:
    """The :class:`KindSpec` for a registered kind (loud on typos)."""
    try:
        return _SAMPLERS[kind]
    except KeyError:
        raise _unknown_name_error("sampler kind", kind, sampler_kinds()) from None


def build_sampler(config: dict):
    """Build a sampler from a config dict, e.g.::

        build_sampler({"kind": "lp", "p": 2.0, "n": 4096, "seed": 7})
        build_sampler({"kind": "g", "measure": {"name": "huber"}, "seed": 0})
        build_sampler({"kind": "sw-f0", "n": 1024, "window": 500})

    The ``kind`` key selects the builder; every other key is passed to
    the sampler's constructor.  Unknown kinds and leftover keys raise
    ``ValueError``.
    """
    if not isinstance(config, dict):
        raise TypeError(f"sampler config must be a dict, got {type(config).__name__}")
    cfg = dict(config)
    kind = cfg.pop("kind", None)
    spec = kind_spec(kind)
    try:
        sampler = spec.build(cfg)
    except KeyError as missing:
        raise ValueError(
            f"sampler kind {kind!r} requires key {missing}"
        ) from None
    if cfg:
        raise ValueError(f"unknown keys for sampler kind {kind!r}: {sorted(cfg)}")
    return sampler
