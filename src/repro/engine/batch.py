"""Batched ingestion — the engine's front door for streams of items.

The reference samplers expose per-item ``update()`` loops; production
traffic arrives in buffers.  This module bridges the two:

* :func:`ingest` feeds any array / ``Stream`` / iterable into a sampler,
  chunked, preferring the sampler's vectorized ``update_batch`` hook (the
  skip-ahead kernels in :mod:`repro.core`) and falling back to the scalar
  loop for samplers that lack one — same final state either way;
* :class:`BatchIngestor` buffers a scalar feed (e.g. per-request events)
  and flushes full chunks through the batched path.

Everything here is generic over the
:class:`repro.lifecycle.StreamSampler` protocol — the only capability
probes are structural (does the sampler expose ``update_batch``, does
the input carry timestamps), never per-kind dispatch.

Chunking matters: the pool kernel's cost per item is dominated by a small
number of whole-chunk vector passes, so chunks that fit comfortably in
cache (the 64K default) amortize best.  ``update_batch`` semantics per
sampler: single-pool and F0 samplers are *bitwise identical* to the
scalar loop for a fixed seed; sliding-window samplers are exactly
distribution-preserving but consume RNG draws in a different order.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.timeline import ShardView
from repro.core.types import as_item_array as _as_array

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "supports_batch",
    "supports_digest",
    "supports_index",
    "ingest",
    "BatchIngestor",
]

DEFAULT_CHUNK_SIZE = 1 << 16


def supports_batch(sampler) -> bool:
    """Whether the sampler exposes the vectorized ``update_batch`` hook."""
    return callable(getattr(sampler, "update_batch", None))


def supports_digest(sampler) -> bool:
    """Whether ``update_batch`` accepts a shared ``ChunkDigest`` (the
    pool-backed samplers declare ``accepts_digest``)."""
    return bool(getattr(sampler, "accepts_digest", False))


def supports_index(sampler) -> bool:
    """Whether the sampler speaks the shared-index protocol: declares
    ``accepts_index`` (its ``update_batch`` takes a
    :class:`~repro.core.timeline.ShardView`) and exposes the
    ``plan_batch`` / ``tracked_values`` hooks the engine needs to hoist
    phase 1 and collect index candidates."""
    return (
        bool(getattr(sampler, "accepts_index", False))
        and callable(getattr(sampler, "plan_batch", None))
        and callable(getattr(sampler, "tracked_values", None))
    )


def ingest(
    sampler,
    items,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    timestamps=None,
    digest=None,
) -> int:
    """Feed ``items`` (array, ``repro.streams.Stream`` /
    ``TimestampedStream``, or iterable) into ``sampler`` in chunks;
    returns the number of items ingested.

    Timestamped ingestion (the :mod:`repro.windows` samplers) happens
    when ``items`` is a ``TimestampedStream`` or ``timestamps`` is given
    explicitly: chunks carry ``(items, timestamps)`` pairs into
    ``update_batch(items, ts)`` / ``update(item, ts)``.

    ``digest`` is an optional precomputed
    :class:`repro.core.timeline.ChunkDigest` whose ``count(item)`` is
    exact for every item in (or tracked against) ``items`` — the sharded
    engine builds one per batch and shares it across shards.  It is only
    forwarded when the whole input fits a single ``update_batch`` call
    (a chunked pass would mis-scope the whole-batch counts) and the
    sampler declares ``accepts_digest``.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be ≥ 1, got {chunk_size}")
    if isinstance(items, ShardView):
        # Position view of a shared indexed chunk carrying its
        # pre-simulated event schedule: the kernel's cost is O(events),
        # so there are no O(n) per-call passes for chunk_size to
        # amortize — and the hoisted plan covers the whole view, so it
        # must be applied in one call.
        sampler.update_batch(items)
        return items.size
    if timestamps is None:
        timestamps = getattr(items, "timestamps", None)
    if timestamps is None:
        if not isinstance(items, np.ndarray) and isinstance(items, Iterable) and (
            getattr(items, "items", None) is None
        ) and not hasattr(items, "__len__"):
            # A true one-shot iterable (generator): buffer it chunk by chunk.
            total = 0
            ingestor = BatchIngestor(sampler, chunk_size=chunk_size)
            for item in items:
                ingestor.push(int(item))
                total += 1
            ingestor.flush()
            return total
        arr = _as_array(items)
        if supports_batch(sampler):
            if (
                digest is not None
                and arr.size <= chunk_size
                and supports_digest(sampler)
            ):
                sampler.update_batch(arr, digest=digest)
                return int(arr.size)
            for start in range(0, arr.size, chunk_size):
                sampler.update_batch(arr[start:start + chunk_size])
        else:
            update = sampler.update
            for item in arr.tolist():
                update(item)
        return int(arr.size)
    arr = _as_array(items)
    ts = np.asarray(timestamps, dtype=np.float64)
    if ts.ndim != 1 or ts.size != arr.size:
        raise ValueError(
            f"timestamps must be a 1-d array matching items "
            f"({arr.size} items, {ts.size} timestamps)"
        )
    if supports_batch(sampler):
        for start in range(0, arr.size, chunk_size):
            sampler.update_batch(
                arr[start:start + chunk_size], ts[start:start + chunk_size]
            )
    else:
        update = sampler.update
        for item, when in zip(arr.tolist(), ts.tolist()):
            update(item, when)
    return int(arr.size)


class BatchIngestor:
    """Buffering adapter: scalar ``push()`` in, batched updates out.

    Wrap a sampler where events arrive one at a time but throughput
    matters; the buffer flushes through ``update_batch`` whenever it
    fills (and on demand via :meth:`flush`).  Until a flush happens the
    buffered tail is *not* yet visible to the sampler — call ``flush()``
    before sampling.
    """

    __slots__ = ("_sampler", "_chunk_size", "_buffer", "_total")

    def __init__(self, sampler, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be ≥ 1, got {chunk_size}")
        self._sampler = sampler
        self._chunk_size = chunk_size
        self._buffer: list[int] = []
        self._total = 0

    @property
    def sampler(self):
        return self._sampler

    @property
    def pending(self) -> int:
        """Items buffered but not yet flushed into the sampler."""
        return len(self._buffer)

    @property
    def total_ingested(self) -> int:
        """Items that have reached the sampler (excludes the buffer)."""
        return self._total

    def push(self, item: int) -> None:
        self._buffer.append(item)
        if len(self._buffer) >= self._chunk_size:
            self.flush()

    def push_many(self, items) -> None:
        arr = _as_array(items)
        if self._buffer:
            self.flush()
        self._total += ingest(self._sampler, arr, chunk_size=self._chunk_size)

    def flush(self) -> None:
        if not self._buffer:
            return
        arr = np.asarray(self._buffer, dtype=np.int64)
        # Ingest before clearing: if the sampler rejects the chunk (e.g.
        # an out-of-universe item), the buffer survives for a retry after
        # the caller fixes the input.
        self._total += ingest(self._sampler, arr, chunk_size=self._chunk_size)
        self._buffer.clear()
