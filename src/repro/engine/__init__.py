"""repro.engine — the serving-grade ingestion layer.

The reference samplers in :mod:`repro.core` are per-item Python loops;
this subsystem turns them into a pipeline that moves at NumPy speed and
scales out without giving up the *truly perfect* guarantee:

* :mod:`repro.engine.batch` — chunked, vectorized ingestion
  (:func:`ingest`, :class:`BatchIngestor`) over the samplers'
  ``update_batch`` kernels;
* :mod:`repro.engine.state` — the :class:`MergeableState` protocol
  (``snapshot``/``restore``/``merge``) and a compact no-pickle bytes
  format for checkpointing and shipping sampler state;
* :mod:`repro.engine.partition` — deterministic vectorized universe
  partitioning;
* :mod:`repro.engine.shard` — :class:`ShardedSamplerEngine`, K shards
  merged into one exact global sample;
* :mod:`repro.engine.registry` — :func:`build_sampler` /
  :func:`build_measure`, config-driven construction.
"""

from repro.engine.batch import (
    DEFAULT_CHUNK_SIZE,
    BatchIngestor,
    ingest,
    supports_batch,
)
from repro.engine.partition import UniversePartitioner
from repro.engine.registry import (
    build_measure,
    build_sampler,
    measure_names,
    register_measure,
    register_sampler,
    sampler_kinds,
)
from repro.engine.shard import ShardedSamplerEngine
from repro.engine.state import (
    MergeableState,
    load_state,
    merged,
    save_state,
    state_from_bytes,
    state_to_bytes,
    supports_merge,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "BatchIngestor",
    "ingest",
    "supports_batch",
    "UniversePartitioner",
    "build_measure",
    "build_sampler",
    "measure_names",
    "register_measure",
    "register_sampler",
    "sampler_kinds",
    "ShardedSamplerEngine",
    "MergeableState",
    "load_state",
    "merged",
    "save_state",
    "state_from_bytes",
    "state_to_bytes",
    "supports_merge",
]
