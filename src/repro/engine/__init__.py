"""repro.engine — the serving-grade ingestion layer.

The reference samplers in :mod:`repro.core` are per-item Python loops;
this subsystem turns them into a pipeline that moves at NumPy speed and
scales out without giving up the *truly perfect* guarantee:

* :mod:`repro.engine.batch` — chunked, vectorized ingestion
  (:func:`ingest`, :class:`BatchIngestor`) over the samplers'
  ``update_batch`` kernels;
* :mod:`repro.engine.state` — façade over :mod:`repro.lifecycle`: the
  :class:`StreamSampler` / :class:`MergeableState` protocols, the
  versioned :class:`Snapshot` envelope, and the no-pickle bytes codec
  for checkpointing and shipping sampler state;
* :mod:`repro.engine.partition` — deterministic vectorized universe
  partitioning;
* :mod:`repro.engine.shard` — :class:`ShardedSamplerEngine`, K shards
  merged into one exact global sample, with query/cadence expiry
  compaction, merge-time watermark-skew checks, and the query fast
  path: an epoch-keyed merged-view cache (full hit / prefix rebase /
  from-scratch fold) plus batched ``sample_many`` queries;
* :mod:`repro.engine.registry` — :func:`build_sampler` /
  :func:`build_measure`, config-driven construction over a thin
  kind → :class:`KindSpec` table.
"""

from repro.engine.batch import (
    DEFAULT_CHUNK_SIZE,
    BatchIngestor,
    ingest,
    supports_batch,
)
from repro.engine.partition import UniversePartitioner
from repro.engine.registry import (
    KindSpec,
    build_measure,
    build_sampler,
    kind_spec,
    measure_names,
    register_measure,
    register_sampler,
    sampler_kinds,
)
from repro.engine.shard import FoldHandle, ShardedSamplerEngine
from repro.engine.state import (
    MergeableState,
    Snapshot,
    StreamSampler,
    load_state,
    merged,
    save_state,
    state_from_bytes,
    state_to_bytes,
    supports_merge,
)
from repro.lifecycle import WatermarkSkewError

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "BatchIngestor",
    "ingest",
    "supports_batch",
    "UniversePartitioner",
    "KindSpec",
    "build_measure",
    "build_sampler",
    "kind_spec",
    "measure_names",
    "register_measure",
    "register_sampler",
    "sampler_kinds",
    "FoldHandle",
    "ShardedSamplerEngine",
    "MergeableState",
    "StreamSampler",
    "Snapshot",
    "WatermarkSkewError",
    "load_state",
    "merged",
    "save_state",
    "state_from_bytes",
    "state_to_bytes",
    "supports_merge",
]
