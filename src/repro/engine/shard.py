"""The shard coordinator: K independent samplers behind one façade.

``ShardedSamplerEngine`` hash-partitions the universe across ``K``
sampler shards.  Ingestion splits each batch by shard (vectorized) and
feeds the per-shard subchunks through the batched kernels — the layout
is embarrassingly parallel, each shard touching only its own state, so
the per-shard loop can be handed to threads or processes unchanged.

Sampling is where true perfection has to survive aggregation, and it
does, with *zero* distributional error: pool-based shards merge by
keeping each instance slot from shard ``s`` with probability
``m_s / Σ m_j`` — i.e. a uniformly random position of the concatenated
stream — and because every item lives on exactly one shard, the kept
instance's forward count and the merged normalizer (max over shard
Misra–Gries bounds) are the globally correct certified quantities.  The
F_G-weighting happens implicitly: a shard wins an instance slot in
proportion to its stream mass, and the usual rejection step then turns
position mass into ``G``-mass exactly as in the single-stream proof.
F0 shards merge by their own exact rules (shared random subsets /
min-hash).  Queries run on a deep-copied fold, so the live shards keep
ingesting afterwards.

The engine is written purely against the
:class:`repro.lifecycle.StreamSampler` protocol — it never inspects
sampler kinds.  Per-kind knowledge (shared shard seeds, mergeability,
config rewrites) comes declaratively from the registry's
:class:`~repro.engine.registry.KindSpec` traits.  Two lifecycle services
ride on the uniform protocol:

* **expiry compaction** — ``compact()`` fans out to every shard; it
  runs automatically on every query and, when ``compact_every`` is set,
  after every ~that-many ingested updates, so idle time-windowed shards
  release expired generations instead of holding them forever;
* **merge watermarks** — every merge (query-time fold and cross-engine
  ``merge``) compares the shards' ``watermark()`` clocks and raises
  :class:`~repro.lifecycle.WatermarkSkewError` when they disagree by
  more than ``max_watermark_skew`` seconds, surfacing producer clock
  skew instead of silently shifting window membership.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.types import SampleResult
from repro.engine.batch import DEFAULT_CHUNK_SIZE, ingest
from repro.engine.partition import UniversePartitioner
from repro.engine.registry import build_sampler, kind_spec
from repro.engine.state import merged
from repro.lifecycle import WatermarkSkewError, missing_hooks

__all__ = ["ShardedSamplerEngine"]


class ShardedSamplerEngine:
    """K hash-partitioned sampler shards with exact merged sampling.

    Parameters
    ----------
    config:
        Sampler config for :func:`repro.engine.registry.build_sampler`;
        each shard gets its own sampler built from it.  Seeds are
        derived per shard — independently by default, shared for kinds
        whose registry spec declares ``shared_shard_seed`` (merge rules
        needing common random subsets).
    shards:
        Number of shards ``K ≥ 1``.
    partitioner:
        Optional :class:`UniversePartitioner`; defaults to multiply-shift
        hashing seeded from ``seed``.
    seed:
        Seeds the partitioner and the per-shard sampler seeds.
    max_watermark_skew:
        Tolerated spread (seconds) between shard ``watermark()`` clocks
        at merge time; beyond it, merges raise
        :class:`~repro.lifecycle.WatermarkSkewError`.  Default ``inf``
        (never raise); kinds without a wall clock are never checked.
    compact_every:
        When set, run :meth:`compact` automatically after every ~this
        many ingested updates (in addition to the always-on query-time
        pass) — the timer leg of expiry compaction for write-heavy,
        query-light deployments.
    """

    def __init__(
        self,
        config: dict,
        shards: int = 8,
        partitioner: UniversePartitioner | None = None,
        seed: int | None = None,
        max_watermark_skew: float = math.inf,
        compact_every: int | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if compact_every is not None and compact_every < 1:
            raise ValueError(f"compact_every must be ≥ 1, got {compact_every}")
        if max_watermark_skew < 0:
            raise ValueError(
                f"max_watermark_skew must be non-negative, got {max_watermark_skew}"
            )
        self._config = dict(config)
        self._kind = self._config.get("kind")
        spec = kind_spec(self._kind)
        if not spec.mergeable:
            raise ValueError(
                f"sampler kind {self._kind!r} does not merge (its registry "
                "spec declares mergeable=False), so it cannot serve behind "
                "a sharded engine"
            )
        if partitioner is None:
            partitioner = UniversePartitioner(shards, seed=0 if seed is None else seed)
        elif partitioner.shards != shards:
            raise ValueError(
                f"partitioner has {partitioner.shards} shards, engine wants {shards}"
            )
        self._partitioner = partitioner
        self._max_watermark_skew = float(max_watermark_skew)
        self._compact_every = compact_every
        self._ingested_since_compact = 0
        if spec.shard_config is not None:
            self._config = spec.shard_config(self._config, seed)
        root = np.random.SeedSequence(seed)
        if spec.shared_shard_seed:
            shared = np.random.default_rng(root).integers(2**31)
            shard_seeds = [int(shared)] * shards
        else:
            shard_seeds = [int(s.generate_state(1)[0]) for s in root.spawn(shards)]
        self._samplers = []
        for shard_seed in shard_seeds:
            cfg = dict(self._config)
            cfg["seed"] = shard_seed
            self._samplers.append(build_sampler(cfg))
        missing = missing_hooks(self._samplers[0])
        if missing:
            raise ValueError(
                f"sampler kind {self._kind!r} does not implement the "
                f"StreamSampler lifecycle protocol (missing hooks: "
                f"{', '.join(missing)})"
            )

    @property
    def shards(self) -> int:
        return len(self._samplers)

    @property
    def partitioner(self) -> UniversePartitioner:
        return self._partitioner

    @property
    def samplers(self) -> list:
        """The live shard samplers (mutating them is on you)."""
        return list(self._samplers)

    @property
    def position(self) -> int:
        """Total updates ingested across all shards."""
        return sum(s.position for s in self._samplers)

    def shard_of(self, item: int) -> int:
        return int(self._partitioner.assign(np.asarray([item]))[0])

    def update(self, item: int, timestamp: float | None = None) -> None:
        """Scalar convenience path (route one item; ``timestamp`` for
        time-windowed sampler kinds)."""
        sampler = self._samplers[self.shard_of(item)]
        if timestamp is None:
            sampler.update(item)
        else:
            sampler.update(item, timestamp)
        self._after_ingest(1)

    def ingest(
        self,
        items,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        timestamps=None,
    ) -> int:
        """Split a batch by shard and feed each sampler its subchunk;
        returns the number of items ingested.

        Pass a ``TimestampedStream`` (or an explicit ``timestamps``
        array) to feed time-windowed sampler kinds — each shard receives
        its items *with* their arrival times, so every shard's window
        boundaries line up on the shared wall clock.
        """
        if timestamps is None:
            timestamps = getattr(items, "timestamps", None)
        if timestamps is None:
            total = 0
            for shard, subchunk in enumerate(self._partitioner.split(items)):
                if subchunk.size:
                    total += ingest(
                        self._samplers[shard], subchunk, chunk_size=chunk_size
                    )
            self._after_ingest(total)
            return total
        inner = getattr(items, "items", None)
        arr = np.asarray(inner if inner is not None else items, dtype=np.int64)
        ts = np.asarray(timestamps, dtype=np.float64)
        if arr.ndim != 1 or ts.shape != arr.shape:
            raise ValueError("items and timestamps must be matching 1-d arrays")
        assignment = self._partitioner.assign(arr)
        total = 0
        for shard in range(len(self._samplers)):
            mask = assignment == shard
            if mask.any():
                total += ingest(
                    self._samplers[shard],
                    arr[mask],
                    chunk_size=chunk_size,
                    timestamps=ts[mask],
                )
        self._after_ingest(total)
        return total

    # -- lifecycle ----------------------------------------------------------
    def _after_ingest(self, count: int) -> None:
        """The timer leg of expiry compaction: compact once the cadence
        worth of updates has flowed since the last pass."""
        if self._compact_every is None:
            return
        self._ingested_since_compact += count
        if self._ingested_since_compact >= self._compact_every:
            self.compact()

    def compact(self, now: float | None = None) -> int:
        """Fan ``compact(now)`` out to every shard; returns the total
        approximate bytes reclaimed.  Passing ``now`` advances every
        shard's clock watermark (future updates must arrive at
        ``ts ≥ now``); ``None`` compacts each shard relative to its own
        watermark and advances nothing."""
        self._ingested_since_compact = 0
        return sum(s.compact(now) for s in self._samplers)

    def watermarks(self) -> list[float | None]:
        """Per-shard ``watermark()`` clocks, in shard order."""
        return [s.watermark() for s in self._samplers]

    def watermark(self) -> float | None:
        """The engine's clock high-water mark: the max over shard
        watermarks (``None`` for kinds without a wall clock)."""
        marks = [w for w in self.watermarks() if w is not None]
        return max(marks) if marks else None

    def approx_size_bytes(self) -> int:
        """Total approximate resident bytes across all shards."""
        return sum(s.approx_size_bytes() for s in self._samplers)

    def _check_watermark_skew(self, samplers) -> None:
        marks = [s.watermark() for s in samplers]
        live = [w for w in marks if w is not None]
        if len(live) < 2:
            return
        skew = max(live) - min(live)
        if skew > self._max_watermark_skew:
            raise WatermarkSkewError(
                f"shard watermarks span {skew:.6g}s "
                f"(min {min(live):.6g}, max {max(live):.6g}), beyond the "
                f"{self._max_watermark_skew:.6g}s tolerance — merging would "
                "silently shift window membership; re-sync producer clocks "
                "or raise max_watermark_skew"
            )

    def merged_sampler(self):
        """Fold all shard states into one fresh merged sampler (shards
        are left untouched and keep ingesting).  Checks shard watermark
        skew first."""
        self._check_watermark_skew(self._samplers)
        return merged(self._samplers)

    def sample(self, **kwargs) -> SampleResult:
        """One truly perfect global sample from the merged shard states.

        Runs the query-time compaction pass first: a query at ``now=``
        advances the shard clocks there and releases expired window
        state; without ``now`` each shard compacts relative to its own
        watermark (a no-op for kinds without one).  Keyword arguments
        pass through to the merged sampler's ``sample`` (e.g. ``now=``
        for time-windowed kinds).  Note the
        merged copy's RNG starts from shard 0's current state: repeated
        calls without further ingestion replay the same coins.  Build
        independent engines (or ingest between calls) for independent
        samples.
        """
        # Skew must be judged on the shards' own clocks: the compaction
        # pass below syncs every watermark to the query's `now`, which
        # would otherwise erase the very skew the check exists to catch.
        self._check_watermark_skew(self._samplers)
        self.compact(kwargs.get("now"))
        return self.merged_sampler().sample(**kwargs)

    def snapshot(self) -> dict:
        return {
            "kind": "sharded_engine",
            "sampler_kind": self._kind,
            "partition": {
                "shards": self._partitioner.shards,
                "strategy": self._partitioner.strategy,
                "seed": self._partitioner.seed,
            },
            "shards": {str(i): s.snapshot() for i, s in enumerate(self._samplers)},
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "sharded_engine":
            raise ValueError(f"not a sharded_engine snapshot: {state.get('kind')!r}")
        if state.get("sampler_kind") != self._kind:
            raise ValueError(
                f"snapshot is for sampler kind {state.get('sampler_kind')!r}, "
                f"engine has {self._kind!r}"
            )
        part = state["partition"]
        restored = UniversePartitioner(
            int(part["shards"]), strategy=str(part["strategy"]), seed=int(part["seed"])
        )
        if restored != self._partitioner:
            raise ValueError("snapshot partition layout differs from engine's")
        shard_states = state["shards"]
        if len(shard_states) != len(self._samplers):
            raise ValueError(
                f"snapshot has {len(shard_states)} shards, engine has "
                f"{len(self._samplers)}"
            )
        for i, sampler in enumerate(self._samplers):
            sampler.restore(shard_states[str(i)])

    def merge(self, other: "ShardedSamplerEngine") -> None:
        """Shard-wise merge of two engines with identical layouts (e.g.
        the same engine config fed from two sites).  Checks watermark
        skew across *both* engines' shards first — cross-site merges are
        exactly where producer clock skew bites."""
        if not isinstance(other, ShardedSamplerEngine):
            raise TypeError(
                f"cannot merge ShardedSamplerEngine with {type(other).__name__}"
            )
        if other._partitioner != self._partitioner:
            raise ValueError("engines partition the universe differently")
        self._check_watermark_skew(self._samplers + other._samplers)
        for mine, theirs in zip(self._samplers, other._samplers):
            mine.merge(theirs)
