"""The shard coordinator: K independent samplers behind one façade.

``ShardedSamplerEngine`` hash-partitions the universe across ``K``
sampler shards.  Ingestion splits each batch by shard (vectorized) and
feeds the per-shard subchunks through the batched kernels — the layout
is embarrassingly parallel, each shard touching only its own state, so
the per-shard loop can be handed to threads or processes unchanged.

Sampling is where true perfection has to survive aggregation, and it
does, with *zero* distributional error: pool-based shards merge by
keeping each instance slot from shard ``s`` with probability
``m_s / Σ m_j`` — i.e. a uniformly random position of the concatenated
stream — and because every item lives on exactly one shard, the kept
instance's forward count and the merged normalizer (max over shard
Misra–Gries bounds) are the globally correct certified quantities.  The
F_G-weighting happens implicitly: a shard wins an instance slot in
proportion to its stream mass, and the usual rejection step then turns
position mass into ``G``-mass exactly as in the single-stream proof.
F0 shards merge by their own exact rules (shared random subsets /
min-hash).  Queries run on a deep-copied fold, so the live shards keep
ingesting afterwards.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import SampleResult
from repro.engine.batch import DEFAULT_CHUNK_SIZE, ingest
from repro.engine.partition import UniversePartitioner
from repro.engine.registry import SHARD_SHARED_SEED_KINDS, build_sampler
from repro.engine.state import merged, supports_merge

__all__ = ["ShardedSamplerEngine"]


class ShardedSamplerEngine:
    """K hash-partitioned sampler shards with exact merged sampling.

    Parameters
    ----------
    config:
        Sampler config for :func:`repro.engine.registry.build_sampler`;
        each shard gets its own sampler built from it.  Seeds are
        derived per shard — independently for pool-based samplers,
        shared for F0 kinds (whose merge rule needs common random
        subsets).
    shards:
        Number of shards ``K ≥ 1``.
    partitioner:
        Optional :class:`UniversePartitioner`; defaults to multiply-shift
        hashing seeded from ``seed``.
    seed:
        Seeds the partitioner and the per-shard sampler seeds.
    """

    def __init__(
        self,
        config: dict,
        shards: int = 8,
        partitioner: UniversePartitioner | None = None,
        seed: int | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self._config = dict(config)
        self._kind = self._config.get("kind")
        if partitioner is None:
            partitioner = UniversePartitioner(shards, seed=0 if seed is None else seed)
        elif partitioner.shards != shards:
            raise ValueError(
                f"partitioner has {partitioner.shards} shards, engine wants {shards}"
            )
        self._partitioner = partitioner
        root = np.random.SeedSequence(seed)
        if (
            self._kind == "window_bank"
            and self._config.get("n") is not None
            and self._config.get("f0_seed") is None
        ):
            # A bank's F0 members merge only when their random subsets
            # match across shards; pool members still want independent
            # per-shard seeds.  Derive one shared f0_seed from the
            # engine seed so a sharded bank works out of the box.
            self._config["f0_seed"] = int(
                np.random.default_rng(np.random.SeedSequence(seed)).integers(2**31)
            )
        if self._kind in SHARD_SHARED_SEED_KINDS:
            shared = np.random.default_rng(root).integers(2**31)
            shard_seeds = [int(shared)] * shards
        else:
            shard_seeds = [int(s.generate_state(1)[0]) for s in root.spawn(shards)]
        self._samplers = []
        for shard_seed in shard_seeds:
            cfg = dict(self._config)
            cfg["seed"] = shard_seed
            self._samplers.append(build_sampler(cfg))
        if not supports_merge(self._samplers[0]):
            raise ValueError(
                f"sampler kind {self._kind!r} does not implement the "
                "MergeableState protocol required for sharded sampling"
            )

    @property
    def shards(self) -> int:
        return len(self._samplers)

    @property
    def partitioner(self) -> UniversePartitioner:
        return self._partitioner

    @property
    def samplers(self) -> list:
        """The live shard samplers (mutating them is on you)."""
        return list(self._samplers)

    @property
    def position(self) -> int:
        """Total updates ingested across all shards."""
        return sum(s.position for s in self._samplers)

    def shard_of(self, item: int) -> int:
        return int(self._partitioner.assign(np.asarray([item]))[0])

    def update(self, item: int, timestamp: float | None = None) -> None:
        """Scalar convenience path (route one item; ``timestamp`` for
        time-windowed sampler kinds)."""
        sampler = self._samplers[self.shard_of(item)]
        if timestamp is None:
            sampler.update(item)
        else:
            sampler.update(item, timestamp)

    def ingest(
        self,
        items,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        timestamps=None,
    ) -> int:
        """Split a batch by shard and feed each sampler its subchunk;
        returns the number of items ingested.

        Pass a ``TimestampedStream`` (or an explicit ``timestamps``
        array) to feed time-windowed sampler kinds — each shard receives
        its items *with* their arrival times, so every shard's window
        boundaries line up on the shared wall clock.
        """
        if timestamps is None:
            timestamps = getattr(items, "timestamps", None)
        if timestamps is None:
            total = 0
            for shard, subchunk in enumerate(self._partitioner.split(items)):
                if subchunk.size:
                    total += ingest(
                        self._samplers[shard], subchunk, chunk_size=chunk_size
                    )
            return total
        inner = getattr(items, "items", None)
        arr = np.asarray(inner if inner is not None else items, dtype=np.int64)
        ts = np.asarray(timestamps, dtype=np.float64)
        if arr.ndim != 1 or ts.shape != arr.shape:
            raise ValueError("items and timestamps must be matching 1-d arrays")
        assignment = self._partitioner.assign(arr)
        total = 0
        for shard in range(len(self._samplers)):
            mask = assignment == shard
            if mask.any():
                total += ingest(
                    self._samplers[shard],
                    arr[mask],
                    chunk_size=chunk_size,
                    timestamps=ts[mask],
                )
        return total

    def merged_sampler(self):
        """Fold all shard states into one fresh merged sampler (shards
        are left untouched and keep ingesting)."""
        return merged(self._samplers)

    def sample(self, **kwargs) -> SampleResult:
        """One truly perfect global sample from the merged shard states.

        Keyword arguments pass through to the merged sampler's
        ``sample`` (e.g. ``now=`` for time-windowed kinds).  Note the
        merged copy's RNG starts from shard 0's current state: repeated
        calls without further ingestion replay the same coins.  Build
        independent engines (or ingest between calls) for independent
        samples.
        """
        return self.merged_sampler().sample(**kwargs)

    def snapshot(self) -> dict:
        return {
            "kind": "sharded_engine",
            "sampler_kind": self._kind,
            "partition": {
                "shards": self._partitioner.shards,
                "strategy": self._partitioner.strategy,
                "seed": self._partitioner.seed,
            },
            "shards": {str(i): s.snapshot() for i, s in enumerate(self._samplers)},
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "sharded_engine":
            raise ValueError(f"not a sharded_engine snapshot: {state.get('kind')!r}")
        if state.get("sampler_kind") != self._kind:
            raise ValueError(
                f"snapshot is for sampler kind {state.get('sampler_kind')!r}, "
                f"engine has {self._kind!r}"
            )
        part = state["partition"]
        restored = UniversePartitioner(
            int(part["shards"]), strategy=str(part["strategy"]), seed=int(part["seed"])
        )
        if restored != self._partitioner:
            raise ValueError("snapshot partition layout differs from engine's")
        shard_states = state["shards"]
        if len(shard_states) != len(self._samplers):
            raise ValueError(
                f"snapshot has {len(shard_states)} shards, engine has "
                f"{len(self._samplers)}"
            )
        for i, sampler in enumerate(self._samplers):
            sampler.restore(shard_states[str(i)])

    def merge(self, other: "ShardedSamplerEngine") -> None:
        """Shard-wise merge of two engines with identical layouts (e.g.
        the same engine config fed from two sites)."""
        if not isinstance(other, ShardedSamplerEngine):
            raise TypeError(
                f"cannot merge ShardedSamplerEngine with {type(other).__name__}"
            )
        if other._partitioner != self._partitioner:
            raise ValueError("engines partition the universe differently")
        for mine, theirs in zip(self._samplers, other._samplers):
            mine.merge(theirs)
