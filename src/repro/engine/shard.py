"""The shard coordinator: K independent samplers behind one façade.

``ShardedSamplerEngine`` hash-partitions the universe across ``K``
sampler shards.  Ingestion splits each batch by shard (vectorized) and
feeds the per-shard subchunks through the batched kernels — the layout
is embarrassingly parallel, each shard touching only its own state, so
the per-shard loop can be handed to threads or processes unchanged.

Sampling is where true perfection has to survive aggregation, and it
does, with *zero* distributional error: pool-based shards merge by
keeping each instance slot from shard ``s`` with probability
``m_s / Σ m_j`` — i.e. a uniformly random position of the concatenated
stream — and because every item lives on exactly one shard, the kept
instance's forward count and the merged normalizer (max over shard
Misra–Gries bounds) are the globally correct certified quantities.  The
F_G-weighting happens implicitly: a shard wins an instance slot in
proportion to its stream mass, and the usual rejection step then turns
position mass into ``G``-mass exactly as in the single-stream proof.
F0 shards merge by their own exact rules (shared random subsets /
min-hash).  Queries run on a fold that leaves the live shards free to
keep ingesting.

**The query fast path.**  Folding K shard states costs O(K · state), so
the engine does not re-fold per query: it keeps one *merged-view cache*
keyed by per-shard **mutation epochs** — monotonically increasing
counters bumped whenever a shard's state changes (ingest, restore,
merge, or a compaction that actually dropped state).  A query whose
epochs all match the cached fold reuses it outright; when only some
shards changed, the fold is rebased from the longest clean *prefix fold*
and only the dirty suffix re-merges; when everything changed (the
common case after a batched ingest, which hash-scatters across all
shards) the engine folds from scratch at exactly the old cost.  The
cached view keeps its own RNG stream — see :meth:`sample` for the
determinism contract — and ``sample_many(k)`` amortizes one fold and
one batched coin block across ``k`` draws.

The engine is written purely against the
:class:`repro.lifecycle.StreamSampler` protocol — it never inspects
sampler kinds.  Per-kind knowledge (shared shard seeds, mergeability,
config rewrites) comes declaratively from the registry's
:class:`~repro.engine.registry.KindSpec` traits.  Two lifecycle services
ride on the uniform protocol:

* **expiry compaction** — ``compact()`` fans out to every shard; it
  runs automatically on every query and, when ``compact_every`` is set,
  after every ~that-many ingested updates, so idle time-windowed shards
  release expired generations instead of holding them forever;
* **merge watermarks** — every merge (query-time fold and cross-engine
  ``merge``) compares the shards' ``watermark()`` clocks and raises
  :class:`~repro.lifecycle.WatermarkSkewError` when they disagree by
  more than ``max_watermark_skew`` seconds, surfacing producer clock
  skew instead of silently shifting window membership.
"""

from __future__ import annotations

import copy
import math
import time
from typing import NamedTuple

import numpy as np

from repro.core.timeline import ChunkDigest, PositionIndex, ShardView
from repro.core.types import SampleResult
from repro.engine.batch import (
    DEFAULT_CHUNK_SIZE,
    ingest,
    supports_digest,
    supports_index,
)
from repro.engine.partition import UniversePartitioner
from repro.engine.registry import build_sampler, kind_spec
from repro.engine.state import merged
from repro.lifecycle import WatermarkSkewError, missing_hooks
from repro.obs.catalog import CATALOG_HELP
from repro.obs.metrics import current_registry, use_registry
from repro.obs.trace import span

__all__ = ["FoldHandle", "ShardedSamplerEngine"]


class FoldHandle(NamedTuple):
    """A reader's view of one acquired fold: the merged sampler, the
    per-shard mutation epochs it reflects, and the engine watermark at
    acquisition time (``None`` for kinds without a wall clock).

    The fold is the engine's *cached* object — treat it as query-only
    and shared: either serialize draws on it, or spawn per-reader query
    views (:func:`repro.lifecycle.spawn_query_view`).  ``epochs`` is the
    staleness token: compare against a later ``mutation_epochs()`` to
    decide whether to re-acquire.
    """

    fold: object
    epochs: tuple[int, ...]
    watermark: float | None


class ShardedSamplerEngine:
    """K hash-partitioned sampler shards with exact merged sampling.

    Parameters
    ----------
    config:
        Sampler config for :func:`repro.engine.registry.build_sampler`;
        each shard gets its own sampler built from it.  Seeds are
        derived per shard — independently by default, shared for kinds
        whose registry spec declares ``shared_shard_seed`` (merge rules
        needing common random subsets).
    shards:
        Number of shards ``K ≥ 1``.
    partitioner:
        Optional :class:`UniversePartitioner`; defaults to multiply-shift
        hashing seeded from ``seed``.
    seed:
        Seeds the partitioner and the per-shard sampler seeds.
    max_watermark_skew:
        Tolerated spread (seconds) between shard ``watermark()`` clocks
        at merge time; beyond it, merges raise
        :class:`~repro.lifecycle.WatermarkSkewError`.  Default ``inf``
        (never raise); kinds without a wall clock are never checked.
    compact_every:
        When set, run :meth:`compact` automatically after every ~this
        many ingested updates (in addition to the always-on query-time
        pass) — the timer leg of expiry compaction for write-heavy,
        query-light deployments.
    query_cache:
        Keep the merged-view cache (default).  ``False`` restores the
        PR 1 fold-per-query behavior: every :meth:`sample` re-folds from
        scratch and replays the same coins until the next ingest.
    metrics:
        :class:`~repro.obs.MetricsRegistry` the engine's fold/epoch/
        compaction instruments register in; ``None`` (default) resolves
        :func:`repro.obs.current_registry` at construction time, so a
        service that installs its own registry (``use_registry``) owns
        the engines it builds.  The registry is also installed while the
        shard samplers are built, so sampler-internal instruments (e.g.
        :class:`~repro.windows.WindowBank` rung counters) land in the
        same place.  Metrics record counts and wall time only — they
        never consume RNG, so the bitwise determinism contracts hold
        with metrics on or off.
    """

    def __init__(
        self,
        config: dict,
        shards: int = 8,
        partitioner: UniversePartitioner | None = None,
        seed: int | None = None,
        max_watermark_skew: float = math.inf,
        compact_every: int | None = None,
        query_cache: bool = True,
        metrics=None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if compact_every is not None and compact_every < 1:
            raise ValueError(f"compact_every must be ≥ 1, got {compact_every}")
        if max_watermark_skew < 0:
            raise ValueError(
                f"max_watermark_skew must be non-negative, got {max_watermark_skew}"
            )
        self._config = dict(config)
        self._kind = self._config.get("kind")
        spec = kind_spec(self._kind)
        if not spec.mergeable:
            raise ValueError(
                f"sampler kind {self._kind!r} does not merge (its registry "
                "spec declares mergeable=False), so it cannot serve behind "
                "a sharded engine"
            )
        if partitioner is None:
            partitioner = UniversePartitioner(shards, seed=0 if seed is None else seed)
        elif partitioner.shards != shards:
            raise ValueError(
                f"partitioner has {partitioner.shards} shards, engine wants {shards}"
            )
        self._partitioner = partitioner
        self._max_watermark_skew = float(max_watermark_skew)
        self._compact_every = compact_every
        self._ingested_since_compact = 0
        if spec.shard_config is not None:
            self._config = spec.shard_config(self._config, seed)
        root = np.random.SeedSequence(seed)
        if spec.shared_shard_seed:
            shared = np.random.default_rng(root).integers(2**31)
            shard_seeds = [int(shared)] * shards
        else:
            shard_seeds = [int(s.generate_state(1)[0]) for s in root.spawn(shards)]
        registry = current_registry() if metrics is None else metrics
        self._metrics = registry
        self._metrics_on = registry.enabled
        self._shard_seeds = list(shard_seeds)
        self._samplers = []
        with use_registry(registry):
            for shard_seed in shard_seeds:
                cfg = dict(self._config)
                cfg["seed"] = shard_seed
                self._samplers.append(build_sampler(cfg))
        missing = missing_hooks(self._samplers[0])
        if missing:
            raise ValueError(
                f"sampler kind {self._kind!r} does not implement the "
                f"StreamSampler lifecycle protocol (missing hooks: "
                f"{', '.join(missing)})"
            )
        # Merged-view cache: per-shard mutation epochs key the cached
        # fold; the prefix chain enables incremental rebase-on-dirty.
        self._query_cache = bool(query_cache)
        self._epochs = [0] * shards
        self._fold = None
        self._fold_epochs: list[int] | None = None
        self._prefixes: list | None = None
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_partial = 0
        # Pre-resolved instrument children (shared NOOP when the
        # registry is disabled) so the hot paths skip label lookups.
        fold_c = registry.counter(
            "repro_engine_fold_total",
            CATALOG_HELP["repro_engine_fold_total"],
            labels=("regime",),
        )
        self._m_fold = {
            r: fold_c.labels(regime=r) for r in ("hit", "rebase", "scratch")
        }
        fold_s = registry.histogram(
            "repro_engine_fold_seconds",
            CATALOG_HELP["repro_engine_fold_seconds"],
            labels=("regime",),
        )
        self._m_fold_seconds = {
            r: fold_s.labels(regime=r) for r in ("rebase", "scratch")
        }
        epoch_c = registry.counter(
            "repro_engine_epoch_bumps_total",
            CATALOG_HELP["repro_engine_epoch_bumps_total"],
            labels=("reason",),
        )
        self._m_epoch = {
            r: epoch_c.labels(reason=r)
            for r in ("ingest", "compact", "restore", "merge", "invalidate")
        }
        self._m_compact_passes = registry.counter(
            "repro_engine_compaction_passes_total",
            CATALOG_HELP["repro_engine_compaction_passes_total"],
        )
        self._m_compact_bytes = registry.counter(
            "repro_engine_compaction_reclaimed_bytes_total",
            CATALOG_HELP["repro_engine_compaction_reclaimed_bytes_total"],
        )
        # Ingest-kernel counters are incremented inside SamplerPool (the
        # pools built above already bound them via use_registry); register
        # here too so non-pool kinds still expose the catalog entries.
        registry.counter(
            "repro_ingest_heap_events_total",
            CATALOG_HELP["repro_ingest_heap_events_total"],
        )
        registry.counter(
            "repro_ingest_settle_scans_total",
            CATALOG_HELP["repro_ingest_settle_scans_total"],
        )

    @property
    def metrics(self):
        """The :class:`~repro.obs.MetricsRegistry` this engine reports
        into."""
        return self._metrics

    @property
    def shards(self) -> int:
        return len(self._samplers)

    @property
    def partitioner(self) -> UniversePartitioner:
        return self._partitioner

    @property
    def samplers(self) -> list:
        """The live shard samplers (mutating them is on you — call
        :meth:`invalidate_cache` afterwards, or the merged-view cache
        will keep serving the pre-mutation fold)."""
        return list(self._samplers)

    @property
    def position(self) -> int:
        """Total updates ingested across all shards."""
        return sum(s.position for s in self._samplers)

    def shard_of(self, item: int) -> int:
        return int(self._partitioner.assign(np.asarray([item]))[0])

    def shard_config(self, shard: int) -> dict:
        """The exact registry config shard ``shard``'s sampler was built
        with (kind-spec rewrites applied, per-shard seed set).  This is
        the bootstrap recipe for an out-of-process replica: build with
        :func:`~repro.engine.registry.build_sampler` on this config,
        then restore the shard's snapshot — the replica is bitwise
        identical to the in-engine sampler."""
        if not 0 <= shard < len(self._samplers):
            raise ValueError(
                f"shard {shard} out of range for {len(self._samplers)} shards"
            )
        cfg = dict(self._config)
        cfg["seed"] = self._shard_seeds[shard]
        return cfg

    def update(self, item: int, timestamp: float | None = None) -> None:
        """Scalar convenience path (route one item; ``timestamp`` for
        time-windowed sampler kinds)."""
        shard = self.shard_of(item)
        sampler = self._samplers[shard]
        if timestamp is None:
            sampler.update(item)
        else:
            sampler.update(item, timestamp)
        self._epochs[shard] += 1
        self._m_epoch["ingest"].inc()
        self._after_ingest(1)

    def ingest(
        self,
        items,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        timestamps=None,
        shared_index: bool = True,
    ) -> int:
        """Split a batch by shard and feed each sampler its subchunk;
        returns the number of items ingested.

        Pass a ``TimestampedStream`` (or an explicit ``timestamps``
        array) to feed time-windowed sampler kinds — each shard receives
        its items *with* their arrival times, so every shard's window
        boundaries line up on the shared wall clock.

        ``shared_index=False`` disables the shared-index two-phase fast
        path and takes the materialized-subchunk reference route instead.
        Both paths are bitwise identical by contract; the flag exists so
        parity tests and bench preflights can pin the comparison.
        """
        if timestamps is None:
            timestamps = getattr(items, "timestamps", None)
        if timestamps is None:
            arr = np.asarray(items, dtype=np.int64)
            k = len(self._samplers)
            total = 0
            bumps = 0
            # Shared-index two-phase path (pool-backed shards, 16-bit
            # values): heap events are data-independent, so every
            # shard's schedule is pre-simulated (``plan_batch``) before
            # any data is applied.  Tracked items plus event items are
            # then *all* the items any kernel will ever ask a rank query
            # about, so one candidate-limited PositionIndex over the
            # whole batch — sorting only candidate occurrences, not the
            # universe — serves every shard's settles and flushes, and
            # shards ingest position views with no subchunk ever
            # materialized.
            use_index = shared_index and bool(arr.size) and k > 1 and supports_index(
                self._samplers[0]
            )
            if use_index:
                use_index = int(arr.min()) >= 0 and int(arr.max()) <= 0xFFFF
            if use_index:
                # Slim split: the value → shard map answers everything
                # the per-item hash mix would — shard ids come from one
                # narrow gather, subchunk lengths from a weighted
                # bincount of the map against the batch histogram — and
                # one one-pass uint8 radix argsort groups positions by
                # shard in arrival order.
                occ = np.bincount(arr, minlength=1 << 16)
                vmap = self._partitioner.value_shards(1 << 16)
                ids = vmap[arr]
                order = np.argsort(ids, kind="stable")
                lengths = np.bincount(
                    vmap, weights=occ, minlength=k
                ).astype(np.int64)
                bounds = np.zeros(k + 1, dtype=np.int64)
                np.cumsum(lengths, out=bounds[1:])
                plans: list[tuple[list[int], list[int]] | None] = []
                cand_parts: list[np.ndarray] = []
                for shard in range(k):
                    lo, hi = int(bounds[shard]), int(bounds[shard + 1])
                    if hi <= lo:
                        plans.append(None)
                        continue
                    sampler = self._samplers[shard]
                    tracked = sampler.tracked_values()
                    if tracked.size:
                        cand_parts.append(
                            tracked[(tracked >= 0) & (tracked <= 0xFFFF)]
                        )
                    t0 = sampler.position
                    plan = sampler.plan_batch(hi - lo)
                    plans.append(plan)
                    if plan[0]:
                        offs = np.asarray(plan[0], dtype=np.int64)
                        offs -= t0 + 1  # shard-local offsets of the events
                        cand_parts.append(arr[order[lo + offs]])
                cand = (
                    np.unique(np.concatenate(cand_parts))
                    if cand_parts
                    else np.empty(0, dtype=np.int64)
                )
                index = PositionIndex(arr, cand, occ=occ)
                for shard in range(k):
                    lo, hi = int(bounds[shard]), int(bounds[shard + 1])
                    if hi > lo:
                        view = ShardView(
                            arr, order[lo:hi], index, events=plans[shard]
                        )
                        total += ingest(
                            self._samplers[shard], view, chunk_size=chunk_size
                        )
                        self._epochs[shard] += 1
                        bumps += 1
            else:
                # Fallback: materialized subchunks, with one whole-batch
                # digest shared across shards (the value partition routes
                # all of an item's occurrences to one shard, so an item's
                # whole-batch count *is* its subchunk count).
                digest = None
                if arr.size and k > 1 and supports_digest(self._samplers[0]):
                    digest = ChunkDigest(arr)
                subchunks = self._partitioner.split(arr)
                for shard, subchunk in enumerate(subchunks):
                    if subchunk.size:
                        total += ingest(
                            self._samplers[shard], subchunk,
                            chunk_size=chunk_size, digest=digest,
                        )
                        self._epochs[shard] += 1
                        bumps += 1
            if bumps:
                self._m_epoch["ingest"].add(bumps)
            self._after_ingest(total)
            return total
        inner = getattr(items, "items", None)
        arr = np.asarray(inner if inner is not None else items, dtype=np.int64)
        ts = np.asarray(timestamps, dtype=np.float64)
        if arr.ndim != 1 or ts.shape != arr.shape:
            raise ValueError("items and timestamps must be matching 1-d arrays")
        # One stable argsort groups items and timestamps alike — K
        # boolean-mask passes collapse to a single gather.
        order, bounds = self._partitioner.split_indices(arr)
        if order is not None:
            arr = arr[order]
            ts = ts[order]
        total = 0
        bumps = 0
        for shard in range(len(self._samplers)):
            lo, hi = int(bounds[shard]), int(bounds[shard + 1])
            if hi > lo:
                total += ingest(
                    self._samplers[shard],
                    arr[lo:hi],
                    chunk_size=chunk_size,
                    timestamps=ts[lo:hi],
                )
                self._epochs[shard] += 1
                bumps += 1
        if bumps:
            self._m_epoch["ingest"].add(bumps)
        self._after_ingest(total)
        return total

    def ingest_shard(
        self,
        shard: int,
        items,
        timestamps=None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> int:
        """Feed one shard directly, bypassing the router — the serving
        layer's per-shard ingest hook (each worker owns a disjoint set of
        shards, so concurrent workers never touch the same state).

        The caller owns the routing contract: every item must belong to
        ``shard`` under :attr:`partitioner` (feeding a mis-routed item
        silently corrupts the merged forward counts — route with
        :meth:`shard_of` / ``partitioner.split``).  Unlike
        :meth:`ingest`, this path never triggers the engine-wide
        ``compact_every`` cadence: a worker compacting shards it does
        not own would race their owners, so a concurrent deployment
        runs compaction from one place (see :meth:`compact_shard`).
        """
        if not 0 <= shard < len(self._samplers):
            raise ValueError(
                f"shard {shard} out of range for {len(self._samplers)} shards"
            )
        arr = np.asarray(getattr(items, "items", items), dtype=np.int64)
        if arr.size == 0:
            return 0
        total = ingest(
            self._samplers[shard], arr, chunk_size=chunk_size,
            timestamps=timestamps,
        )
        self._epochs[shard] += 1
        self._m_epoch["ingest"].inc()
        return total

    # -- lifecycle ----------------------------------------------------------
    def _after_ingest(self, count: int) -> None:
        """The timer leg of expiry compaction: compact once the cadence
        worth of updates has flowed since the last pass."""
        if self._compact_every is None:
            return
        self._ingested_since_compact += count
        if self._ingested_since_compact >= self._compact_every:
            self.compact()

    def compact(self, now: float | None = None) -> int:
        """Fan ``compact(now)`` out to every shard; returns the total
        approximate bytes reclaimed.  Passing ``now`` advances every
        shard's clock watermark (future updates must arrive at
        ``ts ≥ now``); ``None`` compacts each shard relative to its own
        watermark and advances nothing.

        A shard's mutation epoch bumps only when its compaction actually
        dropped state.  A pure watermark advance is answer-preserving —
        every query passes its own ``now`` and expired instances are
        rejected either way — so the query-time compaction pass does not
        invalidate the merged-view cache on idle read-heavy streams.
        """
        self._ingested_since_compact = 0
        total = 0
        bumps = 0
        for shard, sampler in enumerate(self._samplers):
            freed = sampler.compact(now)
            if freed:
                self._epochs[shard] += 1
                bumps += 1
            total += freed
        self._m_compact_passes.inc()
        if total:
            self._m_compact_bytes.add(total)
            self._m_epoch["compact"].add(bumps)
        return total

    def compact_shard(self, shard: int, now: float | None = None) -> int:
        """``compact(now)`` one shard only, bumping its epoch if state
        was dropped — the per-shard leg :meth:`compact` fans out to,
        exposed so a concurrent deployment can compact each shard under
        that shard's own write lock instead of stopping the world."""
        if not 0 <= shard < len(self._samplers):
            raise ValueError(
                f"shard {shard} out of range for {len(self._samplers)} shards"
            )
        freed = self._samplers[shard].compact(now)
        if freed:
            self._epochs[shard] += 1
            self._m_compact_bytes.add(freed)
            self._m_epoch["compact"].inc()
        return freed

    def watermarks(self) -> list[float | None]:
        """Per-shard ``watermark()`` clocks, in shard order."""
        return [s.watermark() for s in self._samplers]

    def watermark(self) -> float | None:
        """The engine's clock high-water mark: the max over shard
        watermarks (``None`` for kinds without a wall clock)."""
        marks = [w for w in self.watermarks() if w is not None]
        return max(marks) if marks else None

    def approx_size_bytes(self) -> int:
        """Total approximate resident bytes across all shards."""
        return sum(s.approx_size_bytes() for s in self._samplers)

    def _check_watermark_skew(self, samplers) -> None:
        marks = [s.watermark() for s in samplers]
        live = [w for w in marks if w is not None]
        if len(live) < 2:
            return
        skew = max(live) - min(live)
        if skew > self._max_watermark_skew:
            raise WatermarkSkewError(
                f"shard watermarks span {skew:.6g}s "
                f"(min {min(live):.6g}, max {max(live):.6g}), beyond the "
                f"{self._max_watermark_skew:.6g}s tolerance — merging would "
                "silently shift window membership; re-sync producer clocks "
                "or raise max_watermark_skew"
            )

    def merged_sampler(self):
        """Fold all shard states into one fresh merged sampler (shards
        are left untouched and keep ingesting).  Checks shard watermark
        skew first.

        This always folds from scratch — it is the cache-bypassing
        reference path (and what ``query_cache=False`` queries run on);
        the returned sampler is the caller's to mutate.
        """
        self._check_watermark_skew(self._samplers)
        return merged(self._samplers)

    # -- merged-view cache --------------------------------------------------
    def mutation_epochs(self) -> list[int]:
        """Per-shard mutation epochs, in shard order.  Monotonically
        non-decreasing; a bump means the shard's state changed (ingest,
        restore, merge, or a compaction that dropped state) and any
        cached fold containing it is stale."""
        return list(self._epochs)

    def _bump_all(self, reason: str) -> None:
        """Bump every shard's mutation epoch, attributing the bumps to
        ``reason`` in the epoch-bump counter."""
        for shard in range(len(self._epochs)):
            self._epochs[shard] += 1
        self._m_epoch[reason].add(len(self._epochs))

    def invalidate_cache(self) -> None:
        """Force the next query to re-fold, by bumping every shard's
        epoch.  Call this after mutating a shard obtained from
        :attr:`samplers` directly — the engine cannot see those writes."""
        self._bump_all("invalidate")

    def cache_info(self) -> dict:
        """Merged-view cache counters: full ``hits``, from-scratch
        ``misses``, incremental ``rebases`` (prefix-chain rebuilds), and
        the number of ``prefix_folds`` currently held (each is one
        merged-state copy — the memory price of incremental refolds).

        ``partial`` is the pre-PR 5 name for ``rebases`` and is kept as
        a deprecated alias; it is assigned from the ``rebases`` entry
        below (one source, no drift) and will go away once downstream
        dashboards migrate.
        """
        info = {
            "enabled": self._query_cache,
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "rebases": self._cache_partial,
            "prefix_folds": len(self._prefixes) if self._prefixes else 0,
        }
        info["partial"] = info["rebases"]  # deprecated alias, same counter
        return info

    def acquire_fold(self) -> FoldHandle:
        """Acquire the current merged view for reader-side serving: the
        cached fold (rebuilt only as far as the mutation epochs demand),
        its epoch snapshot, and the engine watermark.

        This is the query plane's entry point: the serving layer calls
        it with all shard writers quiesced (it reads every shard's
        state), then hands the immutable handle to lock-free readers —
        see :class:`FoldHandle` for the sharing rules.  Watermark skew
        is checked exactly as :meth:`sample` would; unlike a query, no
        compaction pass runs (the serving ticker owns that cadence).
        With ``query_cache=False`` every acquisition folds from scratch.
        """
        self._check_watermark_skew(self._samplers)
        epochs = tuple(self._epochs)
        fold = self._merged_view() if self._query_cache else merged(self._samplers)
        return FoldHandle(fold, epochs, self.watermark())

    def _merged_view(self):
        """The cached fold of all shard states, rebuilt only as far as
        the mutation epochs demand.

        Three regimes, cheapest first: every epoch matches → return the
        cached fold as-is (zero copies); the dirty set is a short
        suffix (at least half the shard prefix is clean) → rebase from
        the longest clean prefix fold, re-merging only dirty and later
        shards and keeping the chain for future suffixes; otherwise →
        fold from scratch exactly like :func:`merged` and drop the
        prefix chain (a batched ingest hash-scatters across all shards,
        and maintaining prefixes costs a copy per merge step plus
        O(K · state) retained memory — it only pays off when most of
        the chain survives to the next query).

        The chain is built copy-then-merge, so the final fold is bitwise
        identical to a from-scratch :func:`merged` of the same shard
        states — cached and fresh folds answer identically.
        """
        epochs = list(self._epochs)
        if self._fold is not None and self._fold_epochs == epochs:
            self._cache_hits += 1
            self._m_fold["hit"].inc()
            return self._fold
        shards = self._samplers
        k = len(shards)
        clean = 0
        if self._fold_epochs is not None:
            while clean < k and self._fold_epochs[clean] == epochs[clean]:
                clean += 1
        usable = min(clean, len(self._prefixes) if self._prefixes else 0)
        t0 = time.perf_counter() if self._metrics_on else 0.0
        with span("engine.fold", shards=k) as sp:
            if k == 1 or clean < max(1, k // 2):
                # Mostly (or fully) dirty: from-scratch fold, no prefix
                # upkeep — rebuilding a long chain would cost ~2-3x a plain
                # fold only to be discarded by the next scattered ingest.
                regime = "scratch"
                self._cache_misses += 1
                self._prefixes = None
                self._fold = merged(shards)
            else:
                # The dirty set is a short suffix: rebase from (or invest
                # in) the prefix chain so it — and future short suffixes —
                # re-merge incrementally.
                regime = "rebase"
                self._cache_partial += 1
                prefixes = list(self._prefixes[:usable]) if usable else []
                if not prefixes:
                    prefixes.append(copy.deepcopy(shards[0]))
                for i in range(len(prefixes), k):
                    fold = copy.deepcopy(prefixes[-1])
                    fold.merge(shards[i])
                    prefixes.append(fold)
                self._prefixes = prefixes
                self._fold = prefixes[-1]
            sp.set(regime=regime)
        self._fold_epochs = epochs
        self._m_fold[regime].inc()
        if self._metrics_on:
            self._m_fold_seconds[regime].observe(time.perf_counter() - t0)
        return self._fold

    def sample(self, **kwargs) -> SampleResult:
        """One truly perfect global sample from the merged shard states.

        Runs the query-time compaction pass first: a query at ``now=``
        advances the shard clocks there and releases expired window
        state; without ``now`` each shard compacts relative to its own
        watermark (a no-op for kinds without one).  Keyword arguments
        pass through to the merged sampler's ``sample`` (e.g. ``now=``
        for time-windowed kinds).

        **Determinism contract.**  With the merged-view cache on (the
        default), the fold's RNG stream is seeded from shard 0's RNG
        state *at fold time* and then persists across queries: repeated
        calls draw successive coins from that stream, giving fresh,
        independent samples, and the whole query sequence is a
        deterministic function of (engine seed, ingest history, query
        sequence).  The first query after any (re)fold is bitwise
        identical to a fresh :meth:`merged_sampler` query of the same
        shard states.  With ``query_cache=False`` every call re-folds
        and re-seeds from shard 0's live RNG, so repeated calls without
        further ingestion replay the same coins (the legacy behavior).
        """
        # Skew must be judged on the shards' own clocks: the compaction
        # pass below syncs every watermark to the query's `now`, which
        # would otherwise erase the very skew the check exists to catch.
        self._check_watermark_skew(self._samplers)
        self.compact(kwargs.get("now"))
        kwargs = self._pin_query_now(kwargs)
        if not self._query_cache:
            return merged(self._samplers).sample(**kwargs)
        return self._merged_view().sample(**kwargs)

    def sample_many(self, k: int, **kwargs) -> list[SampleResult]:
        """``k`` truly perfect global samples from one fold.

        Amortizes the skew check, the compaction pass, the fold (cache
        hit or rebuild), and — for kinds with a vectorized
        ``sample_many`` — one batched coin block across all ``k`` draws.
        With the merged-view cache on (the default) this is bitwise
        identical to ``k`` back-to-back :meth:`sample` calls with no
        ingest in between: both draw successive coins from the retained
        fold's stream.  With ``query_cache=False`` the two differ by
        design — sequential :meth:`sample` calls re-fold and *replay*
        the same coins (the legacy contract), while ``sample_many``
        folds once and draws ``k`` successive coin rows.

        Treat the returned results as immutable values: draws that
        accepted the same pool instance share one frozen
        :class:`SampleResult` (construction scales with distinct
        outcomes, not ``k``), so mutating one entry's ``metadata`` dict
        would show through its aliases.
        """
        if k < 0:
            raise ValueError(f"need a non-negative draw count, got {k}")
        self._check_watermark_skew(self._samplers)
        self.compact(kwargs.get("now"))
        kwargs = self._pin_query_now(kwargs)
        fold = (
            self._merged_view() if self._query_cache else merged(self._samplers)
        )
        many = getattr(fold, "sample_many", None)
        if callable(many):
            return many(k, **kwargs)
        return [fold.sample(**kwargs) for __ in range(k)]

    def _pin_query_now(self, kwargs: dict) -> dict:
        """Normalize the query clock against the engine watermark.

        A stale explicit ``now`` is rejected up front — the same check a
        fresh fold would raise, applied here so a cached fold (whose
        snapshot of the clock may be older) cannot silently accept it.
        An *omitted* ``now`` is pinned to the engine watermark: a fresh
        fold would default to its own ``_now`` (= the watermark at fold
        time), but a cached fold's clock snapshot may predate watermark
        advances that freed nothing — without pinning, a now-less query
        after a now-advancing query would evaluate a stale window.
        Kinds without a wall clock are untouched.
        """
        mark = self.watermark()
        if mark is None:
            return kwargs
        now = kwargs.get("now")
        if now is None:
            return {**kwargs, "now": mark}
        if float(now) < mark:
            raise ValueError(
                f"cannot sample at {now}, already ingested up to {mark}"
            )
        return kwargs

    def snapshot(self) -> dict:
        return {
            "kind": "sharded_engine",
            "sampler_kind": self._kind,
            "partition": {
                "shards": self._partitioner.shards,
                "strategy": self._partitioner.strategy,
                "seed": self._partitioner.seed,
            },
            "shards": {str(i): s.snapshot() for i, s in enumerate(self._samplers)},
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "sharded_engine":
            raise ValueError(f"not a sharded_engine snapshot: {state.get('kind')!r}")
        if state.get("sampler_kind") != self._kind:
            raise ValueError(
                f"snapshot is for sampler kind {state.get('sampler_kind')!r}, "
                f"engine has {self._kind!r}"
            )
        part = state["partition"]
        restored = UniversePartitioner(
            int(part["shards"]), strategy=str(part["strategy"]), seed=int(part["seed"])
        )
        if restored != self._partitioner:
            raise ValueError("snapshot partition layout differs from engine's")
        shard_states = state["shards"]
        if len(shard_states) != len(self._samplers):
            raise ValueError(
                f"snapshot has {len(shard_states)} shards, engine has "
                f"{len(self._samplers)}"
            )
        for i, sampler in enumerate(self._samplers):
            sampler.restore(shard_states[str(i)])
        # Every shard's state was rewritten wholesale: stale folds (and
        # their prefix chain) must never serve another query.
        self._prefixes = None
        self._fold = None
        self._fold_epochs = None
        self._bump_all("restore")

    def restore_shard(self, shard: int, state) -> None:
        """Restore one shard's sampler from a snapshot tree or enveloped
        bytes buffer, bumping only that shard's mutation epoch.

        This is the fold collector's write path for process-parallel
        serving: shard-owning worker processes ship per-shard snapshot
        deltas back to the front door, and each delta lands here —
        clean shards keep their epochs, so the merged-view cache still
        gets its prefix-rebase regime when only a suffix moved.  The
        caller owns concurrency (hold the shard's write lock in a
        served deployment)."""
        if not 0 <= shard < len(self._samplers):
            raise ValueError(
                f"shard {shard} out of range for {len(self._samplers)} shards"
            )
        if isinstance(state, (bytes, bytearray, memoryview)):
            from repro.engine.state import load_state

            load_state(self._samplers[shard], bytes(state))
        else:
            self._samplers[shard].restore(state)
        self._epochs[shard] += 1
        self._m_epoch["restore"].inc()

    def merge(self, other: "ShardedSamplerEngine") -> None:
        """Shard-wise merge of two engines with identical layouts (e.g.
        the same engine config fed from two sites).  Checks watermark
        skew across *both* engines' shards first — cross-site merges are
        exactly where producer clock skew bites."""
        if not isinstance(other, ShardedSamplerEngine):
            raise TypeError(
                f"cannot merge ShardedSamplerEngine with {type(other).__name__}"
            )
        if other._partitioner != self._partitioner:
            raise ValueError("engines partition the universe differently")
        self._check_watermark_skew(self._samplers + other._samplers)
        for mine, theirs in zip(self._samplers, other._samplers):
            mine.merge(theirs)
        self._bump_all("merge")
