"""Checkpoint / ship / merge sampler state — the engine's state façade.

The substance lives in :mod:`repro.lifecycle` now: the
:class:`~repro.lifecycle.StreamSampler` protocol (of which
:class:`MergeableState` is the minimal checkpointing subset), the plain
tree ↔ bytes codec, and the versioned :class:`~repro.lifecycle.Snapshot`
envelope.  This module re-exports that surface under its original PR 1
names and keeps the two conveniences the rest of the repo uses:

* :func:`save_state` / :func:`load_state` — envelope-aware bytes
  round-trip for any sampler (``save_state`` writes the kind-tagged
  :class:`Snapshot` envelope; ``load_state`` accepts enveloped *and*
  legacy pre-envelope buffers — see the envelope module for the
  migration story);
* :func:`merged` — fold mergeable samplers without touching the inputs.

Merging preserves true perfection because every merged ingredient is
certified, never estimated: uniform positions mix by substream length,
forward counts are partition-local, and normalizers take the max over
shards.
"""

from __future__ import annotations

import copy

from repro.lifecycle.codec import state_from_bytes, state_to_bytes
from repro.lifecycle.envelope import Snapshot
from repro.lifecycle.protocol import MergeableState, StreamSampler, supports_merge

__all__ = [
    "MergeableState",
    "StreamSampler",
    "Snapshot",
    "supports_merge",
    "state_to_bytes",
    "state_from_bytes",
    "save_state",
    "load_state",
    "merged",
]


def save_state(sampler) -> bytes:
    """Checkpoint ``sampler`` as an enveloped bytes buffer
    (``Snapshot.capture(sampler).to_bytes()``)."""
    return Snapshot.capture(sampler).to_bytes()


def load_state(sampler, buf: bytes) -> None:
    """Restore ``sampler`` from :func:`save_state` output (enveloped) or
    from a legacy raw-tree buffer."""
    Snapshot.from_bytes(buf).restore_into(sampler)


def merged(samplers):
    """Fold a sequence of mergeable samplers into a fresh merged sampler,
    leaving the inputs untouched (the first is deep-copied).

    **RNG / determinism contract.**  The fold's RNG stream begins as a
    copy of the first input's RNG state at fold time (the deep copy) and
    is advanced by the merge draws; from then on it belongs to the
    merged view alone.  Queries against the fold draw successive coins
    from that private stream — they never re-seed from the live input's
    RNG — so a *retained* fold answers repeated queries with fresh,
    deterministic draws, while *re-folding* before every query resets
    the stream and replays the same coins until the inputs ingest again.
    :class:`~repro.engine.ShardedSamplerEngine` builds its merged-view
    cache on the retained-fold behavior: its first query after any
    (re)fold is bitwise identical to a fresh ``merged(...)`` query of
    the same shard states, and later cache-hit queries continue the
    fold's stream.
    """
    samplers = list(samplers)
    if not samplers:
        raise ValueError("nothing to merge")
    out = copy.deepcopy(samplers[0])
    for other in samplers[1:]:
        out.merge(other)
    return out
