"""Mergeable, serializable sampler state.

Core samplers expose three hooks (the :class:`MergeableState` protocol):

* ``snapshot() -> dict`` — checkpoint as a *plain* tree: nested dicts of
  NumPy arrays and JSON-able scalars (including the RNG state, so a
  restored sampler replays bitwise-identically);
* ``restore(state)`` — overwrite a constructed sampler's state in place
  (construction-time configuration — measure objects, pool sizing —
  comes from :mod:`repro.engine.registry`, not from the snapshot);
* ``merge(other)`` — absorb a sampler that ingested a **disjoint
  partition of the universe**, yielding a sampler distributed exactly as
  one run over the concatenated substreams.  Truly perfect sampling
  survives merging because every ingredient is certified, never
  estimated: uniform positions mix by substream length, forward counts
  are partition-local, and normalizers take the max over shards.

:func:`state_to_bytes` / :func:`state_from_bytes` give snapshots a
compact wire format — a JSON header describing the tree plus the raw
array buffers — so shard state can be checkpointed to disk or shipped
between machines without pickling (loading a snapshot never executes
code).
"""

from __future__ import annotations

import copy
import json
import struct
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = [
    "MergeableState",
    "supports_merge",
    "state_to_bytes",
    "state_from_bytes",
    "save_state",
    "load_state",
    "merged",
]

_MAGIC = b"RPRS"
_VERSION = 1


@runtime_checkable
class MergeableState(Protocol):
    """Checkpointable, shippable, mergeable sampler state."""

    def snapshot(self) -> dict: ...

    def restore(self, state: dict) -> None: ...

    def merge(self, other) -> None: ...


def supports_merge(sampler) -> bool:
    """Whether the sampler implements the full MergeableState protocol."""
    return isinstance(sampler, MergeableState)


def _flatten(node, path: str, arrays: dict[str, np.ndarray]):
    """Replace arrays in a snapshot tree with references, collecting them."""
    if isinstance(node, np.ndarray):
        arrays[path] = node
        return {"__array__": path}
    if isinstance(node, dict):
        return {
            str(key): _flatten(value, f"{path}/{key}" if path else str(key), arrays)
            for key, value in node.items()
        }
    if isinstance(node, (np.integer,)):
        return int(node)
    if isinstance(node, (np.floating,)):
        return float(node)
    if isinstance(node, (np.bool_,)):
        return bool(node)
    return node


def _unflatten(node, arrays: dict[str, np.ndarray]):
    if isinstance(node, dict):
        if set(node) == {"__array__"}:
            return arrays[node["__array__"]]
        return {key: _unflatten(value, arrays) for key, value in node.items()}
    return node


def state_to_bytes(state: dict) -> bytes:
    """Serialize a snapshot tree to a compact self-describing buffer.

    Layout: ``RPRS | u32 header_len | header JSON | array buffers``.
    The header carries the flattened tree plus dtype/shape per array;
    buffers are raw C-order bytes concatenated in header order.
    """
    if not isinstance(state, dict):
        raise TypeError(f"snapshot must be a dict, got {type(state).__name__}")
    arrays: dict[str, np.ndarray] = {}
    tree = _flatten(state, "", arrays)
    specs = []
    buffers = []
    for path, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        specs.append({"path": path, "dtype": arr.dtype.str, "shape": list(arr.shape)})
        buffers.append(arr.tobytes())
    header = json.dumps(
        {"version": _VERSION, "tree": tree, "arrays": specs},
        separators=(",", ":"),
    ).encode("utf-8")
    return b"".join([_MAGIC, struct.pack("<I", len(header)), header, *buffers])


def state_from_bytes(buf: bytes) -> dict:
    """Inverse of :func:`state_to_bytes`."""
    if len(buf) < 8 or buf[:4] != _MAGIC:
        raise ValueError("not a repro engine state buffer (bad magic)")
    (header_len,) = struct.unpack_from("<I", buf, 4)
    start = 8 + header_len
    if start > len(buf):
        raise ValueError("truncated state buffer (header)")
    header = json.loads(buf[8:start].decode("utf-8"))
    if header.get("version") != _VERSION:
        raise ValueError(f"unsupported state version {header.get('version')!r}")
    arrays: dict[str, np.ndarray] = {}
    offset = start
    for spec in header["arrays"]:
        dtype = np.dtype(spec["dtype"])
        shape = tuple(spec["shape"])
        end = offset + int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if end > len(buf):
            raise ValueError("truncated state buffer (arrays)")
        arrays[spec["path"]] = np.frombuffer(
            buf[offset:end], dtype=dtype
        ).reshape(shape).copy()
        offset = end
    return _unflatten(header["tree"], arrays)


def save_state(sampler) -> bytes:
    """``state_to_bytes(sampler.snapshot())``."""
    return state_to_bytes(sampler.snapshot())


def load_state(sampler, buf: bytes) -> None:
    """``sampler.restore(state_from_bytes(buf))``."""
    sampler.restore(state_from_bytes(buf))


def merged(samplers):
    """Fold a sequence of mergeable samplers into a fresh merged sampler,
    leaving the inputs untouched (the first is deep-copied)."""
    samplers = list(samplers)
    if not samplers:
        raise ValueError("nothing to merge")
    out = copy.deepcopy(samplers[0])
    for other in samplers[1:]:
        out.merge(other)
    return out
