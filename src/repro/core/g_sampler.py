"""Framework 1.3 — truly perfect G-sampling on insertion-only streams.

The construction (Algorithms 1 and 2, Theorem 3.1):

1. run a single-slot reservoir over stream *positions*; remember the held
   item ``s`` and the count ``c`` of its occurrences from the sampling
   position onward;
2. at query time, accept ``s`` with probability ``(G(c) − G(c−1))/ζ``.

Telescoping over the ``f_i`` possible sampled positions of item ``i``
gives ``P(output = i) = G(f_i)/(ζm)`` exactly — so *conditioned on
accepting*, the output distribution is exactly ``G(f_i)/F_G``: truly
perfect.  Repeating ``R = O((ζm/F_G)·log(1/δ))`` independent instances
bounds the FAIL probability by δ.

``SamplerPool`` implements the paper's O(1)-update-time data structure: a
shared hash table mapping each currently tracked item to a running
occurrence count, with each instance holding only an *offset* into that
count; replacement times are drawn directly via skip-ahead jumps and kept
in a min-heap, so an update touches one counter plus an amortized-O(1)
number of heap events.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.core.measures import Measure
from repro.core.rejection import rejection_many
from repro.core.reservoir import skip_next_replacement
from repro.core.types import SampleResult, as_item_array
from repro.lifecycle.memory import (
    INSTANCE_BYTES,
    RNG_STATE_BYTES,
    mapping_bytes,
    sequence_bytes,
)
from repro.lifecycle.protocol import StaticLifecycleMixin

__all__ = ["SingleGSampler", "SamplerPool", "TrulyPerfectGSampler"]


class SingleGSampler:
    """One literal instance of Algorithm 2 (reference implementation).

    Kept deliberately naive — one coin per update — as the ground truth the
    optimized pool is tested against.
    """

    __slots__ = ("_measure", "_item", "_count", "_t", "_rng")

    def __init__(self, measure: Measure, seed: int | np.random.Generator | None = None) -> None:
        self._measure = measure
        self._item: int | None = None
        self._count = 0
        self._t = 0
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )

    @property
    def position(self) -> int:
        return self._t

    def update(self, item: int) -> None:
        self._t += 1
        if self._rng.random() < 1.0 / self._t:
            self._item = item
            self._count = 0
        if item == self._item:
            self._count += 1

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def sample(self, zeta: float | None = None) -> SampleResult:
        """Run the rejection step; EMPTY on an empty stream."""
        if self._t == 0:
            return SampleResult.empty()
        if zeta is None:
            zeta = self._measure.zeta(None)
        weight = self._measure.increment(self._count)
        if weight > zeta * (1.0 + 1e-12):
            raise ValueError(
                f"invalid zeta {zeta}: increment at c={self._count} is {weight}"
            )
        if self._rng.random() < weight / zeta:
            return SampleResult.of(self._item, count=self._count, zeta=zeta)
        return SampleResult.fail()


class SamplerPool(StaticLifecycleMixin):
    """``R`` parallel Algorithm-1 instances with shared counters.

    State per instance: ``(item, offset, timestamp, next replacement
    time)``.  Shared: ``counts[i]`` — occurrences of item ``i`` since it
    was first adopted by any instance; ``refs[i]`` — how many instances
    hold ``i``.  The final forward count of an instance is
    ``counts[item] − offset`` (≥ 1, includes its sampled occurrence).
    """

    __slots__ = ("_r", "_items", "_offsets", "_timestamps", "_heap", "_counts",
                 "_refs", "_t", "_rng", "_heap_events")

    def __init__(self, instances: int, seed: int | np.random.Generator | None = None) -> None:
        if instances < 1:
            raise ValueError(f"need at least one instance, got {instances}")
        self._r = instances
        self._items: list[int | None] = [None] * instances
        self._offsets = [0] * instances
        self._timestamps = [0] * instances
        # Every instance replaces at position 1.
        self._heap: list[tuple[int, int]] = [(1, idx) for idx in range(instances)]
        heapq.heapify(self._heap)
        self._counts: dict[int, int] = {}
        self._refs: dict[int, int] = {}
        self._t = 0
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        self._heap_events = 0

    @property
    def instances(self) -> int:
        return self._r

    @property
    def position(self) -> int:
        return self._t

    @property
    def tracked_items(self) -> int:
        """Number of distinct items currently referenced (space accounting)."""
        return len(self._counts)

    @property
    def heap_events(self) -> int:
        """Total replacements processed — O(R log m) in expectation."""
        return self._heap_events

    def approx_size_bytes(self) -> int:
        """Approximate resident bytes: per-instance slots, the heap, and
        the shared counter tables (see :mod:`repro.lifecycle.memory`)."""
        return (
            INSTANCE_BYTES
            + RNG_STATE_BYTES
            + 3 * sequence_bytes(self._r)  # items / offsets / timestamps
            + sequence_bytes(len(self._heap)) + 72 * len(self._heap)  # 2-tuples
            + mapping_bytes(len(self._counts))
            + mapping_bytes(len(self._refs))
        )

    def replacement_positions(self) -> list[int]:
        """Per-instance position (1-based) of the currently sampled
        occurrence — the third component of :meth:`finalize`, exposed
        separately so wrappers (the time-window samplers) can map
        positions to wall-clock timestamps right after an ingest step."""
        return list(self._timestamps)

    def update(self, item: int) -> None:
        self._t += 1
        t = self._t
        heap = self._heap
        while heap and heap[0][0] == t:
            __, idx = heapq.heappop(heap)
            self._heap_events += 1
            old = self._items[idx]
            if old is not None:
                self._refs[old] -= 1
                if self._refs[old] == 0:
                    del self._refs[old]
                    del self._counts[old]
            self._items[idx] = item
            if item in self._refs:
                self._refs[item] += 1
            else:
                self._refs[item] = 1
                self._counts.setdefault(item, 0)
            self._offsets[idx] = self._counts[item]
            self._timestamps[idx] = t
            heapq.heappush(heap, (skip_next_replacement(t, self._rng), idx))
        if item in self._counts:
            self._counts[item] += 1

    def extend(self, items) -> None:
        """Delegates to :meth:`update_batch` (bitwise identical to the
        scalar loop for a fixed seed)."""
        self.update_batch(as_item_array(items))

    def update_batch(self, items) -> None:
        """Vectorized ingestion of a whole chunk of items.

        Between heap events nothing changes which items are tracked, so
        the per-item work collapses to counting occurrences of tracked
        items inside each inter-event segment — done with one stable
        argsort of the chunk plus ``searchsorted`` range queries.  Heap
        events themselves (amortized ``O(R log m)`` over the stream) are
        replayed in exactly the scalar order, drawing the skip-ahead
        replacement jumps from the same RNG stream, so for a fixed seed
        the post-batch state is *bitwise identical* to the scalar
        ``update()`` loop.
        """
        arr = np.ascontiguousarray(np.asarray(items, dtype=np.int64))
        if arr.ndim != 1:
            raise ValueError("update_batch expects a 1-d sequence of items")
        length = int(arr.size)
        if length == 0:
            return
        t0 = self._t
        end = t0 + length
        heap = self._heap
        counts = self._counts
        refs = self._refs
        # accrued[i]: chunk offset up to which occurrences of i are
        # already reflected in counts[i].  Successive settle ranges of one
        # item are disjoint (accrued only advances), so slice-restricted
        # vectorized counting does at most one full chunk scan per tracked
        # item — and only items touched by a heap event are settled here.
        accrued = dict.fromkeys(counts, 0)

        def settle(item: int, upto: int) -> None:
            start = accrued[item]
            if start < upto:
                hits = int(np.count_nonzero(arr[start:upto] == item))
                if hits:
                    counts[item] += hits
                accrued[item] = upto

        while heap and heap[0][0] <= end:
            time, idx = heapq.heappop(heap)
            self._heap_events += 1
            off = time - t0 - 1  # chunk offset of the replacement position
            item = int(arr[off])
            old = self._items[idx]
            if old is not None:
                if refs[old] == 1:
                    # Last holder: the shared counter dies with it, so the
                    # settle (and its occurrence scan) can be skipped.
                    del refs[old]
                    del counts[old]
                    del accrued[old]
                else:
                    settle(old, off)
                    refs[old] -= 1
            self._items[idx] = item
            if item in refs:
                refs[item] += 1
                settle(item, off)
            else:
                refs[item] = 1
                counts[item] = 0
                accrued[item] = off  # the occurrence at `off` accrues later
            self._offsets[idx] = counts[item]
            self._timestamps[idx] = time
            heapq.heappush(heap, (skip_next_replacement(time, self._rng), idx))
        # Final flush.  Items untouched by any heap event (the common case
        # in steady state) all need the same full-chunk occurrence count —
        # one bincount pass (or a searchsorted pass when the universe is
        # too large to bincount) instead of a scan per item.
        whole = [i for i, a in accrued.items() if a == 0]
        if whole:
            top = int(arr.max())
            if 0 <= int(arr.min()) and top < max(1 << 20, 4 * length):
                occ_all = np.bincount(arr, minlength=top + 1)
                for item in whole:
                    # Tracked items adopted in earlier chunks may exceed
                    # this chunk's max value.
                    hits = int(occ_all[item]) if item <= top else 0
                    if hits:
                        counts[item] += hits
            else:
                tracked = np.array(whole, dtype=np.int64)
                tracked.sort()
                slot = tracked.searchsorted(arr)
                np.minimum(slot, tracked.size - 1, out=slot)
                occ = np.bincount(slot[tracked[slot] == arr], minlength=tracked.size)
                for j, item in enumerate(tracked.tolist()):
                    if occ[j]:
                        counts[item] += int(occ[j])
        for item, a in accrued.items():
            if a != 0:
                settle(item, length)
        self._t = end

    def snapshot(self) -> dict:
        """Checkpoint the full pool state as a dict of arrays + scalars.

        The layout is plain (NumPy arrays, ints, and the RNG state dict)
        so :mod:`repro.engine.state` can serialize it to bytes without
        pickling.  Includes the RNG state: a restored pool continues the
        stream bitwise-identically.
        """
        heap = sorted(self._heap)
        n_tracked = len(self._counts)
        return {
            "kind": "sampler_pool",
            "instances": self._r,
            "position": self._t,
            "heap_events": self._heap_events,
            "items": np.array(
                [-1 if x is None else x for x in self._items], dtype=np.int64
            ),
            "offsets": np.asarray(self._offsets, dtype=np.int64),
            "timestamps": np.asarray(self._timestamps, dtype=np.int64),
            "heap_times": np.array([h[0] for h in heap], dtype=np.int64),
            "heap_slots": np.array([h[1] for h in heap], dtype=np.int64),
            "count_keys": np.fromiter(self._counts.keys(), dtype=np.int64, count=n_tracked),
            "count_vals": np.fromiter(self._counts.values(), dtype=np.int64, count=n_tracked),
            "ref_keys": np.fromiter(self._refs.keys(), dtype=np.int64, count=len(self._refs)),
            "ref_vals": np.fromiter(self._refs.values(), dtype=np.int64, count=len(self._refs)),
            "rng_state": self._rng.bit_generator.state,
        }

    def restore(self, state: dict) -> None:
        """Overwrite this pool's state from a :meth:`snapshot` dict."""
        if state.get("kind") != "sampler_pool":
            raise ValueError(f"not a sampler_pool snapshot: {state.get('kind')!r}")
        self._r = int(state["instances"])
        self._t = int(state["position"])
        self._heap_events = int(state["heap_events"])
        self._items = [None if x < 0 else int(x) for x in state["items"]]
        self._offsets = [int(x) for x in state["offsets"]]
        self._timestamps = [int(x) for x in state["timestamps"]]
        heap = [
            (int(t), int(i))
            for t, i in zip(state["heap_times"], state["heap_slots"])
        ]
        heapq.heapify(heap)
        self._heap = heap
        self._counts = {
            int(k): int(v) for k, v in zip(state["count_keys"], state["count_vals"])
        }
        self._refs = {
            int(k): int(v) for k, v in zip(state["ref_keys"], state["ref_vals"])
        }
        rng = np.random.default_rng()
        rng.bit_generator.state = state["rng_state"]
        self._rng = rng

    @classmethod
    def from_snapshot(cls, state: dict) -> "SamplerPool":
        pool = cls(int(state["instances"]))
        pool.restore(state)
        return pool

    def merge(self, other: "SamplerPool") -> list[bool]:
        """Absorb a pool that ingested a *disjoint* partition of the
        universe (items of the two substreams must not overlap — a hash
        partition guarantees this; overlapping supports silently break the
        forward-count semantics).

        Merged instance ``k`` keeps this pool's ``k``-th instance with
        probability ``m₁/(m₁+m₂)``, else adopts ``other``'s — i.e. a
        uniform position over the concatenated stream.  Because item
        supports are disjoint, a kept instance's forward count in its own
        substream *is* its forward count in any interleaving, so the
        merged pool is distributed exactly as one pool run over the
        concatenation (the mergeability behind the sharded engine).
        Replacement times are redrawn at the merged length — valid since
        a reservoir's next-replacement law depends only on its position.

        Returns the per-instance pick mask (``True`` where this pool's
        instance was kept) so wrappers carrying side-channel per-instance
        state (e.g. wall-clock adoption times) can merge it consistently.
        """
        if not isinstance(other, SamplerPool):
            raise TypeError(f"cannot merge SamplerPool with {type(other).__name__}")
        if other._r != self._r:
            raise ValueError(
                f"instance counts differ: {self._r} vs {other._r}"
            )
        m1, m2 = self._t, other._t
        if m2 == 0:
            return [True] * self._r
        total = m1 + m2
        mine = self.finalize()
        theirs = other.finalize()
        kept_self: list[bool] = []
        picks: list[tuple[int, int, int]] = []
        for k in range(self._r):
            if m1 > 0 and self._rng.random() < m1 / total:
                kept_self.append(True)
                picks.append(mine[k])
            else:
                kept_self.append(False)
                item, count, ts = theirs[k]
                picks.append((item, count, m1 + ts))
        counts: dict[int, int] = {}
        refs: dict[int, int] = {}
        for item, count, __ in picks:
            refs[item] = refs.get(item, 0) + 1
            counts[item] = max(counts.get(item, 0), count)
        for k, (item, count, ts) in enumerate(picks):
            self._items[k] = item
            self._offsets[k] = counts[item] - count
            self._timestamps[k] = ts
        self._counts = counts
        self._refs = refs
        self._t = total
        self._heap = [
            (skip_next_replacement(total, self._rng), idx) for idx in range(self._r)
        ]
        heapq.heapify(self._heap)
        self._heap_events += other._heap_events
        return kept_self

    def finalize(self) -> list[tuple[int, int, int]]:
        """Per-instance ``(item, count, timestamp)`` triples.

        ``count`` includes the sampled occurrence (≥ 1).  Empty when the
        stream was empty.
        """
        if self._t == 0:
            return []
        out = []
        for idx in range(self._r):
            item = self._items[idx]
            count = self._counts[item] - self._offsets[idx]
            out.append((item, count, self._timestamps[idx]))
        return out


class TrulyPerfectGSampler(StaticLifecycleMixin):
    """Truly perfect G-sampler for insertion-only streams (Theorem 3.1).

    Parameters
    ----------
    measure:
        The measure ``G``; must have globally bounded increments
        (``measure.zeta(None)`` must not raise).  Lp with ``p > 1`` needs
        the Misra-Gries normalizer — use
        :class:`repro.core.lp_sampler.TrulyPerfectLpSampler`.
    instances:
        Explicit pool size ``R``; default sizes the pool from the
        certified ``F_G`` lower bound to reach FAIL probability ≤ δ.
    delta:
        FAIL probability target when ``instances`` is not given.
    m_hint:
        Expected stream length, used only to size the pool for measures
        whose certified acceptance bound depends on ``m`` (concave
        measures); over-estimates are safe.

    Notes
    -----
    Every downstream guarantee is *distributional*: conditioned on the
    sampler returning an index, that index is exactly ``G(f_i)/F_G``
    distributed, with zero additive error — including when ``instances``
    is too small (only the FAIL rate suffers).
    """

    def __init__(
        self,
        measure: Measure,
        instances: int | None = None,
        delta: float = 0.05,
        m_hint: int | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        self._measure = measure
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        if instances is None:
            instances = self.default_instances(measure, delta, m_hint)
        self._pool = SamplerPool(instances, self._rng)
        self._delta = delta

    @staticmethod
    def default_instances(
        measure: Measure, delta: float = 0.05, m_hint: int | None = None
    ) -> int:
        """``R = ⌈ln(1/δ) / acceptance lower bound⌉`` (Theorem 3.1).

        The acceptance bound is ``F̂_G/(ζ·m)``; for convex measures it is
        independent of ``m``, for concave ones it degrades with ``m`` so a
        conservative default horizon of 10^6 is used when no hint is given.
        """
        zeta = measure.zeta(None)  # raises for measures needing ‖f‖∞
        m = m_hint if m_hint is not None else 10**6
        acceptance = measure.fg_lower_bound(m) / (zeta * m)
        if acceptance <= 0:
            raise ValueError(f"measure {measure.name} certifies no acceptance bound")
        return max(1, math.ceil(math.log(1.0 / delta) / acceptance))

    @property
    def measure(self) -> Measure:
        return self._measure

    @property
    def instances(self) -> int:
        return self._pool.instances

    @property
    def position(self) -> int:
        return self._pool.position

    @property
    def space_words(self) -> int:
        """Machine words of sampler state: 4 per instance + 2 per tracked
        item (the paper counts bits; we count words)."""
        return 4 * self._pool.instances + 2 * self._pool.tracked_items

    def approx_size_bytes(self) -> int:
        return INSTANCE_BYTES + self._pool.approx_size_bytes()

    def update(self, item: int) -> None:
        self._pool.update(item)

    def extend(self, items) -> None:
        self._pool.extend(items)

    def update_batch(self, items) -> None:
        """Vectorized ingestion — see :meth:`SamplerPool.update_batch`."""
        self._pool.update_batch(items)

    def snapshot(self) -> dict:
        """Checkpoint pool + RNG state (the measure is construction-time
        configuration, not state — rebuild via the engine registry; its
        name is recorded so a mismatched restore fails loudly)."""
        return {
            "kind": "truly_perfect_g",
            "measure": self._measure.name,
            "delta": self._delta,
            "pool": self._pool.snapshot(),
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "truly_perfect_g":
            raise ValueError(f"not a truly_perfect_g snapshot: {state.get('kind')!r}")
        if state.get("measure") != self._measure.name:
            raise ValueError(
                f"snapshot is for measure {state.get('measure')!r}, sampler "
                f"has {self._measure.name!r}"
            )
        self._delta = float(state["delta"])
        self._pool.restore(state["pool"])
        self._rng = self._pool._rng

    def merge(self, other: "TrulyPerfectGSampler") -> None:
        """Absorb a sampler run over a disjoint universe partition.

        Exact under the same contract as :meth:`SamplerPool.merge`; the
        two samplers must use the same measure.
        """
        if not isinstance(other, TrulyPerfectGSampler):
            raise TypeError(
                f"cannot merge TrulyPerfectGSampler with {type(other).__name__}"
            )
        if type(other._measure) is not type(self._measure) or (
            other._measure.name != self._measure.name
        ):
            raise ValueError(
                f"measures differ: {self._measure.name} vs {other._measure.name}"
            )
        self._pool.merge(other._pool)

    def _zeta(self) -> float:
        return self._measure.zeta(None)

    def sample(self) -> SampleResult:
        """Finalize all instances and return the first acceptor.

        Truly perfect: each instance's accepted index is exactly
        target-distributed and independent of *which* instances accept, so
        taking the first acceptor preserves the distribution.
        """
        finals = self._pool.finalize()
        if not finals:
            return SampleResult.empty()
        zeta = self._zeta()
        measure = self._measure
        # One vectorized batch of acceptance coins.
        coins = self._rng.random(len(finals))
        for (item, count, ts), coin in zip(finals, coins):
            weight = measure.increment(count)
            if weight > zeta * (1.0 + 1e-12):
                raise ValueError(
                    f"invalid zeta {zeta}: increment at c={count} is {weight}"
                )
            if coin < weight / zeta:
                return SampleResult.of(item, count=count, timestamp=ts, zeta=zeta)
        return SampleResult.fail(zeta=zeta)

    def sample_many(self, k: int) -> list[SampleResult]:
        """``k`` independent samples from one finalize + one batched coin
        block — bitwise identical to ``k`` back-to-back :meth:`sample`
        calls, amortizing the per-query instance scan."""
        finals = self._pool.finalize()
        if not finals:
            if k < 0:
                raise ValueError(f"need a non-negative draw count, got {k}")
            return [SampleResult.empty() for __ in range(k)]
        zeta = self._zeta()
        measure = self._measure
        weights = [measure.increment(c) for __, c, __ in finals]

        def make(j: int) -> SampleResult:
            item, count, ts = finals[j]
            return SampleResult.of(item, count=count, timestamp=ts, zeta=zeta)

        return rejection_many(
            self._rng,
            k,
            weights,
            zeta,
            make,
            lambda: SampleResult.fail(zeta=zeta),
            describe=lambda j: (
                f"invalid zeta {zeta}: increment at c={finals[j][1]} is "
                f"{weights[j]}"
            ),
        )

    def run(self, stream) -> SampleResult:
        """Convenience: replay a whole stream then sample."""
        self.extend(stream)
        return self.sample()
