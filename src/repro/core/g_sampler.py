"""Framework 1.3 — truly perfect G-sampling on insertion-only streams.

The construction (Algorithms 1 and 2, Theorem 3.1):

1. run a single-slot reservoir over stream *positions*; remember the held
   item ``s`` and the count ``c`` of its occurrences from the sampling
   position onward;
2. at query time, accept ``s`` with probability ``(G(c) − G(c−1))/ζ``.

Telescoping over the ``f_i`` possible sampled positions of item ``i``
gives ``P(output = i) = G(f_i)/(ζm)`` exactly — so *conditioned on
accepting*, the output distribution is exactly ``G(f_i)/F_G``: truly
perfect.  Repeating ``R = O((ζm/F_G)·log(1/δ))`` independent instances
bounds the FAIL probability by δ.

``SamplerPool`` implements the paper's O(1)-update-time data structure: a
shared hash table mapping each currently tracked item to a running
occurrence count, with each instance holding only an *offset* into that
count; replacement times are drawn directly via skip-ahead jumps and kept
in a min-heap, so an update touches one counter plus an amortized-O(1)
number of heap events.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.core.measures import Measure
from repro.core.reservoir import skip_next_replacement
from repro.core.types import SampleResult

__all__ = ["SingleGSampler", "SamplerPool", "TrulyPerfectGSampler"]


class SingleGSampler:
    """One literal instance of Algorithm 2 (reference implementation).

    Kept deliberately naive — one coin per update — as the ground truth the
    optimized pool is tested against.
    """

    __slots__ = ("_measure", "_item", "_count", "_t", "_rng")

    def __init__(self, measure: Measure, seed: int | np.random.Generator | None = None) -> None:
        self._measure = measure
        self._item: int | None = None
        self._count = 0
        self._t = 0
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )

    @property
    def position(self) -> int:
        return self._t

    def update(self, item: int) -> None:
        self._t += 1
        if self._rng.random() < 1.0 / self._t:
            self._item = item
            self._count = 0
        if item == self._item:
            self._count += 1

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def sample(self, zeta: float | None = None) -> SampleResult:
        """Run the rejection step; EMPTY on an empty stream."""
        if self._t == 0:
            return SampleResult.empty()
        if zeta is None:
            zeta = self._measure.zeta(None)
        weight = self._measure.increment(self._count)
        if weight > zeta * (1.0 + 1e-12):
            raise ValueError(
                f"invalid zeta {zeta}: increment at c={self._count} is {weight}"
            )
        if self._rng.random() < weight / zeta:
            return SampleResult.of(self._item, count=self._count, zeta=zeta)
        return SampleResult.fail()


class SamplerPool:
    """``R`` parallel Algorithm-1 instances with shared counters.

    State per instance: ``(item, offset, timestamp, next replacement
    time)``.  Shared: ``counts[i]`` — occurrences of item ``i`` since it
    was first adopted by any instance; ``refs[i]`` — how many instances
    hold ``i``.  The final forward count of an instance is
    ``counts[item] − offset`` (≥ 1, includes its sampled occurrence).
    """

    __slots__ = ("_r", "_items", "_offsets", "_timestamps", "_heap", "_counts",
                 "_refs", "_t", "_rng", "_heap_events")

    def __init__(self, instances: int, seed: int | np.random.Generator | None = None) -> None:
        if instances < 1:
            raise ValueError(f"need at least one instance, got {instances}")
        self._r = instances
        self._items: list[int | None] = [None] * instances
        self._offsets = [0] * instances
        self._timestamps = [0] * instances
        # Every instance replaces at position 1.
        self._heap: list[tuple[int, int]] = [(1, idx) for idx in range(instances)]
        heapq.heapify(self._heap)
        self._counts: dict[int, int] = {}
        self._refs: dict[int, int] = {}
        self._t = 0
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        self._heap_events = 0

    @property
    def instances(self) -> int:
        return self._r

    @property
    def position(self) -> int:
        return self._t

    @property
    def tracked_items(self) -> int:
        """Number of distinct items currently referenced (space accounting)."""
        return len(self._counts)

    @property
    def heap_events(self) -> int:
        """Total replacements processed — O(R log m) in expectation."""
        return self._heap_events

    def update(self, item: int) -> None:
        self._t += 1
        t = self._t
        heap = self._heap
        while heap and heap[0][0] == t:
            __, idx = heapq.heappop(heap)
            self._heap_events += 1
            old = self._items[idx]
            if old is not None:
                self._refs[old] -= 1
                if self._refs[old] == 0:
                    del self._refs[old]
                    del self._counts[old]
            self._items[idx] = item
            if item in self._refs:
                self._refs[item] += 1
            else:
                self._refs[item] = 1
                self._counts.setdefault(item, 0)
            self._offsets[idx] = self._counts[item]
            self._timestamps[idx] = t
            heapq.heappush(heap, (skip_next_replacement(t, self._rng), idx))
        if item in self._counts:
            self._counts[item] += 1

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def finalize(self) -> list[tuple[int, int, int]]:
        """Per-instance ``(item, count, timestamp)`` triples.

        ``count`` includes the sampled occurrence (≥ 1).  Empty when the
        stream was empty.
        """
        if self._t == 0:
            return []
        out = []
        for idx in range(self._r):
            item = self._items[idx]
            count = self._counts[item] - self._offsets[idx]
            out.append((item, count, self._timestamps[idx]))
        return out


class TrulyPerfectGSampler:
    """Truly perfect G-sampler for insertion-only streams (Theorem 3.1).

    Parameters
    ----------
    measure:
        The measure ``G``; must have globally bounded increments
        (``measure.zeta(None)`` must not raise).  Lp with ``p > 1`` needs
        the Misra-Gries normalizer — use
        :class:`repro.core.lp_sampler.TrulyPerfectLpSampler`.
    instances:
        Explicit pool size ``R``; default sizes the pool from the
        certified ``F_G`` lower bound to reach FAIL probability ≤ δ.
    delta:
        FAIL probability target when ``instances`` is not given.
    m_hint:
        Expected stream length, used only to size the pool for measures
        whose certified acceptance bound depends on ``m`` (concave
        measures); over-estimates are safe.

    Notes
    -----
    Every downstream guarantee is *distributional*: conditioned on the
    sampler returning an index, that index is exactly ``G(f_i)/F_G``
    distributed, with zero additive error — including when ``instances``
    is too small (only the FAIL rate suffers).
    """

    def __init__(
        self,
        measure: Measure,
        instances: int | None = None,
        delta: float = 0.05,
        m_hint: int | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        self._measure = measure
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        if instances is None:
            instances = self.default_instances(measure, delta, m_hint)
        self._pool = SamplerPool(instances, self._rng)
        self._delta = delta

    @staticmethod
    def default_instances(
        measure: Measure, delta: float = 0.05, m_hint: int | None = None
    ) -> int:
        """``R = ⌈ln(1/δ) / acceptance lower bound⌉`` (Theorem 3.1).

        The acceptance bound is ``F̂_G/(ζ·m)``; for convex measures it is
        independent of ``m``, for concave ones it degrades with ``m`` so a
        conservative default horizon of 10^6 is used when no hint is given.
        """
        zeta = measure.zeta(None)  # raises for measures needing ‖f‖∞
        m = m_hint if m_hint is not None else 10**6
        acceptance = measure.fg_lower_bound(m) / (zeta * m)
        if acceptance <= 0:
            raise ValueError(f"measure {measure.name} certifies no acceptance bound")
        return max(1, math.ceil(math.log(1.0 / delta) / acceptance))

    @property
    def measure(self) -> Measure:
        return self._measure

    @property
    def instances(self) -> int:
        return self._pool.instances

    @property
    def position(self) -> int:
        return self._pool.position

    @property
    def space_words(self) -> int:
        """Machine words of sampler state: 4 per instance + 2 per tracked
        item (the paper counts bits; we count words)."""
        return 4 * self._pool.instances + 2 * self._pool.tracked_items

    def update(self, item: int) -> None:
        self._pool.update(item)

    def extend(self, items) -> None:
        self._pool.extend(items)

    def _zeta(self) -> float:
        return self._measure.zeta(None)

    def sample(self) -> SampleResult:
        """Finalize all instances and return the first acceptor.

        Truly perfect: each instance's accepted index is exactly
        target-distributed and independent of *which* instances accept, so
        taking the first acceptor preserves the distribution.
        """
        finals = self._pool.finalize()
        if not finals:
            return SampleResult.empty()
        zeta = self._zeta()
        measure = self._measure
        # One vectorized batch of acceptance coins.
        coins = self._rng.random(len(finals))
        for (item, count, ts), coin in zip(finals, coins):
            weight = measure.increment(count)
            if weight > zeta * (1.0 + 1e-12):
                raise ValueError(
                    f"invalid zeta {zeta}: increment at c={count} is {weight}"
                )
            if coin < weight / zeta:
                return SampleResult.of(item, count=count, timestamp=ts, zeta=zeta)
        return SampleResult.fail(zeta=zeta)

    def run(self, stream) -> SampleResult:
        """Convenience: replay a whole stream then sample."""
        self.extend(stream)
        return self.sample()
