"""Framework 1.3 — truly perfect G-sampling on insertion-only streams.

The construction (Algorithms 1 and 2, Theorem 3.1):

1. run a single-slot reservoir over stream *positions*; remember the held
   item ``s`` and the count ``c`` of its occurrences from the sampling
   position onward;
2. at query time, accept ``s`` with probability ``(G(c) − G(c−1))/ζ``.

Telescoping over the ``f_i`` possible sampled positions of item ``i``
gives ``P(output = i) = G(f_i)/(ζm)`` exactly — so *conditioned on
accepting*, the output distribution is exactly ``G(f_i)/F_G``: truly
perfect.  Repeating ``R = O((ζm/F_G)·log(1/δ))`` independent instances
bounds the FAIL probability by δ.

``SamplerPool`` implements the paper's O(1)-update-time data structure: a
shared hash table mapping each currently tracked item to a running
occurrence count, with each instance holding only an *offset* into that
count; replacement times are drawn directly via skip-ahead jumps and kept
in a min-heap, so an update touches one counter plus an amortized-O(1)
number of heap events.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.core.measures import Measure
from repro.core.rejection import rejection_many
from repro.core.reservoir import skip_next_replacement, skip_next_replacements
from repro.core.timeline import ChunkDigest, ShardView, simulate_events
from repro.core.types import SampleResult, as_item_array
from repro.lifecycle.memory import (
    INSTANCE_BYTES,
    RNG_STATE_BYTES,
    mapping_bytes,
    sequence_bytes,
)
from repro.lifecycle.protocol import StaticLifecycleMixin
from repro.obs.catalog import CATALOG_HELP
from repro.obs.metrics import current_registry

__all__ = ["SingleGSampler", "SamplerPool", "TrulyPerfectGSampler"]


class SingleGSampler:
    """One literal instance of Algorithm 2 (reference implementation).

    Kept deliberately naive — one coin per update — as the ground truth the
    optimized pool is tested against.
    """

    __slots__ = ("_measure", "_item", "_count", "_t", "_rng")

    def __init__(self, measure: Measure, seed: int | np.random.Generator | None = None) -> None:
        self._measure = measure
        self._item: int | None = None
        self._count = 0
        self._t = 0
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )

    @property
    def position(self) -> int:
        return self._t

    def update(self, item: int) -> None:
        self._t += 1
        if self._rng.random() < 1.0 / self._t:
            self._item = item
            self._count = 0
        if item == self._item:
            self._count += 1

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def sample(self, zeta: float | None = None) -> SampleResult:
        """Run the rejection step; EMPTY on an empty stream."""
        if self._t == 0:
            return SampleResult.empty()
        if zeta is None:
            zeta = self._measure.zeta(None)
        weight = self._measure.increment(self._count)
        if weight > zeta * (1.0 + 1e-12):
            raise ValueError(
                f"invalid zeta {zeta}: increment at c={self._count} is {weight}"
            )
        if self._rng.random() < weight / zeta:
            return SampleResult.of(self._item, count=self._count, zeta=zeta)
        return SampleResult.fail()


class SamplerPool(StaticLifecycleMixin):
    """``R`` parallel Algorithm-1 instances with shared counters.

    State per instance: ``(item, offset, timestamp, next replacement
    time)``.  Shared: ``counts[i]`` — occurrences of item ``i`` since it
    was first adopted by any instance; ``refs[i]`` — how many instances
    hold ``i``.  The final forward count of an instance is
    ``counts[item] − offset`` (≥ 1, includes its sampled occurrence).
    """

    #: The engine may pass a shared whole-chunk ChunkDigest to
    #: :meth:`update_batch` (see :func:`repro.engine.batch.ingest`).
    accepts_digest = True
    #: :meth:`update_batch` also consumes position views of a shared
    #: indexed chunk (:class:`~repro.core.timeline.ShardView`) — the
    #: sharded engine's zero-materialization ingest path.
    accepts_index = True

    __slots__ = ("_r", "_items", "_offsets", "_timestamps", "_heap", "_counts",
                 "_refs", "_t", "_rng", "_heap_events", "_settle_scans",
                 "_m_heap_events", "_m_settle_scans")

    def __init__(self, instances: int, seed: int | np.random.Generator | None = None) -> None:
        if instances < 1:
            raise ValueError(f"need at least one instance, got {instances}")
        self._r = instances
        self._items: list[int | None] = [None] * instances
        self._offsets = [0] * instances
        self._timestamps = [0] * instances
        # Every instance replaces at position 1.
        self._heap: list[tuple[int, int]] = [(1, idx) for idx in range(instances)]
        heapq.heapify(self._heap)
        self._counts: dict[int, int] = {}
        self._refs: dict[int, int] = {}
        self._t = 0
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        self._heap_events = 0
        self._settle_scans = 0
        registry = current_registry()
        self._m_heap_events = registry.counter(
            "repro_ingest_heap_events_total",
            CATALOG_HELP["repro_ingest_heap_events_total"],
        )
        self._m_settle_scans = registry.counter(
            "repro_ingest_settle_scans_total",
            CATALOG_HELP["repro_ingest_settle_scans_total"],
        )

    @property
    def instances(self) -> int:
        return self._r

    @property
    def position(self) -> int:
        return self._t

    @property
    def tracked_items(self) -> int:
        """Number of distinct items currently referenced (space accounting)."""
        return len(self._counts)

    @property
    def heap_events(self) -> int:
        """Total replacements processed — O(R log m) in expectation."""
        return self._heap_events

    @property
    def settle_scans(self) -> int:
        """Full-chunk position scans taken by the batched kernel — the
        only data-dependent work that is not O(1) per heap event.
        Diagnostic, not state: excluded from snapshots so batch- and
        scalar-built pools stay bitwise comparable."""
        return self._settle_scans

    def approx_size_bytes(self) -> int:
        """Approximate resident bytes: per-instance slots, the heap, and
        the shared counter tables (see :mod:`repro.lifecycle.memory`)."""
        return (
            INSTANCE_BYTES
            + RNG_STATE_BYTES
            + 3 * sequence_bytes(self._r)  # items / offsets / timestamps
            + sequence_bytes(len(self._heap)) + 72 * len(self._heap)  # 2-tuples
            + mapping_bytes(len(self._counts))
            + mapping_bytes(len(self._refs))
        )

    def replacement_positions(self) -> list[int]:
        """Per-instance position (1-based) of the currently sampled
        occurrence — the third component of :meth:`finalize`, exposed
        separately so wrappers (the time-window samplers) can map
        positions to wall-clock timestamps right after an ingest step."""
        return list(self._timestamps)

    def update(self, item: int) -> None:
        self._t += 1
        t = self._t
        heap = self._heap
        while heap and heap[0][0] == t:
            __, idx = heapq.heappop(heap)
            self._heap_events += 1
            old = self._items[idx]
            if old is not None:
                self._refs[old] -= 1
                if self._refs[old] == 0:
                    del self._refs[old]
                    del self._counts[old]
            self._items[idx] = item
            if item in self._refs:
                self._refs[item] += 1
            else:
                self._refs[item] = 1
                self._counts.setdefault(item, 0)
            self._offsets[idx] = self._counts[item]
            self._timestamps[idx] = t
            heapq.heappush(heap, (skip_next_replacement(t, self._rng), idx))
        if item in self._counts:
            self._counts[item] += 1

    def extend(self, items) -> None:
        """Delegates to :meth:`update_batch` (bitwise identical to the
        scalar loop for a fixed seed)."""
        self.update_batch(as_item_array(items))

    def update_batch(self, items, digest: ChunkDigest | None = None) -> None:
        """Timeline-precomputed ingestion of a whole chunk of items.

        The heap-event schedule is *data-independent* — an instance's
        next replacement time depends only on the stream position and
        the RNG — so phase 1 (:func:`repro.core.timeline.simulate_events`)
        replays the entire pop order for the chunk up front, drawing the
        skip-ahead jumps in exactly the scalar order.  Phase 2 applies
        the data: one vectorized gather fetches the item at every event
        position, shared-counter settles become binary searches on lazily
        built per-item position indexes (at most one full-chunk scan per
        settled item), and the end-of-chunk flush counts every untouched
        tracked item in one ``bincount``/``searchsorted`` pass — or in
        O(1) dict lookups when the caller supplies a shared
        :class:`~repro.core.timeline.ChunkDigest`.  For a fixed seed the
        post-batch state is *bitwise identical* to the scalar
        ``update()`` loop.

        ``digest`` must report, for every item tracked by this pool or
        present in ``items``, the exact occurrence count of that item in
        ``items`` (the sharded engine's whole-batch digest qualifies
        because a value partition routes all of an item's occurrences to
        one shard).

        ``items`` may also be a :class:`~repro.core.timeline.ShardView`
        — this pool's positions in a larger indexed chunk.  That path
        (same bitwise contract) does O(events) work: every settle and
        flush count is answered by the shared position index, and the
        subchunk is never materialized.
        """
        if isinstance(items, ShardView):
            self._update_batch_view(items)
            return
        arr = np.ascontiguousarray(np.asarray(items, dtype=np.int64))
        if arr.ndim != 1:
            raise ValueError("update_batch expects a 1-d sequence of items")
        length = int(arr.size)
        if length == 0:
            return
        t0 = self._t
        end = t0 + length
        counts = self._counts
        refs = self._refs
        # accrued[i]: chunk offset up to which occurrences of i are
        # already reflected in counts[i]; ranks[i]: occurrences of i at
        # offsets < accrued[i] (a cursor into the position index, so
        # successive settles of one item cost binary searches, not a
        # rescan).
        accrued = dict.fromkeys(counts, 0)
        ranks: dict[int, int] = {}
        positions: dict[int, np.ndarray] = {}
        scans = 0

        # Phase 1 — the data-independent timeline: pop order, event
        # positions, instance ids, and next wakeups, with batched draws.
        ev_times, ev_slots = simulate_events(
            self._heap, end, self._rng, expect=2 * self._r
        )
        nev = len(ev_times)
        if nev:
            self._heap_events += nev
            # Phase 2 — apply the data: which item sits at each event.
            ev_offs_np = np.asarray(ev_times, dtype=np.int64)
            ev_offs_np -= t0 + 1  # chunk offsets of the replacement positions
            ev_items_np = arr[ev_offs_np]
            ev_items = ev_items_np.tolist()
            ev_offs = ev_offs_np.tolist()
            # Every mid-chunk settle bound is an event offset, so position
            # indexes only ever need the chunk prefix up to the last event
            # (event times pop in nondecreasing order).
            off_last = ev_offs[-1] + 1
            prefix = arr[:off_last]
            # Candidate items a settle can touch: everything tracked on
            # entry (all slot occupants are tracked) plus the event items.
            n_tracked = len(counts)
            if n_tracked:
                cand = np.unique(
                    np.concatenate(
                        (
                            np.fromiter(
                                counts.keys(), dtype=np.int64, count=n_tracked
                            ),
                            ev_items_np,
                        )
                    )
                )
            else:
                cand = np.unique(ev_items_np)
            # Fast path: when every value in play fits a 16-bit table, all
            # settle ranks are precomputed in one vectorized pass and the
            # event loop below degenerates to dict arithmetic.
            fast = (
                cand.size <= 0xFFFF
                and int(cand[0]) >= 0
                and int(cand[-1]) <= 0xFFFF
                and int(prefix.min()) >= 0
                and int(prefix.max()) <= 0xFFFF
            )
            slots = self._items
            offsets = self._offsets
            timestamps = self._timestamps
            if fast:
                # One combined position-index pass: group every candidate
                # occurrence in the prefix by candidate id.
                lut = np.full(1 << 16, -1, dtype=np.int32)
                lut[cand] = np.arange(cand.size, dtype=np.int32)
                ci = lut[prefix]
                hit = np.flatnonzero(ci >= 0)
                cid = ci[hit]
                horder = np.argsort(cid.astype(np.uint16), kind="stable")
                gpos = hit[horder]
                gcid = cid[horder].astype(np.int64)
                starts = np.zeros(cand.size + 1, dtype=np.int64)
                np.cumsum(np.bincount(cid, minlength=cand.size), out=starts[1:])
                # Previous occupant of each event's slot (the item a
                # settle targets), recovered without running the loop:
                # within a slot, it is the prior event's item; for a
                # slot's first event, the pre-chunk occupant.
                ev_slots_np = np.asarray(ev_slots, dtype=np.int64)
                sarg = (
                    np.argsort(ev_slots_np.astype(np.uint16), kind="stable")
                    if self._r <= 0xFFFF
                    else np.argsort(ev_slots_np, kind="stable")
                )
                ss = ev_slots_np[sarg]
                sit = ev_items_np[sarg]
                prev_sorted = np.empty(nev, dtype=np.int64)
                prev_sorted[1:] = sit[:-1]
                firsts = np.empty(nev, dtype=bool)
                firsts[0] = True
                np.not_equal(ss[1:], ss[:-1], out=firsts[1:])
                # Empty slots never settle; any in-range stand-in works.
                stand_in = int(cand[0])
                init_vals = np.fromiter(
                    (stand_in if x is None else x for x in slots),
                    dtype=np.int64,
                    count=self._r,
                )
                prev_sorted[firsts] = init_vals[ss[firsts]]
                old_vals = np.empty(nev, dtype=np.int64)
                old_vals[sarg] = prev_sorted
                # Each settle bound is an event offset, so every rank the
                # loop can ask for — outgoing occupant and adopted item,
                # at that event's offset — is one encoded searchsorted:
                # candidate groups are disjoint blocks of the key space.
                qi = lut[np.concatenate((old_vals, ev_items_np))].astype(np.int64)
                stride = np.int64(off_last + 1)
                gkey = gcid * stride
                gkey += gpos
                qkey = qi * stride
                qkey[:nev] += ev_offs_np
                qkey[nev:] += ev_offs_np
                qrank = gkey.searchsorted(qkey)
                qrank -= starts[qi]
                old_rank = qrank[:nev].tolist()
                new_rank = qrank[nev:].tolist()
                scans += 1
                for item in counts:
                    ranks[item] = 0
                for j in range(nev):
                    time = ev_times[j]
                    off = ev_offs[j]
                    item = ev_items[j]
                    idx = ev_slots[j]
                    old = slots[idx]
                    if old is not None:
                        if refs[old] == 1:
                            # Last holder: the shared counter dies with it.
                            del refs[old]
                            del counts[old]
                            del accrued[old]
                            del ranks[old]
                        else:
                            if accrued[old] < off:
                                r1 = old_rank[j]
                                r0 = ranks[old]
                                if r1 > r0:
                                    counts[old] += r1 - r0
                                ranks[old] = r1
                                accrued[old] = off
                            refs[old] -= 1
                    slots[idx] = item
                    if item in refs:
                        refs[item] += 1
                        if accrued[item] < off:
                            r1 = new_rank[j]
                            r0 = ranks[item]
                            if r1 > r0:
                                counts[item] += r1 - r0
                            ranks[item] = r1
                            accrued[item] = off
                    else:
                        refs[item] = 1
                        counts[item] = 0
                        accrued[item] = off  # the occurrence at `off` accrues later
                        ranks[item] = new_rank[j]
                    offsets[idx] = counts[item]
                    timestamps[idx] = time
            else:
                # General path: lazily built per-item position indexes
                # (at most one prefix scan per settled item).
                def settle(item: int, upto: int) -> None:
                    nonlocal scans
                    start = accrued[item]
                    if start >= upto:
                        return
                    pos = positions.get(item)
                    if pos is None:
                        pos = np.flatnonzero(prefix == item)
                        positions[item] = pos
                        scans += 1
                    r0 = ranks.get(item)
                    if r0 is None:
                        r0 = pos.searchsorted(start) if start else 0
                    r1 = pos.searchsorted(upto)
                    if r1 > r0:
                        counts[item] += int(r1 - r0)
                    ranks[item] = r1
                    accrued[item] = upto

                for j in range(nev):
                    time = ev_times[j]
                    off = ev_offs[j]
                    item = ev_items[j]
                    idx = ev_slots[j]
                    old = slots[idx]
                    if old is not None:
                        if refs[old] == 1:
                            # Last holder: the shared counter dies with it, so
                            # the settle (and its occurrence scan) is skipped.
                            del refs[old]
                            del counts[old]
                            del accrued[old]
                            ranks.pop(old, None)
                        else:
                            settle(old, off)
                            refs[old] -= 1
                    slots[idx] = item
                    if item in refs:
                        refs[item] += 1
                        settle(item, off)
                    else:
                        refs[item] = 1
                        counts[item] = 0
                        accrued[item] = off  # the occurrence at `off` accrues later
                        ranks.pop(item, None)
                    offsets[idx] = counts[item]
                    timestamps[idx] = time
        # Final flush: every tracked item still owes its occurrences from
        # accrued (0 for items no event touched — the common case in
        # steady state) to the end of the chunk.  Whole-chunk totals come
        # from the shared digest when one is supplied, else from one
        # bincount pass (or a searchsorted pass when the universe is too
        # large to bincount); partially settled items subtract their
        # position-index rank at `accrued` instead of rescanning.
        whole: list[int] = []
        partial: list[int] = []
        for item, a in accrued.items():
            (whole if a == 0 else partial).append(item)
        if whole or partial:
            if digest is not None:
                count_of = digest.count
            else:
                top = int(arr.max())
                if 0 <= int(arr.min()) and top < max(1 << 20, 4 * length):
                    occ_all = np.bincount(arr, minlength=top + 1)

                    def count_of(item: int) -> int:
                        # Items adopted in earlier chunks may lie outside
                        # this chunk's value range.
                        return int(occ_all[item]) if 0 <= item <= top else 0

                else:
                    tracked = np.array(whole + partial, dtype=np.int64)
                    tracked.sort()
                    slot = tracked.searchsorted(arr)
                    np.minimum(slot, tracked.size - 1, out=slot)
                    occ = np.bincount(
                        slot[tracked[slot] == arr], minlength=tracked.size
                    )
                    table = {
                        item: int(occ[j])
                        for j, item in enumerate(tracked.tolist())
                    }

                    def count_of(item: int) -> int:
                        return table.get(item, 0)

            for item in whole:
                hits = count_of(item)
                if hits:
                    counts[item] += hits
            for item in partial:
                a = accrued[item]
                r0 = ranks.get(item)
                if r0 is None:
                    pos = positions.get(item)
                    if pos is None:
                        pos = np.flatnonzero(prefix == item)
                        positions[item] = pos
                        scans += 1
                    r0 = pos.searchsorted(a) if a else 0
                hits = count_of(item) - int(r0)
                if hits:
                    counts[item] += hits
        self._t = end
        if scans:
            self._settle_scans += scans
            self._m_settle_scans.add(scans)
        if nev:
            self._m_heap_events.add(nev)

    def _update_batch_view(self, view: ShardView) -> None:
        """Ingest this pool's positions of a shared indexed chunk.

        Identical two-phase structure to the array path, but every
        occurrence-count question — the settle ranks at event offsets
        and the end-of-chunk flush — is answered by the chunk-wide
        position index (``view.index.rank_many``), so the per-call cost
        is O(events · log), independent of the subchunk length.

        The trick that makes global answers locally correct: the value
        partition routes *all* occurrences of an owned item into
        ``view.positions``, so a global prefix rank at an owned position
        is the local one plus a constant (the occurrences before the
        view).  Every rank this kernel uses is a *difference* of two
        global ranks at bounds inside the view, so the constant cancels
        — ``ranks[item]`` holds global ranks throughout, seeded at the
        view's start bound for items tracked on entry.

        When the engine already hoisted phase 1 (``plan_batch``) the
        view carries the event schedule and no simulation happens here.
        """
        length = view.size
        if length == 0:
            return
        t0 = self._t
        end = t0 + length
        counts = self._counts
        refs = self._refs
        index = view.index
        base_pos = view.positions
        scans = 0

        if view.events is not None:
            ev_times, ev_slots = view.events
        else:
            ev_times, ev_slots = simulate_events(
                self._heap, end, self._rng, expect=2 * self._r
            )
        nev = len(ev_times)

        # ranks[i]: global prefix rank of i at the offset up to which
        # counts[i] is settled.  The ownership contract (see ShardView)
        # puts every occurrence of a tracked item inside the view, so
        # the settled rank of an untouched item is 0 — no seeding pass.
        ranks: dict[int, int] = dict.fromkeys(counts, 0)
        accrued = dict.fromkeys(counts, 0)

        if nev:
            self._heap_events += nev
            ev_offs_np = np.asarray(ev_times, dtype=np.int64)
            ev_offs_np -= t0 + 1  # view-local offsets of the events
            gpos = base_pos[ev_offs_np]  # global positions of the events
            ev_items_np = view.base[gpos]
            ev_items = ev_items_np.tolist()
            ev_offs = ev_offs_np.tolist()
            slots = self._items
            offsets = self._offsets
            timestamps = self._timestamps
            # Previous occupant of each event's slot, recovered without
            # running the loop (same recurrence as the array fast path).
            ev_slots_np = np.asarray(ev_slots, dtype=np.int64)
            sarg = (
                np.argsort(ev_slots_np.astype(np.uint16), kind="stable")
                if self._r <= 0xFFFF
                else np.argsort(ev_slots_np, kind="stable")
            )
            ss = ev_slots_np[sarg]
            sit = ev_items_np[sarg]
            prev_sorted = np.empty(nev, dtype=np.int64)
            prev_sorted[1:] = sit[:-1]
            firsts = np.empty(nev, dtype=bool)
            firsts[0] = True
            np.not_equal(ss[1:], ss[:-1], out=firsts[1:])
            # Empty slots never settle; -1 ranks as 0 and is unused.
            init_vals = np.fromiter(
                (-1 if x is None else x for x in slots),
                dtype=np.int64,
                count=self._r,
            )
            prev_sorted[firsts] = init_vals[ss[firsts]]
            old_vals = np.empty(nev, dtype=np.int64)
            old_vals[sarg] = prev_sorted
            qrank = index.rank_many(
                np.concatenate((old_vals, ev_items_np)),
                np.concatenate((gpos, gpos)),
            )
            old_rank = qrank[:nev].tolist()
            new_rank = qrank[nev:].tolist()
            scans += 1
            for j in range(nev):
                time = ev_times[j]
                off = ev_offs[j]
                item = ev_items[j]
                idx = ev_slots[j]
                old = slots[idx]
                if old is not None:
                    if refs[old] == 1:
                        # Last holder: the shared counter dies with it.
                        del refs[old]
                        del counts[old]
                        del accrued[old]
                        del ranks[old]
                    else:
                        if accrued[old] < off:
                            r1 = old_rank[j]
                            r0 = ranks[old]
                            if r1 > r0:
                                counts[old] += r1 - r0
                            ranks[old] = r1
                            accrued[old] = off
                        refs[old] -= 1
                slots[idx] = item
                if item in refs:
                    refs[item] += 1
                    if accrued[item] < off:
                        r1 = new_rank[j]
                        r0 = ranks[item]
                        if r1 > r0:
                            counts[item] += r1 - r0
                        ranks[item] = r1
                        accrued[item] = off
                else:
                    refs[item] = 1
                    counts[item] = 0
                    accrued[item] = off  # the occurrence at `off` accrues later
                    ranks[item] = new_rank[j]
                offsets[idx] = counts[item]
                timestamps[idx] = time
        # Flush: owed occurrences of item = whole-batch total (the
        # histogram gather — an owned item's global count is its shard
        # count) minus the settled global rank — uniform for touched and
        # untouched items alike.
        if counts:
            titems = np.fromiter(counts.keys(), dtype=np.int64, count=len(counts))
            tot = index.totals(titems)
            scans += 1
            for item, t in zip(titems.tolist(), tot.tolist()):
                hits = t - ranks[item]
                if hits:
                    counts[item] += hits
        self._t = end
        if scans:
            self._settle_scans += scans
            self._m_settle_scans.add(scans)
        if nev:
            self._m_heap_events.add(nev)

    def tracked_values(self) -> np.ndarray:
        """The items this pool currently tracks (shared-counter keys) —
        the engine's candidate seed for the shared position index."""
        return np.fromiter(
            self._counts.keys(), dtype=np.int64, count=len(self._counts)
        )

    def plan_batch(self, length: int) -> tuple[list[int], list[int]]:
        """Hoisted phase 1: advance the heap and the RNG through the
        event schedule of the next ``length`` items and return
        ``(times, slots)``.

        Engine-internal protocol: a plan MUST be followed by exactly one
        ``update_batch`` of a :class:`~repro.core.timeline.ShardView` of
        the same length carrying these events — the heap and RNG have
        already moved, only the data application is pending.  Chunked
        and whole-batch simulation are bitwise identical (same pop
        order, same draws), so hoisting preserves the scalar-parity
        contract.
        """
        return simulate_events(
            self._heap, self._t + length, self._rng, expect=2 * self._r
        )

    def snapshot(self) -> dict:
        """Checkpoint the full pool state as a dict of arrays + scalars.

        The layout is plain (NumPy arrays, ints, and the RNG state dict)
        so :mod:`repro.engine.state` can serialize it to bytes without
        pickling.  Includes the RNG state: a restored pool continues the
        stream bitwise-identically.
        """
        heap = sorted(self._heap)
        n_tracked = len(self._counts)
        return {
            "kind": "sampler_pool",
            "instances": self._r,
            "position": self._t,
            "heap_events": self._heap_events,
            "items": np.array(
                [-1 if x is None else x for x in self._items], dtype=np.int64
            ),
            # Empty slots, explicitly: the -1 placeholder in "items" is
            # ambiguous once negative item ids flow (they are legal), so
            # restore consults this mask when present.
            "items_live": np.array(
                [0 if x is None else 1 for x in self._items], dtype=np.int64
            ),
            "offsets": np.asarray(self._offsets, dtype=np.int64),
            "timestamps": np.asarray(self._timestamps, dtype=np.int64),
            "heap_times": np.array([h[0] for h in heap], dtype=np.int64),
            "heap_slots": np.array([h[1] for h in heap], dtype=np.int64),
            "count_keys": np.fromiter(self._counts.keys(), dtype=np.int64, count=n_tracked),
            "count_vals": np.fromiter(self._counts.values(), dtype=np.int64, count=n_tracked),
            "ref_keys": np.fromiter(self._refs.keys(), dtype=np.int64, count=len(self._refs)),
            "ref_vals": np.fromiter(self._refs.values(), dtype=np.int64, count=len(self._refs)),
            "rng_state": self._rng.bit_generator.state,
        }

    def restore(self, state: dict) -> None:
        """Overwrite this pool's state from a :meth:`snapshot` dict."""
        if state.get("kind") != "sampler_pool":
            raise ValueError(f"not a sampler_pool snapshot: {state.get('kind')!r}")
        self._r = int(state["instances"])
        self._t = int(state["position"])
        self._heap_events = int(state["heap_events"])
        live = state.get("items_live")
        if live is not None:
            self._items = [
                int(x) if keep else None
                for x, keep in zip(state["items"], live)
            ]
        else:
            # Legacy snapshots (no liveness mask) used -1 as the only
            # empty marker; negative ids were unrepresentable there.
            self._items = [None if x < 0 else int(x) for x in state["items"]]
        self._offsets = [int(x) for x in state["offsets"]]
        self._timestamps = [int(x) for x in state["timestamps"]]
        heap = [
            (int(t), int(i))
            for t, i in zip(state["heap_times"], state["heap_slots"])
        ]
        heapq.heapify(heap)
        self._heap = heap
        self._counts = {
            int(k): int(v) for k, v in zip(state["count_keys"], state["count_vals"])
        }
        self._refs = {
            int(k): int(v) for k, v in zip(state["ref_keys"], state["ref_vals"])
        }
        rng = np.random.default_rng()
        rng.bit_generator.state = state["rng_state"]
        self._rng = rng

    @classmethod
    def from_snapshot(cls, state: dict) -> "SamplerPool":
        pool = cls(int(state["instances"]))
        pool.restore(state)
        return pool

    def merge(self, other: "SamplerPool") -> list[bool]:
        """Absorb a pool that ingested a *disjoint* partition of the
        universe (items of the two substreams must not overlap — a hash
        partition guarantees this; overlapping supports silently break the
        forward-count semantics).

        Merged instance ``k`` keeps this pool's ``k``-th instance with
        probability ``m₁/(m₁+m₂)``, else adopts ``other``'s — i.e. a
        uniform position over the concatenated stream.  Because item
        supports are disjoint, a kept instance's forward count in its own
        substream *is* its forward count in any interleaving, so the
        merged pool is distributed exactly as one pool run over the
        concatenation (the mergeability behind the sharded engine).
        Replacement times are redrawn at the merged length — valid since
        a reservoir's next-replacement law depends only on its position.

        Returns the per-instance pick mask (``True`` where this pool's
        instance was kept) so wrappers carrying side-channel per-instance
        state (e.g. wall-clock adoption times) can merge it consistently.
        """
        if not isinstance(other, SamplerPool):
            raise TypeError(f"cannot merge SamplerPool with {type(other).__name__}")
        if other._r != self._r:
            raise ValueError(
                f"instance counts differ: {self._r} vs {other._r}"
            )
        m1, m2 = self._t, other._t
        if m2 == 0:
            return [True] * self._r
        total = m1 + m2
        mine = self.finalize()
        theirs = other.finalize()
        kept_self: list[bool] = []
        picks: list[tuple[int, int, int]] = []
        for k in range(self._r):
            if m1 > 0 and self._rng.random() < m1 / total:
                kept_self.append(True)
                picks.append(mine[k])
            else:
                kept_self.append(False)
                item, count, ts = theirs[k]
                picks.append((item, count, m1 + ts))
        counts: dict[int, int] = {}
        refs: dict[int, int] = {}
        for item, count, __ in picks:
            refs[item] = refs.get(item, 0) + 1
            counts[item] = max(counts.get(item, 0), count)
        for k, (item, count, ts) in enumerate(picks):
            self._items[k] = item
            self._offsets[k] = counts[item] - count
            self._timestamps[k] = ts
        self._counts = counts
        self._refs = refs
        self._t = total
        # One batched draw for the redrawn schedule — bitwise identical
        # to R scalar skip_next_replacement calls at the merged length.
        jumps = skip_next_replacements([total] * self._r, self._rng)
        self._heap = list(zip(jumps, range(self._r)))
        heapq.heapify(self._heap)
        self._heap_events += other._heap_events
        return kept_self

    def finalize(self) -> list[tuple[int, int, int]]:
        """Per-instance ``(item, count, timestamp)`` triples.

        ``count`` includes the sampled occurrence (≥ 1).  Empty when the
        stream was empty.
        """
        if self._t == 0:
            return []
        out = []
        for idx in range(self._r):
            item = self._items[idx]
            count = self._counts[item] - self._offsets[idx]
            out.append((item, count, self._timestamps[idx]))
        return out


class TrulyPerfectGSampler(StaticLifecycleMixin):
    """Truly perfect G-sampler for insertion-only streams (Theorem 3.1).

    Parameters
    ----------
    measure:
        The measure ``G``; must have globally bounded increments
        (``measure.zeta(None)`` must not raise).  Lp with ``p > 1`` needs
        the Misra-Gries normalizer — use
        :class:`repro.core.lp_sampler.TrulyPerfectLpSampler`.
    instances:
        Explicit pool size ``R``; default sizes the pool from the
        certified ``F_G`` lower bound to reach FAIL probability ≤ δ.
    delta:
        FAIL probability target when ``instances`` is not given.
    m_hint:
        Expected stream length, used only to size the pool for measures
        whose certified acceptance bound depends on ``m`` (concave
        measures); over-estimates are safe.

    Notes
    -----
    Every downstream guarantee is *distributional*: conditioned on the
    sampler returning an index, that index is exactly ``G(f_i)/F_G``
    distributed, with zero additive error — including when ``instances``
    is too small (only the FAIL rate suffers).
    """

    #: The engine may pass a shared whole-chunk ChunkDigest to
    #: :meth:`update_batch` (see :func:`repro.engine.batch.ingest`).
    accepts_digest = True
    #: … or a :class:`~repro.core.timeline.ShardView` of a shared
    #: indexed chunk (forwarded to the pool untouched).
    accepts_index = True

    def __init__(
        self,
        measure: Measure,
        instances: int | None = None,
        delta: float = 0.05,
        m_hint: int | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        self._measure = measure
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        if instances is None:
            instances = self.default_instances(measure, delta, m_hint)
        self._pool = SamplerPool(instances, self._rng)
        self._delta = delta

    @staticmethod
    def default_instances(
        measure: Measure, delta: float = 0.05, m_hint: int | None = None
    ) -> int:
        """``R = ⌈ln(1/δ) / acceptance lower bound⌉`` (Theorem 3.1).

        The acceptance bound is ``F̂_G/(ζ·m)``; for convex measures it is
        independent of ``m``, for concave ones it degrades with ``m`` so a
        conservative default horizon of 10^6 is used when no hint is given.
        """
        zeta = measure.zeta(None)  # raises for measures needing ‖f‖∞
        m = m_hint if m_hint is not None else 10**6
        acceptance = measure.fg_lower_bound(m) / (zeta * m)
        if acceptance <= 0:
            raise ValueError(f"measure {measure.name} certifies no acceptance bound")
        return max(1, math.ceil(math.log(1.0 / delta) / acceptance))

    @property
    def measure(self) -> Measure:
        return self._measure

    @property
    def instances(self) -> int:
        return self._pool.instances

    @property
    def position(self) -> int:
        return self._pool.position

    @property
    def space_words(self) -> int:
        """Machine words of sampler state: 4 per instance + 2 per tracked
        item (the paper counts bits; we count words)."""
        return 4 * self._pool.instances + 2 * self._pool.tracked_items

    def approx_size_bytes(self) -> int:
        return INSTANCE_BYTES + self._pool.approx_size_bytes()

    def update(self, item: int) -> None:
        self._pool.update(item)

    def extend(self, items) -> None:
        self._pool.extend(items)

    def update_batch(self, items, digest: ChunkDigest | None = None) -> None:
        """Vectorized ingestion — see :meth:`SamplerPool.update_batch`."""
        self._pool.update_batch(items, digest=digest)

    def tracked_values(self) -> np.ndarray:
        """See :meth:`SamplerPool.tracked_values`."""
        return self._pool.tracked_values()

    def plan_batch(self, length: int) -> tuple[list[int], list[int]]:
        """See :meth:`SamplerPool.plan_batch` (engine-internal)."""
        return self._pool.plan_batch(length)

    def snapshot(self) -> dict:
        """Checkpoint pool + RNG state (the measure is construction-time
        configuration, not state — rebuild via the engine registry; its
        name is recorded so a mismatched restore fails loudly)."""
        return {
            "kind": "truly_perfect_g",
            "measure": self._measure.name,
            "delta": self._delta,
            "pool": self._pool.snapshot(),
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "truly_perfect_g":
            raise ValueError(f"not a truly_perfect_g snapshot: {state.get('kind')!r}")
        if state.get("measure") != self._measure.name:
            raise ValueError(
                f"snapshot is for measure {state.get('measure')!r}, sampler "
                f"has {self._measure.name!r}"
            )
        self._delta = float(state["delta"])
        self._pool.restore(state["pool"])
        self._rng = self._pool._rng

    def merge(self, other: "TrulyPerfectGSampler") -> None:
        """Absorb a sampler run over a disjoint universe partition.

        Exact under the same contract as :meth:`SamplerPool.merge`; the
        two samplers must use the same measure.
        """
        if not isinstance(other, TrulyPerfectGSampler):
            raise TypeError(
                f"cannot merge TrulyPerfectGSampler with {type(other).__name__}"
            )
        if type(other._measure) is not type(self._measure) or (
            other._measure.name != self._measure.name
        ):
            raise ValueError(
                f"measures differ: {self._measure.name} vs {other._measure.name}"
            )
        self._pool.merge(other._pool)

    def _zeta(self) -> float:
        return self._measure.zeta(None)

    def sample(self) -> SampleResult:
        """Finalize all instances and return the first acceptor.

        Truly perfect: each instance's accepted index is exactly
        target-distributed and independent of *which* instances accept, so
        taking the first acceptor preserves the distribution.
        """
        finals = self._pool.finalize()
        if not finals:
            return SampleResult.empty()
        zeta = self._zeta()
        measure = self._measure
        # One vectorized batch of acceptance coins.
        coins = self._rng.random(len(finals))
        for (item, count, ts), coin in zip(finals, coins):
            weight = measure.increment(count)
            if weight > zeta * (1.0 + 1e-12):
                raise ValueError(
                    f"invalid zeta {zeta}: increment at c={count} is {weight}"
                )
            if coin < weight / zeta:
                return SampleResult.of(item, count=count, timestamp=ts, zeta=zeta)
        return SampleResult.fail(zeta=zeta)

    def sample_many(self, k: int) -> list[SampleResult]:
        """``k`` independent samples from one finalize + one batched coin
        block — bitwise identical to ``k`` back-to-back :meth:`sample`
        calls, amortizing the per-query instance scan."""
        finals = self._pool.finalize()
        if not finals:
            if k < 0:
                raise ValueError(f"need a non-negative draw count, got {k}")
            return [SampleResult.empty() for __ in range(k)]
        zeta = self._zeta()
        measure = self._measure
        weights = [measure.increment(c) for __, c, __ in finals]

        def make(j: int) -> SampleResult:
            item, count, ts = finals[j]
            return SampleResult.of(item, count=count, timestamp=ts, zeta=zeta)

        return rejection_many(
            self._rng,
            k,
            weights,
            zeta,
            make,
            lambda: SampleResult.fail(zeta=zeta),
            describe=lambda j: (
                f"invalid zeta {zeta}: increment at c={finals[j][1]} is "
                f"{weights[j]}"
            ),
        )

    def run(self, stream) -> SampleResult:
        """Convenience: replay a whole stream then sample."""
        self.extend(stream)
        return self.sample()
