"""Weighted reservoir sampling and weighted truly perfect L1 sampling.

The paper cites weighted reservoir sampling over distributed streams
([JSTW19]) as part of the sampling toolbox its framework belongs to.  We
implement the Efraimidis–Spirakis exponential-key scheme: item ``i`` with
weight ``w_i`` receives key ``E_i/w_i`` for an exponential ``E_i``; the
*minimum* key wins with probability exactly ``w_i/Σw`` (the same
min-of-exponentials fact as Lemma B.3 with ``p = 1``).

Two layers:

* :class:`WeightedReservoir` — k smallest keys = a weighted
  without-replacement sample (one pass, O(k) space).
* :class:`WeightedL1Sampler` — single-slot version: a truly perfect
  weighted-L1 sampler for streams whose updates carry positive real
  weights ``(item, w)``, generalizing the classic reservoir = truly
  perfect L1 sampler observation (Section 1) to weighted updates.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.types import SampleResult

__all__ = ["WeightedReservoir", "WeightedL1Sampler"]


class WeightedReservoir:
    """Efraimidis–Spirakis weighted reservoir of size ``k``.

    Each update ``(item, weight)`` draws key ``E/weight``; the ``k``
    smallest keys are retained.  The retained *set* is a weighted
    without-replacement sample; the single smallest key (``k = 1``) is an
    exactly ``w_i/Σw``-distributed with-replacement sample.
    """

    __slots__ = ("_k", "_heap", "_rng", "_total_weight", "_count")

    def __init__(self, k: int, seed: int | np.random.Generator | None = None) -> None:
        if k < 1:
            raise ValueError(f"k must be ≥ 1, got {k}")
        self._k = k
        # Max-heap on negated keys so the worst retained key is at the top.
        self._heap: list[tuple[float, int, float]] = []
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        self._total_weight = 0.0
        self._count = 0

    @property
    def k(self) -> int:
        return self._k

    @property
    def total_weight(self) -> float:
        return self._total_weight

    @property
    def count(self) -> int:
        """Number of updates processed."""
        return self._count

    def update(self, item: int, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError(f"weights must be positive, got {weight}")
        self._count += 1
        self._total_weight += weight
        key = self._rng.exponential(1.0) / weight
        if len(self._heap) < self._k:
            heapq.heappush(self._heap, (-key, item, weight))
        elif key < -self._heap[0][0]:
            heapq.heapreplace(self._heap, (-key, item, weight))

    def extend(self, updates) -> None:
        """Apply ``(item, weight)`` pairs or bare items (weight 1)."""
        for u in updates:
            if isinstance(u, tuple):
                self.update(*u)
            else:
                self.update(int(u))

    def sample(self) -> list[tuple[int, float]]:
        """The retained ``(item, weight)`` pairs, best key first."""
        ordered = sorted(self._heap, key=lambda e: -e[0])
        return [(item, weight) for __, item, weight in ordered]


class WeightedL1Sampler:
    """Truly perfect weighted-L1 sampler: ``P(i) = W_i/Σ_j W_j`` where
    ``W_i`` is the total weight delivered to item ``i``.

    Single-slot special case of the reservoir; never fails on a non-empty
    stream (like classic reservoir sampling, the paper's p = 1 base
    case).
    """

    __slots__ = ("_reservoir",)

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        self._reservoir = WeightedReservoir(1, seed)

    @property
    def total_weight(self) -> float:
        return self._reservoir.total_weight

    def update(self, item: int, weight: float = 1.0) -> None:
        self._reservoir.update(item, weight)

    def extend(self, updates) -> None:
        self._reservoir.extend(updates)

    def sample(self) -> SampleResult:
        held = self._reservoir.sample()
        if not held:
            return SampleResult.empty()
        item, weight = held[0]
        return SampleResult.of(item, update_weight=weight)

    def run(self, updates) -> SampleResult:
        self.extend(updates)
        return self.sample()
