"""Measure functions ``G`` and their sampler-facing bounds.

Framework 1.3 works for any ``G : R → R≥0`` with ``G(0) = 0``, symmetric,
non-decreasing in ``|x|`` and with bounded increments
``G(x) − G(x−1) ≤ ζ``.  Each measure here supplies the two quantities the
framework needs *with certainty* (never from a fallible estimator):

* ``zeta(linf_upper)`` — a valid increment bound, possibly using a
  certified upper bound on ``‖f‖∞`` (Misra-Gries supplies one for Lp,
  Theorem 3.4);
* ``fg_lower_bound(m)`` — a certified lower bound on
  ``F_G = Σ G(f_i)`` given only the stream length, used to size the
  instance pool.  For convex ``G``, ``G(x) ≥ x·G(1)`` gives
  ``F_G ≥ G(1)·m``; for concave ``G``, ``G(x) ≥ x·G(m)/m`` gives
  ``F_G ≥ G(m)``.

The stock measures are the paper's: ``Lp``, the M-estimators L1−L2
(Section 3.2.2), Fair, Huber, Tukey (Section 5), and a generic concave
wrapper (the class studied by [CG19]).
"""

from __future__ import annotations

import abc
import math

__all__ = [
    "Measure",
    "BoundedMeasure",
    "LpMeasure",
    "L1L2Measure",
    "FairMeasure",
    "HuberMeasure",
    "CauchyMeasure",
    "TukeyMeasure",
    "GemanMcClureMeasure",
    "ConcaveMeasure",
]


class Measure(abc.ABC):
    """A symmetric, monotone measure function with ``G(0) = 0``."""

    #: Human-readable name used in reports and benchmark tables.
    name: str = "G"

    @abc.abstractmethod
    def __call__(self, x: float) -> float:
        """Evaluate ``G(x)``."""

    def increment(self, c: int) -> float:
        """``G(c) − G(c−1)`` for integer ``c ≥ 1`` (the rejection weight)."""
        if c < 1:
            raise ValueError(f"increment defined for c ≥ 1, got {c}")
        return self(c) - self(c - 1)

    @abc.abstractmethod
    def zeta(self, linf_upper: float | None = None) -> float:
        """A certified bound ``ζ ≥ G(x) − G(x−1)`` for all ``1 ≤ x ≤
        linf_upper`` (all ``x`` when ``linf_upper`` is None).

        Raises
        ------
        ValueError
            If the measure has unbounded increments and no ``linf_upper``
            was provided (e.g. Lp with ``p > 1``).
        """

    @abc.abstractmethod
    def fg_lower_bound(self, m: int) -> float:
        """A certified lower bound on ``F_G`` for any insertion-only
        stream of length ``m ≥ 1``.  Must hold with probability 1."""

    def needs_linf_bound(self) -> bool:
        """Whether ``zeta`` requires a ``‖f‖∞`` upper bound."""
        try:
            self.zeta(None)
        except ValueError:
            return True
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class LpMeasure(Measure):
    """``G(x) = |x|^p`` — the Lp sampling measure (Section 3.2.1).

    For ``p ≤ 1`` increments are bounded by 1 globally.  For ``p > 1``
    the increment at ``x`` grows like ``p·x^{p−1}``, so ``zeta`` demands a
    certified ``‖f‖∞`` bound ``Z`` (from Misra–Gries) and returns the exact
    worst increment ``Z^p − (Z−1)^p ≤ p·Z^{p−1}``.
    """

    def __init__(self, p: float) -> None:
        if p <= 0:
            raise ValueError(f"p must be positive, got {p}")
        self.p = p
        self.name = f"L{p:g}"

    def __call__(self, x: float) -> float:
        return abs(x) ** self.p

    def zeta(self, linf_upper: float | None = None) -> float:
        if self.p <= 1:
            # x^p − (x−1)^p is non-increasing for p ≤ 1; max at x = 1.
            return 1.0
        if linf_upper is None:
            raise ValueError(
                f"Lp increments are unbounded for p = {self.p} > 1; "
                "provide a certified ‖f‖∞ upper bound"
            )
        z = max(1.0, float(linf_upper))
        return z**self.p - (z - 1.0) ** self.p

    def fg_lower_bound(self, m: int) -> float:
        if m < 1:
            return 0.0
        if self.p >= 1:
            # Convexity: G(x) ≥ x·G(1) = x.
            return float(m)
        # Subadditivity for p < 1: Σ f_i^p ≥ (Σ f_i)^p = m^p.
        return float(m) ** self.p

    def __repr__(self) -> str:
        return f"LpMeasure(p={self.p})"


class L1L2Measure(Measure):
    """The L1−L2 M-estimator ``G(x) = 2(√(1 + x²/2) − 1)``.

    Increments are bounded by ``lim G'(x) = √2`` (the paper uses the looser
    constant 3).  ``G`` is convex, so ``F_G ≥ G(1)·m``.
    """

    name = "L1-L2"

    def __call__(self, x: float) -> float:
        return 2.0 * (math.sqrt(1.0 + x * x / 2.0) - 1.0)

    def zeta(self, linf_upper: float | None = None) -> float:
        return math.sqrt(2.0)

    def fg_lower_bound(self, m: int) -> float:
        return self(1.0) * m


class FairMeasure(Measure):
    """The Fair estimator ``G(x) = τ|x| − τ² log(1 + |x|/τ)``.

    Convex with increments below ``τ``; ``F_G ≥ G(1)·m``.
    """

    def __init__(self, tau: float = 1.0) -> None:
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.tau = tau
        self.name = f"Fair(τ={tau:g})"

    def __call__(self, x: float) -> float:
        a = abs(x)
        return self.tau * a - self.tau**2 * math.log(1.0 + a / self.tau)

    def zeta(self, linf_upper: float | None = None) -> float:
        return self.tau

    def fg_lower_bound(self, m: int) -> float:
        return self(1.0) * m

    def __repr__(self) -> str:
        return f"FairMeasure(tau={self.tau})"


class HuberMeasure(Measure):
    """The Huber estimator: ``x²/(2τ)`` for ``|x| ≤ τ``, else ``|x| − τ/2``.

    Convex with increments below 1 (slope ≤ 1 everywhere for τ ≥ 1; for
    τ < 1 the quadratic branch is only ``|x| < τ < 1`` and integer
    increments still bounded by 1).  ``F_G ≥ G(1)·m``.
    """

    def __init__(self, tau: float = 1.0) -> None:
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.tau = tau
        self.name = f"Huber(τ={tau:g})"

    def __call__(self, x: float) -> float:
        a = abs(x)
        if a <= self.tau:
            return a * a / (2.0 * self.tau)
        return a - self.tau / 2.0

    def zeta(self, linf_upper: float | None = None) -> float:
        # The largest integer increment is G(c) − G(c−1) ≤ max slope on
        # [c−1, c]; slope is min(x/τ, 1) ≤ max(1, 1/(2τ)) ... for τ ≥ 1 it
        # is ≤ 1; for τ < 1 the worst increment is G(1) − G(0) ≤ 1 − τ/2 < 1.
        return 1.0

    def fg_lower_bound(self, m: int) -> float:
        return self(1.0) * m

    def __repr__(self) -> str:
        return f"HuberMeasure(tau={self.tau})"


class BoundedMeasure(Measure):
    """Base class for measures with a finite supremum ``G_max``.

    Bounded measures defeat Framework 1.3's repetition bound — ``F_G``
    can stay O(1) while ``m`` grows, so ``ζm/F_G`` explodes.  The paper's
    route (Section 5) samples them through an F0 sampler instead: draw a
    uniform support element ``i`` (with its exact frequency) and accept
    with probability ``G(f_i)/G_max``.
    :class:`repro.core.f0_sampler.BoundedMeasureSampler` implements this
    for any subclass.
    """

    @property
    def saturation(self) -> float:
        """``G_max = sup_x G(x)`` — the F0-route acceptance normalizer."""
        raise NotImplementedError

    def fg_lower_bound(self, m: int) -> float:
        # One distinct item is always present; certified but weak — the
        # F0 route avoids needing a better bound.
        return self(1.0)


class CauchyMeasure(Measure):
    """The Cauchy (Lorentzian) M-estimator
    ``G(x) = (τ²/2)·log(1 + x²/τ²)``.

    Unbounded but slowly growing: increments are below the maximum slope
    ``τ/2`` (at ``x = τ``), and ``G(x)/x`` is decreasing so
    ``F_G ≥ G(m)`` is certified, exactly as for concave measures.
    """

    def __init__(self, tau: float = 1.0) -> None:
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.tau = tau
        self.name = f"Cauchy(τ={tau:g})"

    def __call__(self, x: float) -> float:
        return self.tau**2 / 2.0 * math.log(1.0 + (x / self.tau) ** 2)

    def zeta(self, linf_upper: float | None = None) -> float:
        # max G' = G'(τ) = τ/2; integer increments are below the max slope.
        return self.tau / 2.0

    def fg_lower_bound(self, m: int) -> float:
        # G(x)/x is unimodal (≈x/2 near 0, ≈τ²·log(x)/x at infinity), so
        # its minimum over [1, m] sits at an endpoint:
        # G(f) ≥ f·min(G(1), G(m)/m), and summing over f_i with Σf_i = m
        # certifies F_G ≥ min(m·G(1), G(m)).
        return min(m * self(1.0), self(m))

    def __repr__(self) -> str:
        return f"CauchyMeasure(tau={self.tau})"


class TukeyMeasure(BoundedMeasure):
    """The Tukey biweight: ``(τ²/6)(1 − (1 − x²/τ²)³)`` for ``|x| ≤ τ``,
    else ``τ²/6``.

    ``G`` is *bounded*, so ``F_G`` can be arbitrarily smaller than ``m``
    and Framework 1.3 alone gives no useful repetition bound — this is why
    the paper samples Tukey through an F0 sampler (Theorems 5.4/5.5):
    accept an F0 sample ``i`` with probability ``G(f_i)/G(τ)``.
    ``zeta``/``fg_lower_bound`` are still provided (they are valid), but
    :class:`repro.core.f0_sampler.TukeySampler` is the intended route.
    """

    def __init__(self, tau: float = 5.0) -> None:
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.tau = tau
        self.name = f"Tukey(τ={tau:g})"

    def __call__(self, x: float) -> float:
        a = abs(x)
        if a >= self.tau:
            return self.tau**2 / 6.0
        return self.tau**2 / 6.0 * (1.0 - (1.0 - (a / self.tau) ** 2) ** 3)

    @property
    def saturation(self) -> float:
        """``G(τ) = τ²/6``, the maximum value (acceptance normalizer)."""
        return self.tau**2 / 6.0

    def zeta(self, linf_upper: float | None = None) -> float:
        # G' ≤ G'(τ/√5)·... bounded by τ (loose but certified): increments
        # ≤ max slope = (τ²/6)·max d/dx(1−(1−x²/τ²)³) = τ·(48/75)·(4/5)^...
        # use the simple certified bound max G' ≤ τ.
        return min(self.tau, self.saturation)

    def fg_lower_bound(self, m: int) -> float:
        # Each of the ≥ 1 distinct items contributes ≥ G(1); certified
        # bound uses just one.
        return self(1.0)

    def __repr__(self) -> str:
        return f"TukeyMeasure(tau={self.tau})"


class GemanMcClureMeasure(BoundedMeasure):
    """The Geman–McClure estimator ``G(x) = (x²/2)/(1 + x²)``.

    Bounded by ``1/2`` — like Tukey, sampled through the F0 route
    (:class:`repro.core.f0_sampler.BoundedMeasureSampler`).
    """

    name = "Geman-McClure"

    def __call__(self, x: float) -> float:
        sq = x * x
        return sq / 2.0 / (1.0 + sq)

    @property
    def saturation(self) -> float:
        return 0.5

    def zeta(self, linf_upper: float | None = None) -> float:
        # max G' = 3√3/16 at x = 1/√3.
        return 3.0 * math.sqrt(3.0) / 16.0


class ConcaveMeasure(Measure):
    """Generic wrapper for a concave, increasing ``G`` with ``G(0) = 0``
    (the class of [CG19], handled by Framework 1.3).

    Concavity gives both bounds for free: increments are maximized at
    ``x = 1`` (``ζ = G(1)``), and ``G(x) ≥ x·G(m)/m`` for ``x ≤ m`` gives
    ``F_G ≥ G(m)``.
    """

    def __init__(self, func, name: str = "concave-G") -> None:
        if func(0) != 0:
            raise ValueError("G(0) must equal 0")
        if func(1) <= 0:
            raise ValueError("G must be increasing (G(1) > 0)")
        self._func = func
        self.name = name

    def __call__(self, x: float) -> float:
        return float(self._func(abs(x)))

    def zeta(self, linf_upper: float | None = None) -> float:
        return self(1.0)

    def fg_lower_bound(self, m: int) -> float:
        return self(m)

    def __repr__(self) -> str:
        return f"ConcaveMeasure({self.name})"
