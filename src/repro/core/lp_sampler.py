"""Truly perfect Lp samplers for insertion-only streams (Theorems 1.4,
3.3, 3.4, 3.5).

For ``p ∈ [1, 2]`` the rejection step needs ``ζ ≥ c^p − (c−1)^p`` for
every frequency ``c``, so a certified upper bound ``Z ≥ ‖f‖∞`` is
required.  Crucially this bound must hold *with probability 1* — any
randomized estimator's failure event would leak additive error into the
output distribution.  A Misra–Gries summary with ``⌈n^{1−1/p}⌉`` counters
gives ``‖f‖∞ ≤ Z ≤ ‖f‖∞ + m/n^{1−1/p}`` deterministically
(Theorem 3.2), which the Theorem 3.4 analysis turns into a per-instance
acceptance probability ≥ ``1/(4n^{1−1/p})``.

For ``p ∈ (0, 1]`` increments are globally ≤ 1 (``ζ = 1``) and the
acceptance probability is ``F_p/m ≥ m^{p−1}``, so ``O(m^{1−p})``
instances suffice (Theorem 3.5) and no normalizer is needed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.g_sampler import SamplerPool
from repro.core.measures import LpMeasure
from repro.core.rejection import rejection_many
from repro.core.timeline import ShardView
from repro.core.types import SampleResult, as_item_array
from repro.lifecycle.memory import INSTANCE_BYTES
from repro.lifecycle.protocol import StaticLifecycleMixin
from repro.sketches.misra_gries import MisraGries

__all__ = ["TrulyPerfectLpSampler", "lp_instance_bound"]


def lp_instance_bound(p: float, n: int, delta: float, m_hint: int | None = None) -> int:
    """The paper's repetition counts.

    ``⌈4·n^{1−1/p}·ln(1/δ)⌉`` for ``p ≥ 1`` (Theorem 3.4) and
    ``⌈m^{1−p}·ln(1/δ)⌉`` for ``p < 1`` (Theorem 3.5, needs ``m_hint``).
    """
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    log_term = math.log(1.0 / delta)
    if p >= 1:
        return max(1, math.ceil(4.0 * n ** (1.0 - 1.0 / p) * log_term))
    if m_hint is None:
        raise ValueError("p < 1 sizing needs m_hint (space scales with m^{1-p})")
    return max(1, math.ceil(m_hint ** (1.0 - p) * log_term))


class TrulyPerfectLpSampler(StaticLifecycleMixin):
    """Truly perfect Lp sampler, ``p ∈ (0, 2]`` (Theorem 3.3).

    Parameters
    ----------
    p:
        Moment order.  ``p = 1`` degenerates to reservoir sampling (every
        instance accepts).
    n:
        Universe size (drives the instance count and Misra-Gries capacity
        for ``p ≥ 1``).
    delta:
        FAIL probability target.
    m_hint:
        Stream length hint; required for ``p < 1``.
    instances:
        Explicit pool-size override.

    Notes
    -----
    ``p > 2`` is accepted too: the same telescoping argument is valid for
    any ``p ≥ 1``; only the instance bound (``n^{1−1/p}``) keeps growing
    toward linear.  The paper states results for ``p ∈ [1,2]``; we follow
    the construction, which never uses ``p ≤ 2`` anywhere except in the
    constant of the acceptance bound.
    """

    #: The engine may pass a shared whole-chunk ChunkDigest to
    #: :meth:`update_batch` (see :func:`repro.engine.batch.ingest`).
    accepts_digest = True
    #: … or a :class:`~repro.core.timeline.ShardView` of a shared
    #: indexed chunk: the pool consumes the view directly; only the
    #: Misra–Gries normalizer pass materializes the subchunk values.
    accepts_index = True

    def __init__(
        self,
        p: float,
        n: int,
        delta: float = 0.05,
        m_hint: int | None = None,
        instances: int | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if p <= 0:
            raise ValueError(f"p must be positive, got {p}")
        if n <= 0:
            raise ValueError(f"universe size must be positive, got {n}")
        self._p = p
        self._n = n
        self._measure = LpMeasure(p)
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        if instances is None:
            instances = lp_instance_bound(p, n, delta, m_hint)
        self._pool = SamplerPool(instances, self._rng)
        if p > 1:
            capacity = max(1, math.ceil(n ** (1.0 - 1.0 / p)))
            self._mg: MisraGries | None = MisraGries(capacity)
        else:
            self._mg = None

    @property
    def p(self) -> float:
        return self._p

    @property
    def instances(self) -> int:
        return self._pool.instances

    @property
    def position(self) -> int:
        return self._pool.position

    @property
    def space_words(self) -> int:
        mg_words = 2 * self._mg.capacity if self._mg is not None else 0
        return 4 * self._pool.instances + 2 * self._pool.tracked_items + mg_words

    def approx_size_bytes(self) -> int:
        mg_bytes = self._mg.approx_size_bytes() if self._mg is not None else 0
        return INSTANCE_BYTES + self._pool.approx_size_bytes() + mg_bytes

    def update(self, item: int) -> None:
        self._pool.update(item)
        if self._mg is not None:
            self._mg.update(item)

    def extend(self, items) -> None:
        """Delegates to :meth:`update_batch` (see its note on the p > 1
        Misra–Gries normalizer)."""
        self.update_batch(as_item_array(items))

    def update_batch(self, items, digest=None) -> None:
        """Vectorized ingestion of a chunk of items.

        The pool path is bitwise identical to the scalar loop for a fixed
        seed; the Misra–Gries path uses weighted per-distinct updates, so
        for ``p > 1`` the certified normalizer ζ may differ slightly from
        the scalar run — the *conditional output distribution* is exactly
        the target either way (any certified ζ is), only the FAIL rate
        can shift marginally.  ``digest`` is the engine's shared
        whole-chunk digest, forwarded to the pool kernel.
        """
        if isinstance(items, ShardView):
            self._pool.update_batch(items)
            if self._mg is not None:
                self._mg.update_batch(items.values())
            return
        arr = np.asarray(items, dtype=np.int64)
        self._pool.update_batch(arr, digest=digest)
        if self._mg is not None:
            self._mg.update_batch(arr)

    def tracked_values(self) -> np.ndarray:
        """See :meth:`repro.core.g_sampler.SamplerPool.tracked_values`."""
        return self._pool.tracked_values()

    def plan_batch(self, length: int) -> tuple[list[int], list[int]]:
        """See :meth:`repro.core.g_sampler.SamplerPool.plan_batch`
        (engine-internal)."""
        return self._pool.plan_batch(length)

    def snapshot(self) -> dict:
        state = {
            "kind": "truly_perfect_lp",
            "p": self._p,
            "n": self._n,
            "pool": self._pool.snapshot(),
        }
        if self._mg is not None:
            state["mg"] = self._mg.snapshot()
        return state

    def restore(self, state: dict) -> None:
        if state.get("kind") != "truly_perfect_lp":
            raise ValueError(f"not a truly_perfect_lp snapshot: {state.get('kind')!r}")
        if float(state["p"]) != self._p:
            raise ValueError(f"snapshot is for p={state['p']}, sampler has p={self._p}")
        self._n = int(state["n"])
        self._pool.restore(state["pool"])
        self._rng = self._pool._rng
        if self._mg is not None:
            self._mg.restore(state["mg"])

    def merge(self, other: "TrulyPerfectLpSampler") -> None:
        """Absorb a sampler fed a *disjoint* partition of the universe.

        Pool merge is exact under the partition contract (see
        :meth:`repro.core.g_sampler.SamplerPool.merge`); the merged
        Misra–Gries summary certifies ``max_shards ‖f‖∞`` globally, so
        the rejection step stays truly perfect.
        """
        if not isinstance(other, TrulyPerfectLpSampler):
            raise TypeError(
                f"cannot merge TrulyPerfectLpSampler with {type(other).__name__}"
            )
        if other._p != self._p:
            raise ValueError(f"p differs: {self._p} vs {other._p}")
        self._pool.merge(other._pool)
        if self._mg is not None:
            self._mg.merge(other._mg)

    def normalizer(self) -> float:
        """The certified ζ for the rejection step at the current time."""
        if self._p <= 1:
            return 1.0
        z = self._mg.linf_upper_bound()
        return self._measure.zeta(max(z, 1.0))

    def sample(self) -> SampleResult:
        """Rejection step across the pool; first acceptor wins."""
        finals = self._pool.finalize()
        if not finals:
            return SampleResult.empty()
        zeta = self.normalizer()
        measure = self._measure
        coins = self._rng.random(len(finals))
        for (item, count, ts), coin in zip(finals, coins):
            weight = measure.increment(count)
            if weight > zeta * (1.0 + 1e-12):
                raise ValueError(
                    "Misra-Gries normalizer violated: increment at "
                    f"c={count} is {weight} > zeta={zeta}"
                )
            if coin < weight / zeta:
                return SampleResult.of(item, count=count, timestamp=ts, zeta=zeta)
        return SampleResult.fail(zeta=zeta)

    def sample_many(self, k: int) -> list[SampleResult]:
        """``k`` independent samples from one finalize + one batched coin
        block — bitwise identical to ``k`` back-to-back :meth:`sample`
        calls (the normalizer is computed once; it is query-invariant
        between ingests)."""
        finals = self._pool.finalize()
        if not finals:
            if k < 0:
                raise ValueError(f"need a non-negative draw count, got {k}")
            return [SampleResult.empty() for __ in range(k)]
        zeta = self.normalizer()
        measure = self._measure
        weights = [measure.increment(c) for __, c, __ in finals]

        def make(j: int) -> SampleResult:
            item, count, ts = finals[j]
            return SampleResult.of(item, count=count, timestamp=ts, zeta=zeta)

        return rejection_many(
            self._rng,
            k,
            weights,
            zeta,
            make,
            lambda: SampleResult.fail(zeta=zeta),
            describe=lambda j: (
                "Misra-Gries normalizer violated: increment at "
                f"c={finals[j][1]} is {weights[j]} > zeta={zeta}"
            ),
        )

    def run(self, stream) -> SampleResult:
        self.extend(stream)
        return self.sample()
