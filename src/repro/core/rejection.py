"""Vectorized rejection sampling over finalized pool instances.

Every pool-backed sampler answers a query the same way: finalize the
``R`` instances, then scan them in order, accepting instance ``j`` with
probability ``w_j/ζ`` and returning the first acceptor.  The scalar
implementations draw one full row of ``R`` coins per query
(``rng.random(R)``), so ``k`` back-to-back queries consume ``k·R``
uniforms in row-major order — exactly the layout of one
``rng.random((k, R))`` block.  :func:`first_acceptors` exploits that:
it draws the whole block at once and resolves every query's
first-acceptor with two vector reductions, making a batched
``sample_many(k)`` *bitwise identical* to ``k`` sequential ``sample()``
calls while amortizing the per-query Python overhead away.

Blocks are capped at ``COIN_BLOCK`` coins so ``k × R`` never
materializes an unbounded matrix; successive blocks continue the same
RNG stream, preserving the bitwise contract.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import SampleResult

__all__ = [
    "COIN_BLOCK",
    "first_acceptors",
    "gather_results",
    "rejection_many",
    "uniform_candidate_many",
    "uniform_candidate_sample",
]

#: Upper bound on coins materialized per block (memory cap, not a
#: semantic knob — blocks continue one RNG stream).
COIN_BLOCK = 1 << 20


def first_acceptors(
    rng: np.random.Generator,
    k: int,
    probs: np.ndarray,
    active: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Resolve ``k`` independent first-acceptor scans in one pass.

    Parameters
    ----------
    rng:
        The sampler's own generator; ``k·len(probs)`` uniforms are
        consumed, matching ``k`` scalar queries exactly.
    probs:
        Per-instance acceptance probability ``w_j/ζ`` (callers validate
        ``w_j ≤ ζ`` first, with their family-specific error message).
    active:
        Optional per-instance liveness mask (window samplers reject
        expired instances without consuming extra coins — the scalar
        loops draw all ``R`` coins up front too).

    Returns
    -------
    ``(first, accepted)`` — for each of the ``k`` draws, the index of
    the first accepting instance and whether any instance accepted
    (``first`` is meaningless where ``accepted`` is False).
    """
    if k < 0:
        raise ValueError(f"need a non-negative draw count, got {k}")
    probs = np.asarray(probs, dtype=np.float64)
    r = int(probs.size)
    first = np.zeros(k, dtype=np.int64)
    accepted = np.zeros(k, dtype=bool)
    if k == 0 or r == 0:
        return first, accepted
    rows = max(1, COIN_BLOCK // r)
    for start in range(0, k, rows):
        stop = min(k, start + rows)
        ok = rng.random((stop - start, r)) < probs
        if active is not None:
            ok &= active
        first[start:stop] = ok.argmax(axis=1)
        accepted[start:stop] = ok.any(axis=1)
    return first, accepted


def rejection_many(rng, k, weights, zeta, make, fail, active=None, describe=None):
    """The shared tail of every pool-backed ``sample_many``: validate
    the certificate, draw the coin block, materialize results.

    ``weights`` are the per-instance increments, validated against
    ``zeta`` over *active* instances only (expired window instances are
    skipped, not validated — exactly like the scalar scans);
    ``describe(j)`` renders the family-specific violation message for
    offending instance ``j``; ``make(j)`` / ``fail()`` build the
    accepted / failed :class:`SampleResult`\\ s for :func:`gather_results`.

    One deliberate strictness difference from the scalar paths: the
    certificate is validated over *every* active instance up front,
    while a scalar scan only checks instances it reaches before the
    first acceptor.  In a healthy sampler the certificate holds
    everywhere and the two never diverge; in an invariant-broken state
    the batch raises deterministically where the lazy scan might mask
    the violation behind an earlier acceptor — fail-fast is the point
    of the check.
    """
    weights = np.asarray(weights, dtype=np.float64)
    over = weights > zeta * (1.0 + 1e-12)
    if active is not None:
        over &= active
    bad = np.nonzero(over)[0]
    if bad.size:
        raise ValueError(describe(int(bad[0])))
    first, accepted = first_acceptors(rng, k, weights / zeta, active)
    return gather_results(first, accepted, make, fail)


def uniform_candidate_sample(rng, regime, candidates, make):
    """One uniform draw over a state-determined candidate list — the
    shared scalar dispatch of every F0 ``sample()`` (see
    :func:`uniform_candidate_many` for the ⊥/FAIL conventions)."""
    if candidates is None:
        return SampleResult.empty()
    if not candidates:
        return SampleResult.fail(regime=regime)
    return make(candidates[int(rng.integers(0, len(candidates)))])


def uniform_candidate_many(rng, k, regime, candidates, make):
    """The shared tail of every F0 ``sample_many``: resolve ``k``
    uniform draws over a state-determined candidate list.

    ``candidates is None`` means ⊥ (empty window/stream); an empty list
    means FAIL.  One sized ``integers`` draw consumes the RNG stream
    exactly as ``k`` scalar draws would, so the batch stays bitwise
    identical to ``k`` sequential ``sample()`` calls.
    """
    if k < 0:
        raise ValueError(f"need a non-negative draw count, got {k}")
    if candidates is None:
        return [SampleResult.empty() for __ in range(k)]
    if not candidates:
        return [SampleResult.fail(regime=regime) for __ in range(k)]
    idxs = rng.integers(0, len(candidates), size=k)
    return [make(candidates[i]) for i in idxs.tolist()]


def gather_results(first, accepted, make, fail):
    """Materialize per-draw :class:`SampleResult`\\ s from a
    :func:`first_acceptors` outcome.

    Results are frozen dataclasses, so each distinct accepting instance
    is built once and *shared* across the draws that picked it (and all
    failing draws share one FAIL result) — the construction cost scales
    with the number of *distinct* outcomes, not with ``k``.  Treat the
    returned results as immutable values: the ``metadata`` dict is the
    one mutable corner of :class:`~repro.core.types.SampleResult`, and
    writing to it through one list entry would show through every entry
    that shares the instance (``k`` scalar calls return independent
    objects).
    """
    cache: dict = {}
    fail_result = None
    out = []
    for j, ok in zip(first.tolist(), accepted.tolist()):
        if ok:
            res = cache.get(j)
            if res is None:
                res = cache[j] = make(j)
        else:
            if fail_result is None:
                fail_result = fail()
            res = fail_result
        out.append(res)
    return out
