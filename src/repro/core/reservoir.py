"""Reservoir sampling primitives (Algorithm 1 and its fast variants).

``TimestampedReservoir`` is the paper's ``Sampler``: a single-slot uniform
reservoir over stream *positions* that also tracks how many occurrences of
the held item arrive from its sampling position onward.  ``skip_length``
implements the Li-style jump ([Li94], cited for the O(k log n) total-time
optimization): instead of flipping a coin per update, draw the next
replacement time directly from its exact distribution — the key to the
O(1) amortized update time of Theorem 3.1.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "TimestampedReservoir",
    "KReservoir",
    "skip_next_replacement",
    "skip_next_replacements",
]


def skip_next_replacement(t: int, rng: np.random.Generator) -> int:
    """The next stream position (> t) at which a single-slot reservoir
    replaces its sample.

    The replacement indicator at position ``r`` fires with probability
    ``1/r`` independently, so ``P(T > u | T > t) = t/u``; inverting the
    CDF gives ``T = ⌈t/U⌉`` for ``U ~ Uniform(0,1)``.  For ``t = 0`` the
    first position always replaces.
    """
    if t <= 0:
        return 1
    u = rng.random()
    if u <= 0.0:  # pragma: no cover - measure-zero guard
        return t + 1
    return max(t + 1, math.ceil(t / u))


def skip_next_replacements(times, rng: np.random.Generator) -> list[int]:
    """Chunk-at-a-time :func:`skip_next_replacement`: one batched uniform
    draw for a whole sequence of positions.

    Bitwise identical to calling the scalar helper once per position in
    order — positions ≤ 0 consume no draw (they replace at 1
    unconditionally), and ``rng.random(n)`` hands out exactly the floats
    ``n`` scalar ``rng.random()`` calls would.  The ceiling stays in
    Python-int arithmetic so even astronomically small uniforms produce
    the same (arbitrary-precision) jump targets as the scalar path.
    """
    ts = [int(t) for t in times]
    drawing = sum(1 for t in ts if t > 0)
    uniforms = iter(rng.random(drawing).tolist()) if drawing else iter(())
    out: list[int] = []
    for t in ts:
        if t <= 0:
            out.append(1)
            continue
        u = next(uniforms)
        if u <= 0.0:  # pragma: no cover - measure-zero guard
            out.append(t + 1)
            continue
        nxt = math.ceil(t / u)
        out.append(nxt if nxt > t else t + 1)
    return out


class TimestampedReservoir:
    """Algorithm 1 (``Sampler``): uniform position sample + forward counter.

    After processing a stream of length ``m``:

    * ``item`` is ``u_J`` for ``J`` uniform on ``[1, m]``;
    * ``count`` is the number of occurrences of ``item`` at positions
      ``≥ J`` (inclusive of the sampled occurrence, so ``count ≥ 1``);
      if ``item`` is the j-th of ``f_i`` occurrences, ``count = f_i − j + 1``.

    Uses the skip-ahead jump, so a full pass costs ``O(m)`` with O(1) work
    per update plus ``O(log m)`` replacements in expectation.
    """

    __slots__ = ("item", "count", "timestamp", "_t", "_next", "_rng")

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        self.item: int | None = None
        self.count = 0
        self.timestamp = 0  # position at which the current item was sampled
        self._t = 0
        self._next = 1
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )

    @property
    def position(self) -> int:
        """Number of updates processed."""
        return self._t

    def update(self, item: int) -> None:
        self._t += 1
        if self._t == self._next:
            self.item = item
            self.count = 0
            self.timestamp = self._t
            self._next = skip_next_replacement(self._t, self._rng)
        if item == self.item:
            self.count += 1

    def extend(self, items) -> None:
        for item in items:
            self.update(item)


class KReservoir:
    """Classic k-slot uniform reservoir (Vitter's Algorithm R).

    Used by the F0 samplers and harness utilities; per-update cost O(k)
    worst case but O(k log(m/k)) total replacements in expectation.
    """

    __slots__ = ("_k", "_slots", "_t", "_rng")

    def __init__(self, k: int, seed: int | np.random.Generator | None = None) -> None:
        if k < 1:
            raise ValueError(f"k must be ≥ 1, got {k}")
        self._k = k
        self._slots: list[int] = []
        self._t = 0
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )

    @property
    def k(self) -> int:
        return self._k

    @property
    def position(self) -> int:
        return self._t

    def update(self, item: int) -> None:
        self._t += 1
        if len(self._slots) < self._k:
            self._slots.append(item)
            return
        j = self._rng.integers(0, self._t)
        if j < self._k:
            self._slots[j] = item

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def sample(self) -> list[int]:
        """The current reservoir contents (uniform k-subset of positions)."""
        return list(self._slots)
