"""Multi-pass truly perfect sampling on strict turnstile streams
(Theorem 1.5, Appendix D).

Theorem 1.2 forbids one-pass truly perfect turnstile sampling in sublinear
space; Appendix D shows the *strict* turnstile model (all intermediate
frequency vectors non-negative) escapes the bound when multiple passes are
allowed:

* ``MultipassL1Sampler`` — partition the universe into ``n^γ`` chunks,
  keep per-chunk sums (valid because final frequencies are non-negative),
  sample a chunk proportional to its mass, recurse: after ``O(1/γ)``
  passes a single coordinate is isolated with probability exactly
  ``f_i/F_1``.
* ``MultipassLinfEstimator`` — the deterministic chunked search yielding
  ``‖f‖∞ ≤ Z ≤ ‖f‖∞ + F_1/n^{1−1/p}``, the multi-pass stand-in for
  Misra–Gries.
* ``MultipassLpSampler`` — Theorem 1.5: frequency-proportional samples
  (shared passes for all ``R`` cursors) + a uniform position within the
  sampled item's occurrences + the usual rejection step.
* ``StrictTurnstileF0Sampler`` — Theorem D.3: deterministic k-sparse
  recovery replaces the "first √n distinct items" structure; a random
  2√n-subset with exact counters covers the dense regime.  One pass.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.types import SampleResult
from repro.sketches.sparse_recovery import SparseRecovery

__all__ = [
    "MultipassL1Sampler",
    "MultipassLinfEstimator",
    "MultipassLpSampler",
    "StrictTurnstileF0Sampler",
]


def _iter_updates(stream):
    """Yield ``(item, delta)`` pairs from a Stream or TurnstileStream."""
    for u in stream:
        if isinstance(u, (int, np.integer)):
            yield int(u), 1
        else:
            yield u.item, u.delta


def _chunk_sums(stream, intervals: list[tuple[int, int]], chunks: int) -> list[np.ndarray]:
    """One pass: per-interval chunk sums of final frequencies.

    Each interval ``[lo, hi)`` is split into ``chunks`` equal pieces; the
    return value holds one sum vector per interval.  Space is
    ``O(len(intervals) · chunks)`` — the pass/space trade-off knob.
    """
    sums = [np.zeros(chunks, dtype=np.int64) for _ in intervals]
    bounds = [(lo, hi, max(1, math.ceil((hi - lo) / chunks))) for lo, hi in intervals]
    for item, delta in _iter_updates(stream):
        for idx, (lo, hi, width) in enumerate(bounds):
            if lo <= item < hi:
                sums[idx][(item - lo) // width] += delta
    return sums


class MultipassL1Sampler:
    """Truly perfect L1 sampler over a replayable strict turnstile stream.

    Parameters
    ----------
    stream:
        Re-iterable stream (``TurnstileStream`` or insertion-only
        ``Stream``); one pass per refinement level.
    n:
        Universe size.
    gamma:
        Pass/space trade-off: ``⌈n^γ⌉`` chunks per pass, ``O(1/γ)``
        passes.
    """

    def __init__(
        self,
        stream,
        n: int,
        gamma: float = 0.5,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self._stream = stream
        self._n = n
        self._chunks = max(2, math.ceil(n**gamma))
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        self.passes_used = 0

    @property
    def chunks(self) -> int:
        return self._chunks

    def sample(self) -> SampleResult:
        result = self._descend(1)
        return result

    def _descend(self, count: int) -> SampleResult:
        items = self._parallel_samples(1)
        if items is None:
            return SampleResult.empty()
        return SampleResult.of(items[0], passes=self.passes_used)

    def _parallel_samples(self, count: int) -> list[int] | None:
        """Draw ``count`` i.i.d. frequency-proportional items, sharing
        passes across all cursors.  Returns None for the zero vector."""
        cursors: list[tuple[int, int]] = [(0, self._n)] * count
        while any(hi - lo > 1 for lo, hi in cursors):
            # Deduplicate intervals so shared prefixes cost one sum vector.
            unique = sorted(set(c for c in cursors if c[1] - c[0] > 1))
            sums = _chunk_sums(self._stream, unique, self._chunks)
            self.passes_used += 1
            table = dict(zip(unique, sums))
            new_cursors = []
            for lo, hi in cursors:
                if hi - lo <= 1:
                    new_cursors.append((lo, hi))
                    continue
                s = table[(lo, hi)]
                total = int(s.sum())
                if total == 0:
                    return None
                probs = s / total
                pick = int(self._rng.choice(self._chunks, p=probs))
                width = max(1, math.ceil((hi - lo) / self._chunks))
                new_lo = lo + pick * width
                new_hi = min(new_lo + width, hi)
                new_cursors.append((new_lo, new_hi))
            cursors = new_cursors
        return [lo for lo, __ in cursors]


class MultipassLinfEstimator:
    """Deterministic multi-pass ``‖f‖∞`` upper bound (Appendix D).

    Guarantees ``‖f‖∞ ≤ Z ≤ ‖f‖∞ + θ`` with ``θ = F_1/n^{1−1/p}``,
    using at most ``n^{1−1/p}·n^γ`` chunk counters per pass.
    """

    def __init__(self, stream, n: int, p: float, gamma: float = 0.5) -> None:
        if p < 1:
            raise ValueError("the normalizer is only needed for p ≥ 1")
        self._stream = stream
        self._n = n
        self._p = p
        self._chunks = max(2, math.ceil(n**gamma))
        self.passes_used = 0

    def estimate(self) -> float:
        f1 = sum(delta for __, delta in _iter_updates(self._stream))
        self.passes_used += 1
        if f1 <= 0:
            return 1.0
        theta = f1 / self._n ** (1.0 - 1.0 / self._p) if self._p > 1 else 1.0
        if self._p == 1:
            return 1.0  # zeta is 1 for p = 1; no normalizer needed
        candidates: list[tuple[int, int]] = [(0, self._n)]
        best_singleton = 0
        while candidates:
            sums = _chunk_sums(self._stream, candidates, self._chunks)
            self.passes_used += 1
            next_candidates: list[tuple[int, int]] = []
            for (lo, hi), s in zip(candidates, sums):
                width = max(1, math.ceil((hi - lo) / self._chunks))
                for j in range(self._chunks):
                    c_lo = lo + j * width
                    c_hi = min(c_lo + width, hi)
                    if c_lo >= c_hi:
                        continue
                    total = int(s[j])
                    if total < theta:
                        continue  # every coordinate inside is < theta
                    if c_hi - c_lo == 1:
                        best_singleton = max(best_singleton, total)
                    else:
                        next_candidates.append((c_lo, c_hi))
            candidates = next_candidates
        return float(max(best_singleton, theta))


class MultipassLpSampler:
    """Theorem 1.5: truly perfect Lp sampling on strict turnstile streams
    with ``O(1/γ)`` passes.

    The insertion-only sampler needs (a) a frequency-proportional sample
    ``s``, (b) a uniform position among the occurrences of ``s`` — i.e.
    ``c ~ Uniform{1..f_s}`` — and (c) the certified normalizer ``Z``.
    All three are obtained in ``O(1/γ)`` passes; the rejection step is
    then identical to Theorem 3.4 and the output distribution is exactly
    ``f_i^p/F_p``.
    """

    def __init__(
        self,
        stream,
        n: int,
        p: float,
        gamma: float = 0.5,
        delta: float = 0.1,
        instances: int | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if p < 1:
            raise ValueError("MultipassLpSampler supports p ≥ 1")
        self._stream = stream
        self._n = n
        self._p = p
        self._gamma = gamma
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        if instances is None:
            instances = max(
                1, math.ceil(4.0 * n ** (1.0 - 1.0 / p) * math.log(1.0 / delta))
            )
        self._instances = instances
        self.passes_used = 0

    @property
    def instances(self) -> int:
        return self._instances

    def sample(self) -> SampleResult:
        # Phase A: deterministic normalizer.
        linf = MultipassLinfEstimator(self._stream, self._n, self._p, self._gamma)
        z = linf.estimate()
        self.passes_used += linf.passes_used
        # Phase B: R frequency-proportional samples with shared passes.
        l1 = MultipassL1Sampler(self._stream, self._n, self._gamma, self._rng)
        samples = l1._parallel_samples(self._instances)
        self.passes_used += l1.passes_used
        if samples is None:
            return SampleResult.empty()
        # Phase C: exact frequencies of the sampled ids (one pass).
        wanted = set(samples)
        freqs = {i: 0 for i in wanted}
        for item, delta in _iter_updates(self._stream):
            if item in freqs:
                freqs[item] += delta
        self.passes_used += 1
        # Rejection step (Theorem 3.4), with c uniform over positions.
        z = max(z, 1.0)
        zeta = z**self._p - (z - 1.0) ** self._p if self._p > 1 else 1.0
        for s in samples:
            f_s = freqs[s]
            if f_s <= 0:  # pragma: no cover - impossible under strictness
                continue
            c = int(self._rng.integers(1, f_s + 1))
            weight = c**self._p - (c - 1) ** self._p
            if weight > zeta * (1.0 + 1e-12):
                raise ValueError("normalizer violated in multipass sampler")
            if self._rng.random() < weight / zeta:
                return SampleResult.of(s, count=c, passes=self.passes_used, zeta=zeta)
        return SampleResult.fail(passes=self.passes_used)


class StrictTurnstileF0Sampler:
    """Theorem D.3: one-pass truly perfect F0 sampling on strict
    turnstile streams in ``O(√n)`` space.

    Deterministic ``2√n``-sparse recovery (power-sum moments +
    Berlekamp–Massey) replaces Algorithm 5's "first √n distinct" set ``T``
    — deletions make "first distinct" meaningless, but recovery of the
    *final* vector is oblivious to ordering.  The dense regime keeps the
    random subset ``S`` with exact member counters.
    """

    def __init__(
        self,
        n: int,
        delta: float = 0.05,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self._n = n
        k = min(n, max(1, 2 * math.isqrt(n) + 2))
        self._recovery = SparseRecovery(n, k)
        copies = max(1, math.ceil(math.log(1.0 / delta) / 2.0))
        s_size = min(2 * math.isqrt(n) + 2, n)
        self._s_sets = [
            set(int(x) for x in rng.choice(n, size=s_size, replace=False))
            for _ in range(copies)
        ]
        self._s_counts: list[dict[int, int]] = [
            {s: 0 for s in s_set} for s_set in self._s_sets
        ]
        self._rng = rng

    @property
    def sparsity_budget(self) -> int:
        return self._recovery.k

    def update(self, item: int, delta: int = 1) -> None:
        self._recovery.update(item, delta)
        for counts in self._s_counts:
            if item in counts:
                counts[item] += delta

    def extend(self, updates) -> None:
        for u in updates:
            if isinstance(u, (int, np.integer)):
                self.update(int(u), 1)
            elif isinstance(u, tuple):
                self.update(*u)
            else:
                self.update(u.item, u.delta)

    def sample(self) -> SampleResult:
        rec = self._recovery.recover()
        if rec.success:
            if not rec.support:
                return SampleResult.empty()
            idx = int(self._rng.integers(0, len(rec.support)))
            return SampleResult.of(
                rec.support[idx], frequency=rec.frequencies[idx], regime="sparse"
            )
        for counts in self._s_counts:
            alive = [s for s, c in counts.items() if c != 0]
            if alive:
                item = alive[int(self._rng.integers(0, len(alive)))]
                return SampleResult.of(item, frequency=counts[item], regime="S")
        return SampleResult.fail(regime="S")

    def run(self, stream) -> SampleResult:
        self.extend(stream)
        return self.sample()
