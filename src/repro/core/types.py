"""Shared result types for all samplers.

Definition 1.1 allows three outcomes: an index ``i ∈ [n]``, the symbol
``⊥`` (the frequency vector is zero), or ``FAIL`` (the sampler declines to
answer; the distribution guarantee is conditioned on not failing).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any

__all__ = ["SampleOutcome", "SampleResult"]


class SampleOutcome(enum.Enum):
    """The three possible outcomes of Definition 1.1."""

    ITEM = "item"
    EMPTY = "bot"  # the paper's ⊥ — the frequency vector is zero
    FAIL = "fail"


@dataclasses.dataclass(frozen=True, slots=True)
class SampleResult:
    """Outcome of one sampling attempt.

    Attributes
    ----------
    outcome:
        ITEM, EMPTY (⊥), or FAIL.
    item:
        The sampled index when ``outcome is ITEM`` else ``None``.
    metadata:
        Sampler-specific extras — e.g. the F0 samplers report the exact
        frequency ``f_i`` of the returned index (Theorem 5.2), and the
        framework samplers report the post-sample counter.
    """

    outcome: SampleOutcome
    item: int | None = None
    metadata: dict[str, Any] = dataclasses.field(default_factory=dict)

    @staticmethod
    def of(item: int, **metadata: Any) -> "SampleResult":
        return SampleResult(SampleOutcome.ITEM, item, metadata)

    @staticmethod
    def empty() -> "SampleResult":
        return SampleResult(SampleOutcome.EMPTY)

    @staticmethod
    def fail(**metadata: Any) -> "SampleResult":
        return SampleResult(SampleOutcome.FAIL, None, metadata)

    @property
    def is_item(self) -> bool:
        return self.outcome is SampleOutcome.ITEM

    @property
    def is_empty(self) -> bool:
        return self.outcome is SampleOutcome.EMPTY

    @property
    def is_fail(self) -> bool:
        return self.outcome is SampleOutcome.FAIL
