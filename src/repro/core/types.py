"""Shared result types for all samplers.

Definition 1.1 allows three outcomes: an index ``i ∈ [n]``, the symbol
``⊥`` (the frequency vector is zero), or ``FAIL`` (the sampler declines to
answer; the distribution guarantee is conditioned on not failing).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any

import numpy as np

__all__ = ["SampleOutcome", "SampleResult", "as_item_array", "as_timed_arrays"]


def as_item_array(items) -> np.ndarray:
    """Normalize a ``Stream`` / array / iterable of items to a 1-d int64
    array with at most one conversion (no copy when the input already is
    one).  The shared front door of every batched ingestion path."""
    inner = getattr(items, "items", None)
    if isinstance(inner, np.ndarray):  # repro.streams.Stream
        items = inner
    elif not isinstance(items, np.ndarray) and not hasattr(items, "__len__"):
        items = list(items)  # one-shot iterable (generator)
    arr = np.asarray(items, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError("expected a 1-d sequence of items")
    return arr


def as_timed_arrays(pairs) -> tuple[np.ndarray, np.ndarray]:
    """Unzip an iterable of ``(item, timestamp)`` pairs into aligned
    int64/float64 arrays — the shared front door of the timestamped
    ``extend`` → ``update_batch`` delegations.  A
    ``repro.streams.TimestampedStream`` short-circuits to its existing
    arrays (no per-pair Python loop); empty input yields two empty
    arrays."""
    inner_items = getattr(pairs, "items", None)
    inner_ts = getattr(pairs, "timestamps", None)
    if isinstance(inner_items, np.ndarray) and isinstance(inner_ts, np.ndarray):
        return (
            np.asarray(inner_items, dtype=np.int64),
            np.asarray(inner_ts, dtype=np.float64),
        )
    pairs = list(pairs)
    if not pairs:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    items, timestamps = zip(*pairs)
    return (
        np.asarray(items, dtype=np.int64),
        np.asarray(timestamps, dtype=np.float64),
    )


class SampleOutcome(enum.Enum):
    """The three possible outcomes of Definition 1.1."""

    ITEM = "item"
    EMPTY = "bot"  # the paper's ⊥ — the frequency vector is zero
    FAIL = "fail"


@dataclasses.dataclass(frozen=True, slots=True)
class SampleResult:
    """Outcome of one sampling attempt.

    Attributes
    ----------
    outcome:
        ITEM, EMPTY (⊥), or FAIL.
    item:
        The sampled index when ``outcome is ITEM`` else ``None``.
    metadata:
        Sampler-specific extras — e.g. the F0 samplers report the exact
        frequency ``f_i`` of the returned index (Theorem 5.2), and the
        framework samplers report the post-sample counter.
    """

    outcome: SampleOutcome
    item: int | None = None
    metadata: dict[str, Any] = dataclasses.field(default_factory=dict)

    @staticmethod
    def of(item: int, **metadata: Any) -> "SampleResult":
        return SampleResult(SampleOutcome.ITEM, item, metadata)

    @staticmethod
    def empty() -> "SampleResult":
        return SampleResult(SampleOutcome.EMPTY)

    @staticmethod
    def fail(**metadata: Any) -> "SampleResult":
        return SampleResult(SampleOutcome.FAIL, None, metadata)

    @property
    def is_item(self) -> bool:
        return self.outcome is SampleOutcome.ITEM

    @property
    def is_empty(self) -> bool:
        return self.outcome is SampleOutcome.EMPTY

    @property
    def is_fail(self) -> bool:
        return self.outcome is SampleOutcome.FAIL
