"""Timeline-precomputed ingest kernel primitives.

The pool kernel's heap events are *data-independent*: the next
replacement time of an instance depends only on the current stream
position and the RNG (``skip_next_replacement``), never on the items.
That splits batched ingestion into two phases:

1. :func:`simulate_events` replays the whole heap-event schedule for a
   chunk up front — pop order, event positions, instance ids, next
   wakeups — drawing the skip-ahead jumps through :class:`BlockUniforms`
   so the RNG stream is consumed *bitwise identically* to the scalar
   ``update()`` loop;
2. the data-dependent remainder (which item sits at each event position,
   shared-counter settles, the end-of-chunk flush) collapses to
   vectorized occurrence counting, served by :class:`ChunkDigest` and
   per-item position indexes.

``ChunkDigest`` is built once per engine batch and shared by every
shard: a hash partition routes all occurrences of an item to one shard,
so an item's whole-batch occurrence count *is* its subchunk count.  For
small universes the digest is a dense ``bincount``; for large ones it
keeps a sorted copy of the chunk with a Misra–Gries aux whose surviving
candidates are exactified in one vectorized pass — every heavy item
(``f > n/(capacity+1)``) is answered from an O(1) dict instead of
re-scanning the chunk per tracked item.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.sketches.misra_gries import MisraGries

__all__ = [
    "BlockUniforms",
    "ChunkDigest",
    "PositionIndex",
    "ShardView",
    "simulate_events",
]

#: Dense-count regime bound: same rule the pool's legacy flush used.
_DENSE_LIMIT_FLOOR = 1 << 20


class BlockUniforms:
    """Uniform draws taken in blocks, bitwise equal to scalar consumption.

    ``rng.random(n)`` produces exactly the same floats, and leaves the
    generator in exactly the same state, as ``n`` scalar ``rng.random()``
    calls (one 64-bit draw each, verified by the parity tests).  So a
    consumer that does not know how many draws it needs can over-draw in
    blocks and :meth:`close` by rewinding to the saved state and
    re-drawing exactly the number it took — the stream position ends up
    where scalar consumption would have left it.
    """

    __slots__ = ("_rng", "_saved", "_buf", "_pos", "_taken", "_block")

    def __init__(self, rng: np.random.Generator, block: int = 64) -> None:
        self._rng = rng
        self._saved = None
        self._buf: list[float] = []
        self._pos = 0
        self._taken = 0
        self._block = max(1, int(block))

    @property
    def taken(self) -> int:
        """Uniforms handed out so far."""
        return self._taken

    def next(self) -> float:
        if self._pos >= len(self._buf):
            if self._saved is None:
                self._saved = self._rng.bit_generator.state
            self._buf = self._rng.random(self._block).tolist()
            self._pos = 0
            self._block = min(self._block * 2, 1 << 16)
        u = self._buf[self._pos]
        self._pos += 1
        self._taken += 1
        return u

    def close(self) -> None:
        """Leave the RNG exactly where ``taken`` scalar draws would."""
        if self._saved is not None and self._pos < len(self._buf):
            self._rng.bit_generator.state = self._saved
            if self._taken:
                self._rng.random(self._taken)
        self._saved = None
        self._buf = []
        self._pos = 0


def simulate_events(
    heap: list[tuple[int, int]],
    end: int,
    rng: np.random.Generator,
    expect: int = 64,
) -> tuple[list[int], list[int]]:
    """Phase 1: replay every heap event scheduled at positions ≤ ``end``.

    Pops ``(time, idx)`` entries in exactly the scalar order, draws each
    popped instance's next wakeup (``max(t+1, ceil(t/u))``) from ``rng``
    through :class:`BlockUniforms`, and pushes it back.  On return the
    heap holds the post-chunk schedule and the RNG stream has advanced by
    exactly one draw per event — bitwise identical to the scalar loop.

    Returns ``(times, slots)``: the absolute event positions and the
    instance ids, in pop order.  Pure timeline — no item data involved.
    """
    if not heap or heap[0][0] > end:
        return [], []
    times: list[int] = []
    slots: list[int] = []
    # Inlined BlockUniforms (same save / block-draw / rewind protocol):
    # the draw is the per-event hot path, so the buffer is managed with
    # local variables instead of method calls.
    saved = None
    buf: list[float] = []
    pos = 0
    taken = 0
    block = max(1, int(expect))
    pop, push = heapq.heappop, heapq.heappush
    ceil = math.ceil
    while heap and heap[0][0] <= end:
        time, idx = pop(heap)
        times.append(time)
        slots.append(idx)
        if pos >= len(buf):
            if saved is None:
                saved = rng.bit_generator.state
            buf = rng.random(block).tolist()
            pos = 0
            block = min(block * 2, 1 << 16)
        u = buf[pos]
        pos += 1
        taken += 1
        if u <= 0.0:  # pragma: no cover - measure-zero guard
            nxt = time + 1
        else:
            nxt = ceil(time / u)
            if nxt <= time:
                nxt = time + 1
        push(heap, (nxt, idx))
    if saved is not None and pos < len(buf):
        # Rewind: leave the RNG exactly where `taken` scalar draws would.
        rng.bit_generator.state = saved
        rng.random(taken)
    return times, slots


class ChunkDigest:
    """Exact whole-chunk occurrence counts, computed once and shared.

    Two regimes, chosen like the pool flush's legacy rule:

    * **dense** — non-negative items with a boundable range: one
      ``np.bincount`` holds the exact count of every value;
    * **sorted + Misra–Gries** — a sorted copy of the chunk answers any
      ``count`` query in O(log n), and a Misra–Gries pass (capacity
      ``heavy_capacity``) nominates candidates whose counts are then
      exactified in one vectorized pass: by the MG guarantee every item
      with ``f > n/(capacity+1)`` survives, so all heavy items are
      answered from the O(1) ``heavy`` dict.

    The digest is valid only for the exact array it was built from (or,
    under a value partition, for any subchunk that owns all occurrences
    of the queried item — the sharded engine's case).
    """

    __slots__ = ("size", "heavy", "_occ", "_top", "_sorted")

    def __init__(self, items: np.ndarray, heavy_capacity: int = 64) -> None:
        arr = np.asarray(items, dtype=np.int64)
        self.size = int(arr.size)
        self.heavy: dict[int, int] = {}
        self._occ = None
        self._top = -1
        self._sorted = None
        if self.size == 0:
            return
        top = int(arr.max())
        if int(arr.min()) >= 0 and top < max(_DENSE_LIMIT_FLOOR, 4 * self.size):
            self._occ = np.bincount(arr, minlength=top + 1)
            self._top = top
            return
        svals = np.sort(arr, kind="stable")
        self._sorted = svals
        # Distinct values + exact counts fall out of the sorted copy.
        cuts = np.flatnonzero(svals[1:] != svals[:-1])
        bounds = np.concatenate(([0], cuts + 1, [self.size]))
        uniq = svals[bounds[:-1]]
        cnts = np.diff(bounds)
        mg = MisraGries(heavy_capacity)
        for item, count in zip(uniq.tolist(), cnts.tolist()):
            mg.update(item, int(count))
        # Exactify the survivors: MG estimates undercount, but every
        # survivor's true count is one searchsorted range away.
        for item in mg.items():
            lo = int(np.searchsorted(svals, item, side="left"))
            hi = int(np.searchsorted(svals, item, side="right"))
            self.heavy[item] = hi - lo

    @property
    def dense(self) -> bool:
        return self._occ is not None

    def count(self, item: int) -> int:
        """Exact occurrences of ``item`` in the digested chunk."""
        occ = self._occ
        if occ is not None:
            return int(occ[item]) if 0 <= item <= self._top else 0
        hit = self.heavy.get(item)
        if hit is not None:
            return hit
        svals = self._sorted
        if svals is None:
            return 0
        lo = int(np.searchsorted(svals, item, side="left"))
        hi = int(np.searchsorted(svals, item, side="right"))
        return hi - lo


class PositionIndex:
    """Candidate-limited position index over one engine batch.

    The pool kernel only ever asks prefix-rank queries — "occurrences of
    ``v`` at chunk positions ``< g``" — about *candidates*: items a pool
    tracked when the batch began, plus items sitting at event positions.
    Both sets are known before any data is applied (heap events are
    data-independent, so the engine pre-simulates every shard's schedule
    via ``plan_batch``), which is what makes one shared index per batch
    possible at all.

    Under a skewed stream the candidates cover most of the chunk (pools
    track heavy items), so sorting *candidate occurrences* wholesale is
    nearly as expensive as sorting the chunk.  The index therefore
    splits candidates by batch mass (taken from the value histogram):

    * **heavy** — the ≤255 candidates with the largest batch counts get
      their position lists from a single one-pass ``uint8`` radix
      argsort of the heavy-id array (sentinel 255 = everything else);
      within a group positions ascend, so a rank query is one
      ``searchsorted`` into that value's own slice;
    * **light** — the remaining candidates live in the sentinel tail of
      the same argsort (in position order).  A second, much smaller sort
      of the tail's candidate hits builds encoded keys
      ``cid · stride + position`` (``stride = size + 1``), and one
      ``searchsorted`` answers all light queries per call.

    Every sort is either one-pass radix over bytes or small, which is
    the whole trick: the 16-bit whole-chunk radix argsort this replaces
    costs ~3× the chunk's ingest budget by itself.

    Built once per engine batch and shared by every shard.  Precondition
    (the engine's gate): every chunk value in ``[0, 0xFFFF]`` and every
    candidate non-negative, unique.  Queries for items outside
    ``[0, 0xFFFF]`` return rank 0 (they cannot occur in a gated chunk);
    queries for in-range non-candidates are a contract violation and
    also return 0.
    """

    __slots__ = (
        "size", "_occ", "_stride", "_hlut", "_horder", "_hstarts",
        "_llut", "_lkey", "_lstarts",
    )

    #: Heavy ids fit uint8 with 255 reserved as the miss sentinel.
    _HEAVY_CAP = 255

    def __init__(
        self,
        base: np.ndarray,
        candidates: np.ndarray,
        occ: np.ndarray | None = None,
    ) -> None:
        self.size = int(base.size)
        cand = np.asarray(candidates, dtype=np.int64)
        self._stride = np.int64(self.size + 1)
        if occ is None:
            occ = (
                np.bincount(base, minlength=1 << 16)
                if self.size
                else np.zeros(1 << 16, dtype=np.int64)
            )
        if occ.size < 1 << 16:
            occ = np.pad(occ, (0, (1 << 16) - occ.size))
        self._occ = occ
        cap = self._HEAVY_CAP
        if cand.size > cap:
            sel = np.argpartition(occ[cand], cand.size - cap)[cand.size - cap:]
            heavy = cand[sel]
            light_mask = np.ones(cand.size, dtype=bool)
            light_mask[sel] = False
            light = cand[light_mask]
        else:
            heavy = cand
            light = cand[:0]
        nh = int(heavy.size)
        hlut = np.full(1 << 16, cap, dtype=np.uint8)
        hlut[heavy] = np.arange(nh, dtype=np.uint8)
        self._hlut = hlut
        hid = hlut[base]
        horder = np.argsort(hid, kind="stable")
        hstarts = np.zeros(nh + 2, dtype=np.int64)
        np.cumsum(occ[heavy], out=hstarts[1:nh + 1])
        hstarts[nh + 1] = self.size
        self._horder = horder
        self._hstarts = hstarts
        llut = np.full(1 << 16, -1, dtype=np.int32)
        self._llut = llut
        nl = int(light.size)
        if nl:
            llut[light] = np.arange(nl, dtype=np.int32)
            tail = horder[hstarts[nh]:]
            li = llut[base[tail]]
            lhit = np.flatnonzero(li >= 0)
            lcid = li[lhit].astype(np.uint16)
            lorder = np.argsort(lcid, kind="stable")
            lkey = lcid[lorder].astype(np.int64)
            lkey *= self._stride
            lkey += tail[lhit][lorder]
            lstarts = np.zeros(nl + 1, dtype=np.int64)
            np.cumsum(np.bincount(lcid, minlength=nl), out=lstarts[1:])
            self._lkey = lkey
            self._lstarts = lstarts
        else:
            self._lkey = np.empty(0, dtype=np.int64)
            self._lstarts = np.zeros(1, dtype=np.int64)

    def rank_many(self, items, bounds) -> np.ndarray:
        """Batched prefix ranks: entry ``j`` is the number of
        occurrences of ``items[j]`` at chunk positions ``< bounds[j]``."""
        it = np.asarray(items, dtype=np.int64)
        bnd = np.asarray(bounds, dtype=np.int64)
        out = np.zeros(it.size, dtype=np.int64)
        valid = (it >= 0) & (it <= 0xFFFF)
        safe = np.where(valid, it, 0)
        hid = self._hlut[safe].astype(np.int64)
        hq = np.flatnonzero(valid & (hid < self._HEAVY_CAP))
        if hq.size:
            # Group the heavy queries by value id: each distinct id is
            # one searchsorted into its own position slice.
            hs = self._hstarts
            horder = self._horder
            qh = hid[hq]
            qord = np.argsort(qh.astype(np.uint8), kind="stable")
            qh_s = qh[qord]
            cuts = np.flatnonzero(
                np.concatenate(([True], qh_s[1:] != qh_s[:-1]))
            )
            cuts = np.append(cuts, qh_s.size)
            for a, b in zip(cuts[:-1].tolist(), cuts[1:].tolist()):
                h = int(qh_s[a])
                grp = horder[hs[h]:hs[h + 1]]
                sel = hq[qord[a:b]]
                out[sel] = grp.searchsorted(bnd[sel])
        li = self._llut[safe].astype(np.int64)
        lq = np.flatnonzero(valid & (li >= 0))
        if lq.size:
            q = li[lq] * self._stride
            q += bnd[lq]
            out[lq] = self._lkey.searchsorted(q) - self._lstarts[li[lq]]
        return out

    def totals(self, items) -> np.ndarray:
        """Whole-batch occurrence counts (the histogram gather) — the
        rank at the end of the batch, without touching the sorts."""
        it = np.asarray(items, dtype=np.int64)
        valid = (it >= 0) & (it <= 0xFFFF)
        t = self._occ[np.where(valid, it, 0)]
        return np.where(valid, t, 0)


class ShardView:
    """A shard's whole-batch slice of an engine chunk, by *position*
    instead of by copy: the base chunk, the (ascending) positions this
    shard owns, the shared :class:`PositionIndex` of the base, and the
    shard's pre-simulated event schedule.

    The ownership contract (what a value partition guarantees): *every*
    occurrence in ``base`` of any item this shard tracks — or adopts
    during the batch — sits at one of ``positions``.  That makes global
    prefix ranks shard-locally meaningful (an owned item has no
    occurrences outside the view, so its settled rank starts at 0 and
    its flush total is the whole-batch count), and the pool kernel
    consumes the view with O(events) work, never materializing the
    subchunk.

    ``events`` is the ``(times, slots)`` pair the engine obtained from
    the pool's ``plan_batch`` (phase 1 hoisted so candidates were known
    before the index was built); the kernel applies it instead of
    re-simulating.
    """

    __slots__ = ("base", "positions", "index", "events")

    def __init__(
        self,
        base: np.ndarray,
        positions: np.ndarray,
        index: PositionIndex,
        events: tuple[list[int], list[int]] | None = None,
    ) -> None:
        self.base = base
        self.positions = positions
        self.index = index
        self.events = events

    @property
    def size(self) -> int:
        return int(self.positions.size)

    def values(self) -> np.ndarray:
        """Materialize the subchunk (the one gather the view otherwise
        avoids) — for consumers that need the raw items, e.g. the
        Misra–Gries normalizer pass."""
        return self.base[self.positions]
