"""The paper's primary contribution: truly perfect samplers.

Exports the insertion-only framework (Theorem 3.1), the Lp instantiations
(Theorems 3.3–3.5), the matrix row sampler (Theorem 3.7), the F0 samplers
(Section 5), and the multi-pass strict turnstile reductions (Theorem 1.5,
Appendix D).
"""

from repro.core.types import SampleOutcome, SampleResult
from repro.core.measures import (
    BoundedMeasure,
    CauchyMeasure,
    ConcaveMeasure,
    FairMeasure,
    GemanMcClureMeasure,
    HuberMeasure,
    L1L2Measure,
    LpMeasure,
    Measure,
    TukeyMeasure,
)
from repro.core.reservoir import KReservoir, TimestampedReservoir, skip_next_replacement
from repro.core.weighted_reservoir import WeightedL1Sampler, WeightedReservoir
from repro.core.g_sampler import SamplerPool, SingleGSampler, TrulyPerfectGSampler
from repro.core.lp_sampler import TrulyPerfectLpSampler, lp_instance_bound
from repro.core.matrix_sampler import (
    RowL1Measure,
    RowL2Measure,
    RowMeasure,
    TrulyPerfectMatrixSampler,
)
from repro.core.f0_sampler import (
    Algorithm5F0Sampler,
    BoundedMeasureSampler,
    RandomOracleF0Sampler,
    TrulyPerfectF0Sampler,
    TukeySampler,
)
from repro.core.multipass import (
    MultipassL1Sampler,
    MultipassLinfEstimator,
    MultipassLpSampler,
    StrictTurnstileF0Sampler,
)

__all__ = [
    "SampleOutcome",
    "SampleResult",
    "Measure",
    "BoundedMeasure",
    "LpMeasure",
    "L1L2Measure",
    "FairMeasure",
    "HuberMeasure",
    "CauchyMeasure",
    "TukeyMeasure",
    "GemanMcClureMeasure",
    "ConcaveMeasure",
    "BoundedMeasureSampler",
    "KReservoir",
    "TimestampedReservoir",
    "skip_next_replacement",
    "WeightedReservoir",
    "WeightedL1Sampler",
    "SamplerPool",
    "SingleGSampler",
    "TrulyPerfectGSampler",
    "TrulyPerfectLpSampler",
    "lp_instance_bound",
    "RowMeasure",
    "RowL1Measure",
    "RowL2Measure",
    "TrulyPerfectMatrixSampler",
    "Algorithm5F0Sampler",
    "RandomOracleF0Sampler",
    "TrulyPerfectF0Sampler",
    "TukeySampler",
    "MultipassL1Sampler",
    "MultipassLinfEstimator",
    "MultipassLpSampler",
    "StrictTurnstileF0Sampler",
]
