"""Truly perfect F0 (support) sampling — Section 5.

``F0`` sampling outputs a uniformly random element of the support
``{i : f_i ≠ 0}``.  Framework 1.3 does not apply directly (``F_0`` can be
far smaller than ``m``), so Algorithm 5 uses a two-regime construction:

* track the first ``√n`` distinct items ``T`` — if the stream's support
  fits, output a uniform element of ``T`` (exact, never fails);
* otherwise a pre-drawn uniform random set ``S`` of ``2√n`` universe
  elements intersects the support with probability ≥ ``1 − e^{−2}``;
  output a uniform element of ``U = S ∩ support``, which is uniform on the
  support by symmetry of ``S``.

With a random oracle the classic min-hash sampler is truly perfect in
O(log n) bits (Remark 5.1); we materialize the oracle table to make its
Ω(n) randomness cost explicit.

The Tukey M-estimator is bounded, so the paper samples it through an F0
sampler: accept an F0 sample ``i`` with probability ``G(f_i)/G(τ)``
(Theorem 5.4) — implemented here as :class:`TukeySampler`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.measures import BoundedMeasure, TukeyMeasure
from repro.core.types import SampleResult
from repro.sketches.hashing import random_oracle_hash

__all__ = [
    "Algorithm5F0Sampler",
    "TrulyPerfectF0Sampler",
    "RandomOracleF0Sampler",
    "BoundedMeasureSampler",
    "TukeySampler",
]


class Algorithm5F0Sampler:
    """One copy of Algorithm 5 (√n-space truly perfect F0 sampler).

    Tracks exact frequencies of the items in ``T`` and ``S`` so the
    sampled index is reported together with ``f_i`` (Theorem 5.2).
    """

    __slots__ = ("_n", "_threshold", "_first", "_overflowed", "_s_set", "_counts", "_rng")

    def __init__(self, n: int, seed: int | np.random.Generator | None = None) -> None:
        if n < 1:
            raise ValueError("universe size must be ≥ 1")
        self._n = n
        self._threshold = max(1, math.isqrt(n) + (0 if math.isqrt(n) ** 2 == n else 1))
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        s_size = min(2 * self._threshold, n)
        self._s_set = set(
            int(x) for x in self._rng.choice(n, size=s_size, replace=False)
        )
        self._first: dict[int, None] = {}
        self._overflowed = False
        self._counts: dict[int, int] = {}

    @property
    def threshold(self) -> int:
        """The ``√n`` cut-off between the T and S regimes."""
        return self._threshold

    @property
    def space_words(self) -> int:
        return 2 * (len(self._first) + len(self._s_set)) + len(self._counts)

    def update(self, item: int) -> None:
        if not 0 <= item < self._n:
            raise ValueError(f"item {item} outside universe [0, {self._n})")
        # An item is provably *new* at its first arrival: it is in neither
        # T nor the counted part of S.  (Later arrivals of an untracked
        # item re-trigger the overflow flag, which is harmless.)
        seen = item in self._first or self._counts.get(item, 0) > 0
        if not seen:
            if len(self._first) < self._threshold:
                self._first[item] = None
            else:
                self._overflowed = True
        if item in self._first or item in self._s_set:
            self._counts[item] = self._counts.get(item, 0) + 1

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def sample(self) -> SampleResult:
        if not self._counts and not self._overflowed:
            return SampleResult.empty()
        if len(self._first) < self._threshold and not self._overflowed:
            # The support fits in T entirely: exact uniform sampling.
            support = list(self._first)
            item = support[int(self._rng.integers(0, len(support)))]
            return SampleResult.of(item, frequency=self._counts[item], regime="T")
        appeared = [s for s in self._s_set if self._counts.get(s, 0) > 0]
        if appeared:
            item = appeared[int(self._rng.integers(0, len(appeared)))]
            return SampleResult.of(item, frequency=self._counts[item], regime="S")
        return SampleResult.fail(regime="S")


class TrulyPerfectF0Sampler:
    """Theorem 5.2: Algorithm 5 amplified to FAIL probability ≤ δ.

    The ``T`` regime is deterministic, so only the random-set part is
    replicated: ``⌈ln(1/δ)/2⌉`` independent copies drive the FAIL
    probability below ``e^{−2·copies} ≤ δ``.
    """

    def __init__(
        self,
        n: int,
        delta: float = 0.05,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        copies = max(1, math.ceil(math.log(1.0 / delta) / 2.0))
        self._copies = [Algorithm5F0Sampler(n, rng) for _ in range(copies)]

    @property
    def copies(self) -> int:
        return len(self._copies)

    @property
    def space_words(self) -> int:
        return sum(c.space_words for c in self._copies)

    def update(self, item: int) -> None:
        for copy in self._copies:
            copy.update(item)

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def sample(self) -> SampleResult:
        result = SampleResult.fail()
        for copy in self._copies:
            result = copy.sample()
            if not result.is_fail:
                return result
        return result

    def run(self, stream) -> SampleResult:
        self.extend(stream)
        return self.sample()


class RandomOracleF0Sampler:
    """Remark 5.1: min-hash F0 sampling under a random oracle.

    The oracle table ``h : [0,n) → [0,1)`` is materialized (Ω(n) random
    words — exactly the cost the paper notes the model hides); the
    streaming state beyond it is O(1) words.  The argmin item changes only
    at the *first* occurrence of the new argmin, so its exact frequency
    can be tracked alongside.
    """

    __slots__ = ("_h", "_min_item", "_min_val", "_count")

    def __init__(self, n: int, seed: int | np.random.Generator | None = None) -> None:
        self._h = random_oracle_hash(n, seed)
        self._min_item: int | None = None
        self._min_val = math.inf
        self._count = 0

    def update(self, item: int) -> None:
        val = self._h[item]
        if val < self._min_val:
            self._min_val = val
            self._min_item = item
            self._count = 0
        if item == self._min_item:
            self._count += 1

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def sample(self) -> SampleResult:
        if self._min_item is None:
            return SampleResult.empty()
        return SampleResult.of(self._min_item, frequency=self._count, regime="oracle")

    def run(self, stream) -> SampleResult:
        self.extend(stream)
        return self.sample()


class BoundedMeasureSampler:
    """Theorems 5.4/5.5 generalized: truly perfect sampling for any
    *bounded* measure via an F0-sampler subroutine.

    Each of ``R = ⌈G_max/G(1)·ln(1/δ)⌉`` repetitions draws an F0 sample
    ``i`` (with its exact frequency) and accepts with probability
    ``G(f_i)/G_max``; conditioned on acceptance the output is exactly
    ``G(f_i)/F_G`` distributed.

    Parameters
    ----------
    measure:
        Any :class:`repro.core.measures.BoundedMeasure` (Tukey,
        Geman–McClure, ...).
    oracle:
        Use the O(log n)-space random-oracle F0 sampler (default) or the
        √n-space Algorithm 5 variant.
    """

    def __init__(
        self,
        measure: BoundedMeasure,
        n: int,
        delta: float = 0.05,
        oracle: bool = True,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        self._measure = measure
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self._rng = rng
        acceptance = measure(1.0) / measure.saturation
        if acceptance <= 0:
            raise ValueError("measure must satisfy G(1) > 0")
        reps = max(1, math.ceil(math.log(1.0 / delta) / acceptance))
        if oracle:
            self._samplers: list = [RandomOracleF0Sampler(n, rng) for _ in range(reps)]
        else:
            self._samplers = [Algorithm5F0Sampler(n, rng) for _ in range(reps)]

    @property
    def measure(self) -> BoundedMeasure:
        return self._measure

    @property
    def repetitions(self) -> int:
        return len(self._samplers)

    def update(self, item: int) -> None:
        for s in self._samplers:
            s.update(item)

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def sample(self) -> SampleResult:
        saw_any = False
        for s in self._samplers:
            res = s.sample()
            if res.is_empty:
                return res
            if res.is_fail:
                continue
            saw_any = True
            freq = res.metadata["frequency"]
            accept_p = self._measure(freq) / self._measure.saturation
            if self._rng.random() < accept_p:
                return SampleResult.of(res.item, frequency=freq)
        if not saw_any:
            return SampleResult.fail(reason="all F0 copies failed")
        return SampleResult.fail(reason="all repetitions rejected")

    def run(self, stream) -> SampleResult:
        self.extend(stream)
        return self.sample()


class TukeySampler(BoundedMeasureSampler):
    """Theorem 5.4's named instantiation: the Tukey biweight via F0."""

    def __init__(
        self,
        n: int,
        tau: float = 5.0,
        delta: float = 0.05,
        oracle: bool = True,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(TukeyMeasure(tau), n, delta=delta, oracle=oracle, seed=seed)
