"""Truly perfect F0 (support) sampling — Section 5.

``F0`` sampling outputs a uniformly random element of the support
``{i : f_i ≠ 0}``.  Framework 1.3 does not apply directly (``F_0`` can be
far smaller than ``m``), so Algorithm 5 uses a two-regime construction:

* track the first ``√n`` distinct items ``T`` — if the stream's support
  fits, output a uniform element of ``T`` (exact, never fails);
* otherwise a pre-drawn uniform random set ``S`` of ``2√n`` universe
  elements intersects the support with probability ≥ ``1 − e^{−2}``;
  output a uniform element of ``U = S ∩ support``, which is uniform on the
  support by symmetry of ``S``.

With a random oracle the classic min-hash sampler is truly perfect in
O(log n) bits (Remark 5.1); we materialize the oracle table to make its
Ω(n) randomness cost explicit.

The Tukey M-estimator is bounded, so the paper samples it through an F0
sampler: accept an F0 sample ``i`` with probability ``G(f_i)/G(τ)``
(Theorem 5.4) — implemented here as :class:`TukeySampler`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.measures import BoundedMeasure, TukeyMeasure
from repro.core.rejection import uniform_candidate_many, uniform_candidate_sample
from repro.core.types import SampleResult, as_item_array
from repro.lifecycle.memory import (
    INSTANCE_BYTES,
    RNG_STATE_BYTES,
    mapping_bytes,
    ndarray_bytes,
    set_bytes,
)
from repro.lifecycle.protocol import StaticLifecycleMixin
from repro.sketches.hashing import random_oracle_hash

__all__ = [
    "Algorithm5F0Sampler",
    "TrulyPerfectF0Sampler",
    "RandomOracleF0Sampler",
    "BoundedMeasureSampler",
    "TukeySampler",
]


class Algorithm5F0Sampler(StaticLifecycleMixin):
    """One copy of Algorithm 5 (√n-space truly perfect F0 sampler).

    Tracks exact frequencies of the items in ``T`` and ``S`` so the
    sampled index is reported together with ``f_i`` (Theorem 5.2).
    """

    __slots__ = ("_n", "_threshold", "_first", "_overflowed", "_s_set", "_counts",
                 "_rng", "_t")

    def __init__(self, n: int, seed: int | np.random.Generator | None = None) -> None:
        if n < 1:
            raise ValueError("universe size must be ≥ 1")
        self._n = n
        self._threshold = max(1, math.isqrt(n) + (0 if math.isqrt(n) ** 2 == n else 1))
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        s_size = min(2 * self._threshold, n)
        self._s_set = set(
            int(x) for x in self._rng.choice(n, size=s_size, replace=False)
        )
        self._first: dict[int, None] = {}
        self._overflowed = False
        self._counts: dict[int, int] = {}
        self._t = 0

    @property
    def threshold(self) -> int:
        """The ``√n`` cut-off between the T and S regimes."""
        return self._threshold

    @property
    def position(self) -> int:
        """Number of updates processed."""
        return self._t

    @property
    def space_words(self) -> int:
        return 2 * (len(self._first) + len(self._s_set)) + len(self._counts)

    def approx_size_bytes(self) -> int:
        return (
            INSTANCE_BYTES
            + RNG_STATE_BYTES
            + set_bytes(len(self._s_set))
            + mapping_bytes(len(self._first))
            + mapping_bytes(len(self._counts))
        )

    def update(self, item: int) -> None:
        if not 0 <= item < self._n:
            raise ValueError(f"item {item} outside universe [0, {self._n})")
        self._t += 1
        # An item is provably *new* at its first arrival: it is in neither
        # T nor the counted part of S.  (Later arrivals of an untracked
        # item re-trigger the overflow flag, which is harmless.)
        seen = item in self._first or self._counts.get(item, 0) > 0
        if not seen:
            if len(self._first) < self._threshold:
                self._first[item] = None
            else:
                self._overflowed = True
        if item in self._first or item in self._s_set:
            self._counts[item] = self._counts.get(item, 0) + 1

    def extend(self, items) -> None:
        """Delegates to :meth:`update_batch` (bitwise identical — updates
        consume no randomness)."""
        self.update_batch(as_item_array(items))

    @staticmethod
    def chunk_pairs(arr: np.ndarray) -> list[tuple[int, int]]:
        """``(item, chunk occurrences)`` pairs in first-appearance order —
        the distinct-item digest :meth:`ingest_pairs` consumes.  Computed
        once per chunk and shared across amplification copies."""
        uniq, first_at, occurrences = np.unique(
            arr, return_index=True, return_counts=True
        )
        order = np.argsort(first_at, kind="stable")
        return list(zip(uniq[order].tolist(), occurrences[order].tolist()))

    def ingest_pairs(self, pairs: list[tuple[int, int]], length: int) -> None:
        """Apply a chunk digest (from :meth:`chunk_pairs`) of a chunk of
        ``length`` already-validated items."""
        for item, __ in pairs:
            seen = item in self._first or self._counts.get(item, 0) > 0
            if not seen:
                if len(self._first) < self._threshold:
                    self._first[item] = None
                else:
                    self._overflowed = True
        for item, count in pairs:
            if item in self._first or item in self._s_set:
                self._counts[item] = self._counts.get(item, 0) + count
        self._t += length

    def update_batch(self, items) -> None:
        """Vectorized chunk ingestion — bitwise identical to the scalar
        loop (no randomness is consumed by updates).

        Membership of ``T ∪ S`` only ever turns *on* for an item (at its
        first arrival), so per-position work collapses to: adopt new
        distinct items in first-appearance order, then add whole-chunk
        occurrence counts for every tracked item.
        """
        arr = np.asarray(items, dtype=np.int64)
        if arr.size == 0:
            return
        if int(arr.min()) < 0 or int(arr.max()) >= self._n:
            raise ValueError(f"items outside universe [0, {self._n})")
        self.ingest_pairs(self.chunk_pairs(arr), int(arr.size))

    def snapshot(self) -> dict:
        n_counts = len(self._counts)
        return {
            "kind": "algorithm5_f0",
            "n": self._n,
            "position": self._t,
            "overflowed": self._overflowed,
            # Canonical (sorted) order, matching sample()'s iteration:
            # the set's raw order leaks its insertion history, which a
            # restore does not replay.
            "s_set": np.fromiter(sorted(self._s_set), dtype=np.int64,
                                 count=len(self._s_set)),
            "first": np.fromiter(self._first.keys(), dtype=np.int64, count=len(self._first)),
            "count_keys": np.fromiter(self._counts.keys(), dtype=np.int64, count=n_counts),
            "count_vals": np.fromiter(self._counts.values(), dtype=np.int64, count=n_counts),
            "rng_state": self._rng.bit_generator.state,
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "algorithm5_f0":
            raise ValueError(f"not an algorithm5_f0 snapshot: {state.get('kind')!r}")
        if int(state["n"]) != self._n:
            raise ValueError(f"snapshot is for n={state['n']}, sampler has n={self._n}")
        self._t = int(state["position"])
        self._overflowed = bool(state["overflowed"])
        self._s_set = set(int(x) for x in state["s_set"])
        self._first = {int(x): None for x in state["first"]}
        self._counts = {
            int(k): int(v) for k, v in zip(state["count_keys"], state["count_vals"])
        }
        rng = np.random.default_rng()
        rng.bit_generator.state = state["rng_state"]
        self._rng = rng

    def merge(self, other: "Algorithm5F0Sampler") -> None:
        """Absorb a copy fed a *disjoint* partition of the universe.

        Requires an identical random subset ``S`` (construct shard copies
        from the same seed).  The result is the exact state of one copy
        run over the concatenation self‖other: ``other``'s ``T`` entries
        append in first-appearance order until ``T`` fills (an overflowed
        ``other`` always carries a full table, so no adopted-item order
        information is ever missing), and dropped entries keep their
        counts only when ``S`` would have tracked them.
        """
        if not isinstance(other, Algorithm5F0Sampler):
            raise TypeError(
                f"cannot merge Algorithm5F0Sampler with {type(other).__name__}"
            )
        if other._n != self._n:
            raise ValueError(f"universe sizes differ: {self._n} vs {other._n}")
        if other._s_set != self._s_set:
            raise ValueError(
                "merge requires identical random subsets S — construct the "
                "shard samplers from the same seed"
            )
        self._t += other._t
        dropped: set[int] = set()
        for item in other._first:
            if len(self._first) < self._threshold:
                self._first[item] = None
            else:
                self._overflowed = True
                if item not in self._s_set:
                    dropped.add(item)
        self._overflowed = self._overflowed or other._overflowed
        for item, count in other._counts.items():
            if item in dropped:
                continue  # untracked in the single-stream run
            self._counts[item] = self._counts.get(item, 0) + count

    def _support_candidates(self) -> tuple[str, list[int] | None]:
        """The state-determined part of :meth:`sample`: which regime
        answers and its candidate items (``("empty", None)`` for ⊥; an
        empty S-regime list means FAIL).  No randomness is consumed, so
        batched queries can resolve the regime once and vectorize the
        uniform index draws."""
        if not self._counts and not self._overflowed:
            return "empty", None
        if len(self._first) < self._threshold and not self._overflowed:
            # The support fits in T entirely: exact uniform sampling.
            return "T", list(self._first)
        # Canonical (sorted) iteration: the set's raw order leaks its
        # insertion history, which a restore does not replay — sampling
        # must pick the same item for the same coin either way.
        return "S", [s for s in sorted(self._s_set) if self._counts.get(s, 0) > 0]

    def sample(self) -> SampleResult:
        regime, candidates = self._support_candidates()
        return uniform_candidate_sample(
            self._rng,
            regime,
            candidates,
            lambda item: SampleResult.of(
                item, frequency=self._counts[item], regime=regime
            ),
        )

    def sample_many(self, k: int) -> list[SampleResult]:
        """``k`` independent samples with one regime resolution and one
        batched index draw — bitwise identical to ``k`` back-to-back
        :meth:`sample` calls (a sized ``integers`` draw consumes the
        stream exactly as the scalar draws do)."""
        regime, candidates = self._support_candidates()
        return uniform_candidate_many(
            self._rng,
            k,
            regime,
            candidates,
            lambda item: SampleResult.of(
                item, frequency=self._counts[item], regime=regime
            ),
        )


class TrulyPerfectF0Sampler(StaticLifecycleMixin):
    """Theorem 5.2: Algorithm 5 amplified to FAIL probability ≤ δ.

    The ``T`` regime is deterministic, so only the random-set part is
    replicated: ``⌈ln(1/δ)/2⌉`` independent copies drive the FAIL
    probability below ``e^{−2·copies} ≤ δ``.
    """

    def __init__(
        self,
        n: int,
        delta: float = 0.05,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        copies = max(1, math.ceil(math.log(1.0 / delta) / 2.0))
        self._copies = [Algorithm5F0Sampler(n, rng) for _ in range(copies)]

    @property
    def copies(self) -> int:
        return len(self._copies)

    @property
    def position(self) -> int:
        """Number of updates processed."""
        return self._copies[0].position

    @property
    def space_words(self) -> int:
        return sum(c.space_words for c in self._copies)

    def approx_size_bytes(self) -> int:
        return INSTANCE_BYTES + sum(c.approx_size_bytes() for c in self._copies)

    def update(self, item: int) -> None:
        for copy in self._copies:
            copy.update(item)

    def extend(self, items) -> None:
        """Delegates to :meth:`update_batch` (bitwise identical — updates
        consume no randomness)."""
        self.update_batch(as_item_array(items))

    def update_batch(self, items) -> None:
        """Vectorized chunk ingestion, bitwise identical to the scalar
        loop (updates consume no randomness).  The chunk's distinct-item
        digest is computed once and shared by all amplification copies —
        the dominant O(L log L) cost does not scale with ``copies``."""
        arr = np.asarray(items, dtype=np.int64)
        if arr.size == 0:
            return
        n = self._copies[0]._n
        if int(arr.min()) < 0 or int(arr.max()) >= n:
            raise ValueError(f"items outside universe [0, {n})")
        pairs = Algorithm5F0Sampler.chunk_pairs(arr)
        for copy in self._copies:
            copy.ingest_pairs(pairs, int(arr.size))

    def snapshot(self) -> dict:
        return {
            "kind": "truly_perfect_f0",
            "copies": {str(i): c.snapshot() for i, c in enumerate(self._copies)},
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "truly_perfect_f0":
            raise ValueError(f"not a truly_perfect_f0 snapshot: {state.get('kind')!r}")
        copies = state["copies"]
        if len(copies) != len(self._copies):
            raise ValueError(
                f"snapshot has {len(copies)} copies, sampler has {len(self._copies)}"
            )
        for i, copy in enumerate(self._copies):
            copy.restore(copies[str(i)])
        # Construction shares one generator across copies; restore the
        # sharing so post-restore replay stays deterministic.
        shared = self._copies[0]._rng
        for copy in self._copies:
            copy._rng = shared

    def merge(self, other: "TrulyPerfectF0Sampler") -> None:
        """Copy-wise merge over a disjoint universe partition; shard
        samplers must be constructed from the same seed so each pair of
        copies shares its random subset ``S``."""
        if not isinstance(other, TrulyPerfectF0Sampler):
            raise TypeError(
                f"cannot merge TrulyPerfectF0Sampler with {type(other).__name__}"
            )
        if len(other._copies) != len(self._copies):
            raise ValueError(
                f"copy counts differ: {len(self._copies)} vs {len(other._copies)}"
            )
        for mine, theirs in zip(self._copies, other._copies):
            mine.merge(theirs)

    def sample(self) -> SampleResult:
        result = SampleResult.fail()
        for copy in self._copies:
            result = copy.sample()
            if not result.is_fail:
                return result
        return result

    def sample_many(self, k: int) -> list[SampleResult]:
        """``k`` independent samples — bitwise identical to ``k``
        back-to-back :meth:`sample` calls.  Which amplification copy
        answers is state-determined (failed copies consume no
        randomness), so the first non-failing copy resolves all ``k``
        draws in one batched pass."""
        if k < 0:
            raise ValueError(f"need a non-negative draw count, got {k}")
        for copy in self._copies:
            __, candidates = copy._support_candidates()
            if candidates is None or candidates:
                return copy.sample_many(k)
        return [SampleResult.fail(regime="S") for __ in range(k)]

    def run(self, stream) -> SampleResult:
        self.extend(stream)
        return self.sample()


class RandomOracleF0Sampler(StaticLifecycleMixin):
    """Remark 5.1: min-hash F0 sampling under a random oracle.

    The oracle table ``h : [0,n) → [0,1)`` is materialized (Ω(n) random
    words — exactly the cost the paper notes the model hides); the
    streaming state beyond it is O(1) words.  The argmin item changes only
    at the *first* occurrence of the new argmin, so its exact frequency
    can be tracked alongside.
    """

    __slots__ = ("_h", "_min_item", "_min_val", "_count", "_t")

    def __init__(self, n: int, seed: int | np.random.Generator | None = None) -> None:
        self._h = random_oracle_hash(n, seed)
        self._min_item: int | None = None
        self._min_val = math.inf
        self._count = 0
        self._t = 0

    @property
    def position(self) -> int:
        """Number of updates processed."""
        return self._t

    def approx_size_bytes(self) -> int:
        return INSTANCE_BYTES + ndarray_bytes(self._h)

    def update(self, item: int) -> None:
        self._t += 1
        val = self._h[item]
        if val < self._min_val:
            self._min_val = val
            self._min_item = item
            self._count = 0
        if item == self._min_item:
            self._count += 1

    def extend(self, items) -> None:
        """Delegates to :meth:`update_batch` (identical to the scalar
        loop — min-hash tracking consumes no randomness)."""
        self.update_batch(as_item_array(items))

    def update_batch(self, items) -> None:
        """Vectorized chunk ingestion, identical to the scalar loop.

        The argmin item over a chunk is a single vectorized reduction;
        its tracked frequency counts occurrences from its first arrival,
        which is its full chunk count when it dethrones the incumbent.
        """
        arr = np.asarray(items, dtype=np.int64)
        if arr.size == 0:
            return
        self._t += int(arr.size)
        vals = self._h[arr]
        best = int(np.argmin(vals))
        if vals[best] < self._min_val:
            self._min_val = float(vals[best])
            self._min_item = int(arr[best])
            self._count = int(np.count_nonzero(arr == self._min_item))
        elif self._min_item is not None:
            self._count += int(np.count_nonzero(arr == self._min_item))

    def snapshot(self) -> dict:
        return {
            "kind": "random_oracle_f0",
            "position": self._t,
            "min_item": -1 if self._min_item is None else self._min_item,
            "min_val": self._min_val if math.isfinite(self._min_val) else None,
            "count": self._count,
            "oracle": self._h,
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "random_oracle_f0":
            raise ValueError(f"not a random_oracle_f0 snapshot: {state.get('kind')!r}")
        self._t = int(state["position"])
        min_item = int(state["min_item"])
        self._min_item = None if min_item < 0 else min_item
        self._min_val = math.inf if state["min_val"] is None else float(state["min_val"])
        self._count = int(state["count"])
        self._h = np.asarray(state["oracle"], dtype=np.float64)

    def merge(self, other: "RandomOracleF0Sampler") -> None:
        """Keep the globally smallest hash value.

        Exact for samplers fed *disjoint* partitions of the universe:
        all hash values are i.i.d. uniform (whether the shards share one
        oracle table or drew independent ones), so the global argmin is
        uniform over the union support.  A merged sampler should be
        treated as query-only unless the shards share one oracle table.
        """
        if not isinstance(other, RandomOracleF0Sampler):
            raise TypeError(
                f"cannot merge RandomOracleF0Sampler with {type(other).__name__}"
            )
        self._t += other._t
        if other._min_val < self._min_val:
            self._min_val = other._min_val
            self._min_item = other._min_item
            self._count = other._count

    def sample(self) -> SampleResult:
        if self._min_item is None:
            return SampleResult.empty()
        return SampleResult.of(self._min_item, frequency=self._count, regime="oracle")

    def sample_many(self, k: int) -> list[SampleResult]:
        """``k`` samples (the min-hash answer is deterministic between
        ingests, so all draws coincide — kept for API uniformity)."""
        if k < 0:
            raise ValueError(f"need a non-negative draw count, got {k}")
        return [self.sample() for __ in range(k)]

    def run(self, stream) -> SampleResult:
        self.extend(stream)
        return self.sample()


class BoundedMeasureSampler(StaticLifecycleMixin):
    """Theorems 5.4/5.5 generalized: truly perfect sampling for any
    *bounded* measure via an F0-sampler subroutine.

    Each of ``R = ⌈G_max/G(1)·ln(1/δ)⌉`` repetitions draws an F0 sample
    ``i`` (with its exact frequency) and accepts with probability
    ``G(f_i)/G_max``; conditioned on acceptance the output is exactly
    ``G(f_i)/F_G`` distributed.

    Parameters
    ----------
    measure:
        Any :class:`repro.core.measures.BoundedMeasure` (Tukey,
        Geman–McClure, ...).
    oracle:
        Use the O(log n)-space random-oracle F0 sampler (default) or the
        √n-space Algorithm 5 variant.
    """

    def __init__(
        self,
        measure: BoundedMeasure,
        n: int,
        delta: float = 0.05,
        oracle: bool = True,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        self._measure = measure
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self._rng = rng
        acceptance = measure(1.0) / measure.saturation
        if acceptance <= 0:
            raise ValueError("measure must satisfy G(1) > 0")
        self._oracle = bool(oracle)
        reps = max(1, math.ceil(math.log(1.0 / delta) / acceptance))
        if oracle:
            self._samplers: list = [RandomOracleF0Sampler(n, rng) for _ in range(reps)]
        else:
            self._samplers = [Algorithm5F0Sampler(n, rng) for _ in range(reps)]

    @property
    def measure(self) -> BoundedMeasure:
        return self._measure

    @property
    def repetitions(self) -> int:
        return len(self._samplers)

    @property
    def position(self) -> int:
        """Number of updates processed."""
        return self._samplers[0].position

    def approx_size_bytes(self) -> int:
        return (
            INSTANCE_BYTES
            + RNG_STATE_BYTES
            + sum(s.approx_size_bytes() for s in self._samplers)
        )

    def update(self, item: int) -> None:
        for s in self._samplers:
            s.update(item)

    def extend(self, items) -> None:
        """Delegates to :meth:`update_batch` (bitwise identical — F0
        subroutine updates consume no randomness)."""
        self.update_batch(as_item_array(items))

    def update_batch(self, items) -> None:
        """Vectorized chunk ingestion, bitwise identical to the scalar
        loop (F0 subroutine updates consume no randomness)."""
        arr = np.asarray(items, dtype=np.int64)
        if arr.size == 0:
            return
        for s in self._samplers:
            s.update_batch(arr)

    def snapshot(self) -> dict:
        """Checkpoint every F0 repetition plus the acceptance-coin RNG
        (the measure is construction-time configuration; its name is
        recorded so a mismatched restore fails loudly)."""
        return {
            "kind": "bounded_measure",
            "measure": self._measure.name,
            "oracle": self._oracle,
            "samplers": {str(i): s.snapshot() for i, s in enumerate(self._samplers)},
            "rng_state": self._rng.bit_generator.state,
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "bounded_measure":
            raise ValueError(f"not a bounded_measure snapshot: {state.get('kind')!r}")
        if state.get("measure") != self._measure.name:
            raise ValueError(
                f"snapshot is for measure {state.get('measure')!r}, sampler "
                f"has {self._measure.name!r}"
            )
        if bool(state["oracle"]) != self._oracle:
            raise ValueError("snapshot and sampler disagree on oracle=")
        entries = state["samplers"]
        if len(entries) != len(self._samplers):
            raise ValueError(
                f"snapshot has {len(entries)} repetitions, sampler has "
                f"{len(self._samplers)}"
            )
        for i, s in enumerate(self._samplers):
            s.restore(entries[str(i)])
        rng = np.random.default_rng()
        rng.bit_generator.state = state["rng_state"]
        self._rng = rng
        if not self._oracle:
            # Construction shares one generator across the Algorithm 5
            # copies and the acceptance coins; restore the sharing so
            # post-restore replay stays deterministic.
            for s in self._samplers:
                s._rng = rng

    def merge(self, other: "BoundedMeasureSampler") -> None:
        """Repetition-wise merge over a disjoint universe partition;
        shard samplers must be constructed from the same seed so each
        pair of F0 repetitions shares its randomness (the engine's
        shared-seed rule for the ``bounded`` kind)."""
        if not isinstance(other, BoundedMeasureSampler):
            raise TypeError(
                f"cannot merge BoundedMeasureSampler with {type(other).__name__}"
            )
        if other._measure.name != self._measure.name:
            raise ValueError(
                f"measures differ: {self._measure.name} vs {other._measure.name}"
            )
        if len(other._samplers) != len(self._samplers) or other._oracle != self._oracle:
            raise ValueError("repetition layouts differ")
        for mine, theirs in zip(self._samplers, other._samplers):
            mine.merge(theirs)

    def sample(self) -> SampleResult:
        saw_any = False
        for s in self._samplers:
            res = s.sample()
            if res.is_empty:
                return res
            if res.is_fail:
                continue
            saw_any = True
            freq = res.metadata["frequency"]
            accept_p = self._measure(freq) / self._measure.saturation
            if self._rng.random() < accept_p:
                return SampleResult.of(res.item, frequency=freq)
        if not saw_any:
            return SampleResult.fail(reason="all F0 copies failed")
        return SampleResult.fail(reason="all repetitions rejected")

    def sample_many(self, k: int) -> list[SampleResult]:
        """``k`` independent samples (sequential — the repetition scan
        consumes a data-dependent number of acceptance coins per draw,
        so the lazy scalar path is already optimal coin-wise; kept for
        API uniformity with the vectorized families)."""
        if k < 0:
            raise ValueError(f"need a non-negative draw count, got {k}")
        return [self.sample() for __ in range(k)]

    def run(self, stream) -> SampleResult:
        self.extend(stream)
        return self.sample()


class TukeySampler(BoundedMeasureSampler):
    """Theorem 5.4's named instantiation: the Tukey biweight via F0."""

    def __init__(
        self,
        n: int,
        tau: float = 5.0,
        delta: float = 0.05,
        oracle: bool = True,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(TukeyMeasure(tau), n, delta=delta, oracle=oracle, seed=seed)
