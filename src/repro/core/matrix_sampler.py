"""Truly perfect matrix row sampling (Algorithm 3 / Theorem 3.7).

A stream of entry updates ``(row, col)`` implicitly defines a non-negative
matrix ``M``; the goal is to output row ``r`` with probability exactly
``G(m_r)/Σ_j G(m_j)`` for a row measure ``G : R^d → R≥0``.

The construction mirrors the vector case: reservoir-sample an update
``(r, c)``, accumulate the vector ``v`` of *subsequent* updates to row
``r``, and accept with probability ``(G(v + e_c) − G(v))/ζ``; telescoping
over the row's updates yields ``G(m_r)/(ζm)`` exactly.
"""

from __future__ import annotations

import abc
import heapq
import math

import numpy as np

from repro.core.reservoir import skip_next_replacement
from repro.core.types import SampleResult

__all__ = ["RowMeasure", "RowL1Measure", "RowL2Measure", "TrulyPerfectMatrixSampler"]


class RowMeasure(abc.ABC):
    """A non-negative row functional with ``G(0) = 0`` and bounded
    coordinate increments ``G(x + e_i) − G(x) ≤ ζ``."""

    name = "row-G"

    @abc.abstractmethod
    def value(self, counts: dict[int, int]) -> float:
        """``G`` of the (sparse) non-negative vector ``counts``."""

    def coordinate_increment(self, counts: dict[int, int], col: int) -> float:
        """``G(v + e_col) − G(v)``."""
        bumped = dict(counts)
        bumped[col] = bumped.get(col, 0) + 1
        return self.value(bumped) - self.value(counts)

    @abc.abstractmethod
    def zeta(self) -> float:
        """Certified bound on every coordinate increment."""

    @abc.abstractmethod
    def fg_lower_bound(self, m: int, d: int) -> float:
        """Certified lower bound on ``F_G = Σ_rows G(m_r)`` given the
        total update count ``m`` and the column count ``d``."""


class RowL1Measure(RowMeasure):
    """``G(x) = Σ_i x_i`` — sampling rows by their L1 mass (the
    ``L_{1,1}`` norm); here ``F_G = m`` exactly."""

    name = "L1,1"

    def value(self, counts: dict[int, int]) -> float:
        return float(sum(counts.values()))

    def coordinate_increment(self, counts: dict[int, int], col: int) -> float:
        return 1.0

    def zeta(self) -> float:
        return 1.0

    def fg_lower_bound(self, m: int, d: int) -> float:
        return float(m)


class RowL2Measure(RowMeasure):
    """``G(x) = ‖x‖₂`` — sampling rows by Euclidean norm (the ``L_{1,2}``
    norm driving adaptive sampling, [MRWZ20]).

    Increments are ≤ 1 by the triangle inequality, and
    ``‖x‖₂ ≥ ‖x‖₁/√d`` certifies ``F_G ≥ m/√d``.
    """

    name = "L1,2"

    def value(self, counts: dict[int, int]) -> float:
        return math.sqrt(sum(c * c for c in counts.values()))

    def zeta(self) -> float:
        return 1.0

    def fg_lower_bound(self, m: int, d: int) -> float:
        return m / math.sqrt(max(d, 1))


class _MatrixInstance:
    __slots__ = ("row", "col", "after", "timestamp")

    def __init__(self) -> None:
        self.row: int | None = None
        self.col: int | None = None
        self.after: dict[int, int] = {}
        self.timestamp = 0


class TrulyPerfectMatrixSampler:
    """Truly perfect row sampler for entry-wise matrix streams.

    Parameters
    ----------
    measure:
        The row functional ``G``.
    d:
        Number of columns.
    instances / delta / m_hint:
        Pool sizing, as in the vector sampler; default
        ``R = ⌈ζ·m/F̂_G · ln(1/δ)⌉`` using the measure's certified bound.
    """

    def __init__(
        self,
        measure: RowMeasure,
        d: int,
        instances: int | None = None,
        delta: float = 0.05,
        m_hint: int | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if d < 1:
            raise ValueError("d must be ≥ 1")
        self._measure = measure
        self._d = d
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        if instances is None:
            m = m_hint if m_hint is not None else 10**6
            acceptance = measure.fg_lower_bound(m, d) / (measure.zeta() * m)
            instances = max(1, math.ceil(math.log(1.0 / delta) / acceptance))
        self._instances = [_MatrixInstance() for _ in range(instances)]
        self._heap: list[tuple[int, int]] = [(1, i) for i in range(instances)]
        heapq.heapify(self._heap)
        self._row_index: dict[int, set[int]] = {}
        self._t = 0

    @property
    def instances(self) -> int:
        return len(self._instances)

    @property
    def position(self) -> int:
        return self._t

    def update(self, row: int, col: int) -> None:
        if not 0 <= col < self._d:
            raise ValueError(f"column {col} outside [0, {self._d})")
        self._t += 1
        t = self._t
        heap = self._heap
        while heap and heap[0][0] == t:
            __, idx = heapq.heappop(heap)
            inst = self._instances[idx]
            if inst.row is not None:
                members = self._row_index.get(inst.row)
                if members is not None:
                    members.discard(idx)
                    if not members:
                        del self._row_index[inst.row]
            inst.row = row
            inst.col = col
            inst.after = {}
            inst.timestamp = t
            self._row_index.setdefault(row, set()).add(idx)
            heapq.heappush(heap, (skip_next_replacement(t, self._rng), idx))
        # Count this update for every instance already tracking the row
        # (the adopting instances count only *subsequent* updates).
        for idx in self._row_index.get(row, ()):
            inst = self._instances[idx]
            if inst.timestamp < t:
                inst.after[col] = inst.after.get(col, 0) + 1

    def extend(self, updates) -> None:
        for row, col in updates:
            self.update(row, col)

    def sample(self) -> SampleResult:
        """Rejection step; returns the first accepting instance's row."""
        if self._t == 0:
            return SampleResult.empty()
        zeta = self._measure.zeta()
        coins = self._rng.random(len(self._instances))
        for inst, coin in zip(self._instances, coins):
            weight = self._measure.coordinate_increment(inst.after, inst.col)
            if weight > zeta * (1.0 + 1e-12):
                raise ValueError(f"invalid zeta {zeta}: increment {weight}")
            if coin < weight / zeta:
                return SampleResult.of(
                    inst.row, col=inst.col, timestamp=inst.timestamp, zeta=zeta
                )
        return SampleResult.fail(zeta=zeta)

    def run(self, updates) -> SampleResult:
        self.extend(updates)
        return self.sample()
