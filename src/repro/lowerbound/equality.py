"""Theorem 1.2 — the turnstile lower bound via EQUALITY.

The proof's reduction: Alice streams ``+x``, Bob streams ``−y``, and a
``(ε₀, γ, 1/2)``-G-sampler run on the combined stream answers EQUALITY —
the sampler must say ``⊥`` when ``x = y`` (zero vector) and almost never
says ``⊥`` when ``x ≠ y`` (some coordinate is non-zero), giving a one-way
protocol with refutation error ≤ γ whose message is the sampler's state.
[BCK+14]'s fine-grained equality bound (Theorem 2.1) then forces the
state to be ``Ω(min{n, log 1/γ})`` bits.

``FingerprintSampler`` realizes the matching trade-off constructively: a
``b``-bit linear fingerprint of ``f`` detects ``f ≠ 0`` except with
probability ``2^{−b}`` — i.e. it is a γ-additive-error sampler (w.r.t.
the ⊥ semantics) with ``b = log₂(1/γ)`` bits, demonstrating the bound is
tight for this family.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.core.types import SampleResult
from repro.sketches.hashing import MERSENNE_P

__all__ = [
    "FingerprintSampler",
    "ExactTurnstileSampler",
    "EqualityReduction",
    "refutation_bound_bits",
    "measure_advantage",
    "AdvantageReport",
]


class FingerprintSampler:
    """A ``bits``-bit turnstile sampler with additive error γ = 2^{−bits}.

    Maintains ``Σ_i f_i·r_i mod q`` reduced to ``bits`` bits (random
    ``r_i`` derived from the seed).  Outputs ``⊥`` iff the fingerprint is
    zero — wrong with probability ≤ 2·2^{−bits} over the ``r_i`` when
    ``f ≠ 0``; the index reported in the non-zero case is arbitrary (the
    reduction only inspects ⊥).
    """

    def __init__(self, n: int, bits: int, seed: int | np.random.Generator | None = None) -> None:
        if not 1 <= bits <= 30:
            raise ValueError("bits must be in [1, 30]")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self._n = n
        self._bits = bits
        self._modulus = 1 << bits
        self._coeffs = rng.integers(0, MERSENNE_P, size=n, dtype=np.int64)
        self._fingerprint = 0
        self._last_item = 0

    @property
    def state_bits(self) -> int:
        """Bits of *streaming* state (the message size in the reduction);
        the coefficient table is shared randomness, which [BCK+14]'s
        public-coin model does not charge to the message."""
        return self._bits

    def update(self, item: int, delta: int = 1) -> None:
        self._fingerprint = (
            self._fingerprint + delta * int(self._coeffs[item])
        ) % MERSENNE_P
        self._last_item = item

    def extend(self, updates) -> None:
        for u in updates:
            if isinstance(u, tuple):
                self.update(*u)
            elif isinstance(u, (int, np.integer)):
                self.update(int(u), 1)
            else:
                self.update(u.item, u.delta)

    def sample(self) -> SampleResult:
        reduced = self._fingerprint % self._modulus
        if reduced == 0:
            return SampleResult.empty()
        return SampleResult.of(self._last_item)


class ExactTurnstileSampler:
    """The Ω(n)-bit extreme: store ``f`` exactly, sample truly perfectly."""

    def __init__(self, n: int, seed: int | np.random.Generator | None = None) -> None:
        self._freq = np.zeros(n, dtype=np.int64)
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )

    @property
    def state_bits(self) -> int:
        return 64 * int(self._freq.size)

    def update(self, item: int, delta: int = 1) -> None:
        self._freq[item] += delta

    def extend(self, updates) -> None:
        for u in updates:
            if isinstance(u, tuple):
                self.update(*u)
            elif isinstance(u, (int, np.integer)):
                self.update(int(u), 1)
            else:
                self.update(u.item, u.delta)

    def sample(self) -> SampleResult:
        support = np.flatnonzero(self._freq)
        if support.size == 0:
            return SampleResult.empty()
        weights = np.abs(self._freq[support]).astype(np.float64)
        probs = weights / weights.sum()
        return SampleResult.of(int(self._rng.choice(support, p=probs)))


class EqualityReduction:
    """Run the Theorem 1.2 protocol on a sampler factory.

    ``factory(seed)`` must return an object with turnstile ``update`` and
    ``sample``; Alice inserts ``x``, Bob inserts ``−y`` (state is "sent"
    by simply continuing on the same object — a one-round protocol whose
    message is exactly the sampler state), and Bob declares *equal* iff
    the output is ``⊥``.
    """

    def __init__(self, factory) -> None:
        self._factory = factory

    def decide(self, x: np.ndarray, y: np.ndarray, seed: int) -> bool:
        sampler = self._factory(seed)
        for i, v in enumerate(x):
            if v:
                sampler.update(i, int(v))
        # --- the message crosses here: Alice -> Bob ---
        for i, v in enumerate(y):
            if v:
                sampler.update(i, -int(v))
        return sampler.sample().is_empty


@dataclasses.dataclass(frozen=True)
class AdvantageReport:
    """Empirical protocol quality for one sampler family."""

    state_bits: int
    trials: int
    refutation_error: float  # P[say equal | x != y]  (should track γ)
    verification_error: float  # P[say unequal | x == y]

    @property
    def advantage(self) -> float:
        return 1.0 - self.refutation_error - self.verification_error


def measure_advantage(
    factory,
    n: int,
    trials: int = 200,
    seed: int = 0,
    state_bits: int | None = None,
) -> AdvantageReport:
    """Empirically measure the reduction's refutation/verification errors.

    Unequal pairs are drawn at Hamming distance 1 — the hardest gap, and
    the one the fine-grained bound is about.
    """
    rng = np.random.default_rng(seed)
    reduction = EqualityReduction(factory)
    wrong_equal = 0
    wrong_unequal = 0
    for trial in range(trials):
        x = rng.integers(0, 2, size=n)
        y = x.copy()
        # Unequal case: flip one coordinate.
        pos = int(rng.integers(0, n))
        y[pos] ^= 1
        if reduction.decide(x, y, seed=trial):
            wrong_equal += 1
        # Equal case.
        if not reduction.decide(x, x.copy(), seed=trial + 10**6):
            wrong_unequal += 1
    if state_bits is None:
        state_bits = factory(0).state_bits
    return AdvantageReport(
        state_bits=state_bits,
        trials=trials,
        refutation_error=wrong_equal / trials,
        verification_error=wrong_unequal / trials,
    )


def refutation_bound_bits(n: int, gamma: float, delta: float = 0.5) -> float:
    """The Theorem 1.2 / Theorem 2.1 lower bound value (in bits).

    ``R ≥ (1−δ)²·(n̂ + log(1−δ) − 5)/8`` with the effective instance size
    ``n̂ = min{n + log(1−δ), log((1−δ)²/γ)}``.
    """
    if not 0 < gamma < 1:
        raise ValueError("gamma must be in (0, 1)")
    log_1md = math.log2(1.0 - delta)
    n_hat = min(n + log_1md, math.log2((1.0 - delta) ** 2 / gamma))
    return max(0.0, (1.0 - delta) ** 2 * (n_hat + log_1md - 5.0) / 8.0)
