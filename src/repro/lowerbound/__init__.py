"""The turnstile lower bound (Theorem 1.2), made executable.

The lower bound itself cannot be "run"; what *can* be run is its
constructive content — the reduction from any ``(ε, γ, 1/2)`` G-sampler
to a one-way EQUALITY protocol with refutation error γ — plus a concrete
finite-memory sampler family realizing the γ ↔ memory trade-off the bound
predicts is optimal.
"""

from repro.lowerbound.equality import (
    EqualityReduction,
    FingerprintSampler,
    ExactTurnstileSampler,
    refutation_bound_bits,
    measure_advantage,
)

__all__ = [
    "EqualityReduction",
    "FingerprintSampler",
    "ExactTurnstileSampler",
    "refutation_bound_bits",
    "measure_advantage",
]
