"""Statistical validation harness.

Truly perfect means the output distribution *equals* the target; the only
deviation an experiment can show is Monte-Carlo noise.  This subpackage
computes target distributions, distances (TV, χ²), runs samplers over many
trials, and models the downstream phenomena the paper motivates truly
perfect sampling with: error accumulation across stream portions and
distinguishing attacks on biased samplers.
"""

from repro.stats.distributions import (
    f0_target,
    g_target,
    lp_target,
    row_target,
)
from repro.stats.distance import (
    chi_square_gof,
    expected_tv_noise,
    total_variation,
)
from repro.stats.harness import (
    EvaluationReport,
    assert_matches_distribution,
    collect_outcomes,
    empirical_distribution,
    evaluate,
)
from repro.stats.accumulation import (
    bernoulli_accumulation,
    joint_tv_upper,
    portioned_drift,
)
from repro.stats.attack import (
    AttackReport,
    distinguishing_attack,
)

__all__ = [
    "f0_target",
    "g_target",
    "lp_target",
    "row_target",
    "chi_square_gof",
    "expected_tv_noise",
    "total_variation",
    "EvaluationReport",
    "assert_matches_distribution",
    "collect_outcomes",
    "empirical_distribution",
    "evaluate",
    "bernoulli_accumulation",
    "joint_tv_upper",
    "portioned_drift",
    "AttackReport",
    "distinguishing_attack",
]
