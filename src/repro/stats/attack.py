"""Distinguishing attacks on biased samplers (the privacy motivation).

A non-truly-perfect sampler "may positively bias a certain subset
S ⊂ [n] … given sufficiently many samples, an onlooker would be able to
easily distinguish" (Section 1).  The attack here is the natural one: the
observer counts how many of ``N`` samples fall in the suspected bias set
and thresholds at the midpoint between the two hypotheses' means.  Its
advantage grows with ``√N·γ`` for the biased sampler and stays at zero
(up to Monte-Carlo noise) against a truly perfect one.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterable

import numpy as np

from repro.core.types import SampleResult

__all__ = ["AttackReport", "distinguishing_attack"]


@dataclasses.dataclass(frozen=True)
class AttackReport:
    """Outcome of a distinguishing experiment."""

    samples_per_batch: int
    batches: int
    advantage: float  # P[attacker says "biased" | biased] − P[... | unbiased]
    mean_statistic_unbiased: float
    mean_statistic_biased: float


def _batch_statistic(
    run: Callable[[int], SampleResult],
    bias_set: frozenset[int],
    n_samples: int,
    seed_offset: int,
) -> float:
    hits = 0
    total = 0
    for k in range(n_samples):
        res = run(seed_offset + k)
        if res.is_item:
            total += 1
            if res.item in bias_set:
                hits += 1
    if total == 0:
        return 0.0
    return hits / total


def distinguishing_attack(
    run_unbiased: Callable[[int], SampleResult],
    run_biased: Callable[[int], SampleResult],
    bias_items: Iterable[int],
    samples_per_batch: int,
    batches: int = 40,
    seed: int = 0,
) -> AttackReport:
    """Measure the attacker's advantage at ``samples_per_batch`` samples.

    The attacker sees one batch from an unknown sampler and outputs
    "biased" when the bias-set hit rate exceeds the midpoint of the two
    hypotheses' empirical means (a plug-in likelihood-ratio threshold).
    """
    bias_set = frozenset(bias_items)
    rng = np.random.default_rng(seed)
    stats_unbiased = []
    stats_biased = []
    for b in range(batches):
        offset = int(rng.integers(0, 2**31))
        stats_unbiased.append(
            _batch_statistic(run_unbiased, bias_set, samples_per_batch, offset)
        )
        offset = int(rng.integers(0, 2**31))
        stats_biased.append(
            _batch_statistic(run_biased, bias_set, samples_per_batch, offset)
        )
    mean_u = float(np.mean(stats_unbiased))
    mean_b = float(np.mean(stats_biased))
    threshold = (mean_u + mean_b) / 2.0
    p_say_biased_given_biased = float(np.mean([s > threshold for s in stats_biased]))
    p_say_biased_given_unbiased = float(
        np.mean([s > threshold for s in stats_unbiased])
    )
    return AttackReport(
        samples_per_batch=samples_per_batch,
        batches=batches,
        advantage=p_say_biased_given_biased - p_say_biased_given_unbiased,
        mean_statistic_unbiased=mean_u,
        mean_statistic_biased=mean_b,
    )
