"""The trial harness: run a sampler many times, compare to the target.

The central abstraction is a *trial function* ``run(seed) -> SampleResult``
— one fully independent sampler construction + stream replay + query.
Everything else (empirical distribution, χ², TV, fail rates) derives from
the outcome counts.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from collections.abc import Callable

import numpy as np

from repro.core.types import SampleResult
from repro.stats.distance import chi_square_gof, expected_tv_noise, total_variation

__all__ = [
    "collect_outcomes",
    "empirical_distribution",
    "EvaluationReport",
    "evaluate",
    "assert_matches_distribution",
]


def collect_outcomes(
    run: Callable[[int], SampleResult],
    trials: int,
    seed_offset: int = 0,
) -> tuple[Counter, int, int]:
    """Run ``trials`` independent trials; return (item counts, #fail,
    #empty)."""
    counts: Counter = Counter()
    fails = 0
    empties = 0
    for trial in range(trials):
        result = run(seed_offset + trial)
        if result.is_item:
            counts[result.item] += 1
        elif result.is_fail:
            fails += 1
        else:
            empties += 1
    return counts, fails, empties


def empirical_distribution(counts: Counter, n: int) -> np.ndarray:
    """Normalize item counts over the universe ``[0, n)``."""
    total = sum(counts.values())
    if total == 0:
        raise ValueError("no successful samples")
    dist = np.zeros(n, dtype=np.float64)
    for item, c in counts.items():
        dist[item] = c
    return dist / total


@dataclasses.dataclass(frozen=True)
class EvaluationReport:
    """Summary of one sampler-vs-target evaluation."""

    trials: int
    successes: int
    fails: int
    empties: int
    tv: float
    tv_noise_floor: float
    chi2_stat: float
    chi2_pvalue: float

    @property
    def fail_rate(self) -> float:
        return self.fails / self.trials if self.trials else 0.0

    @property
    def success_rate(self) -> float:
        return self.successes / self.trials if self.trials else 0.0

    def row(self, label: str) -> str:
        """One formatted table row for benchmark output."""
        return (
            f"{label:<28s} trials={self.trials:<6d} ok={self.success_rate:6.1%} "
            f"fail={self.fail_rate:6.1%} TV={self.tv:.4f} "
            f"(noise≈{self.tv_noise_floor:.4f}) chi2 p={self.chi2_pvalue:.3f}"
        )


def assert_matches_distribution(
    run: Callable[[int], SampleResult],
    target: np.ndarray,
    trials: int,
    min_pvalue: float = 1e-3,
    tv_factor: float = 3.0,
    max_fail_rate: float | None = None,
    seed_offset: int = 0,
) -> EvaluationReport:
    """Assert the sampler's conditional output equals ``target``.

    The workhorse exactness check: statistical assertions use *fixed
    seeds*, so every run is deterministic; it demands both a healthy χ²
    p-value and a TV distance within a small multiple of the Monte-Carlo
    noise floor — the two signatures of a truly perfect sampler.  Raises
    ``AssertionError`` with a diagnostic message on violation.
    """
    report = evaluate(run, target, trials=trials, seed_offset=seed_offset)
    assert report.successes > 0, "sampler never returned an item"
    assert report.chi2_pvalue >= min_pvalue, (
        f"chi-square rejects exactness: p={report.chi2_pvalue:.2e}, "
        f"TV={report.tv:.4f} (noise {report.tv_noise_floor:.4f})"
    )
    assert report.tv <= tv_factor * report.tv_noise_floor, (
        f"TV {report.tv:.4f} exceeds {tv_factor}x noise floor "
        f"{report.tv_noise_floor:.4f}"
    )
    if max_fail_rate is not None:
        assert report.fail_rate <= max_fail_rate, (
            f"fail rate {report.fail_rate:.3f} exceeds {max_fail_rate}"
        )
    return report


def evaluate(
    run: Callable[[int], SampleResult],
    target: np.ndarray,
    trials: int,
    seed_offset: int = 0,
) -> EvaluationReport:
    """Collect trials and compare the conditional (non-FAIL) output
    distribution to ``target``."""
    counts, fails, empties = collect_outcomes(run, trials, seed_offset)
    successes = sum(counts.values())
    n = int(np.asarray(target).size)
    if successes == 0:
        return EvaluationReport(
            trials, 0, fails, empties, 1.0, 1.0, float("inf"), 0.0
        )
    empirical = empirical_distribution(counts, n)
    tv = total_variation(empirical, target)
    support = int((np.asarray(target) > 0).sum())
    noise = expected_tv_noise(support, successes)
    observed = np.zeros(n)
    for item, c in counts.items():
        observed[item] = c
    stat, pvalue = chi_square_gof(observed, np.asarray(target))
    return EvaluationReport(
        trials=trials,
        successes=successes,
        fails=fails,
        empties=empties,
        tv=tv,
        tv_noise_floor=noise,
        chi2_stat=stat,
        chi2_pvalue=pvalue,
    )
