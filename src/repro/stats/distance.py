"""Distribution distances and goodness-of-fit tests."""

from __future__ import annotations

import math

import numpy as np
from scipy import stats as sps

__all__ = [
    "total_variation",
    "chi_square_gof",
    "expected_tv_noise",
    "tv_upper_bound",
]


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """``TV(p, q) = ½ Σ |p_i − q_i|``."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError("distributions must have the same shape")
    return float(0.5 * np.abs(p - q).sum())


def expected_tv_noise(support_size: int, samples: int) -> float:
    """Expected TV between the empirical and true distribution of an
    *exact* sampler: ≈ ``√(k/(2π·N))·...`` — we use the standard
    ``√((k−1)/(4N))``-flavoured bound ``√(k/N)/2`` as the Monte-Carlo
    noise floor experiments compare against."""
    if samples <= 0:
        return 1.0
    return 0.5 * math.sqrt(support_size / samples)


def tv_upper_bound(
    observed_tv: float,
    support_size: int,
    samples: int,
    delta: float = 0.05,
) -> float:
    """A certified upper bound on the *true* TV distance given the
    empirical TV of ``samples`` draws over ``support_size`` outcomes.

    Triangle inequality: ``TV(out, target) ≤ TV(emp, target) +
    TV(emp, out)``.  The second term is bounded by the Monte-Carlo noise
    floor :func:`expected_tv_noise` plus a McDiarmid deviation term
    ``√(ln(1/δ)/(2N))`` (empirical TV is a 1/N-bounded-difference
    function of the draws), so the bound holds with probability
    ``1 − δ`` over the sampling.  Clamped to ``[0, 1]``.
    """
    if samples <= 0:
        return 1.0
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    bound = (
        float(observed_tv)
        + expected_tv_noise(support_size, samples)
        + math.sqrt(math.log(1.0 / delta) / (2.0 * samples))
    )
    return float(min(1.0, max(0.0, bound)))


def chi_square_gof(
    counts: np.ndarray,
    expected_probs: np.ndarray,
    min_expected: float = 5.0,
) -> tuple[float, float]:
    """Pearson χ² goodness-of-fit with low-expectation pooling.

    Cells whose expected count falls below ``min_expected`` are merged
    into one pooled cell (standard practice — χ²'s asymptotics need
    non-trivial expectations).  Returns ``(statistic, p_value)``.
    """
    counts = np.asarray(counts, dtype=np.float64)
    probs = np.asarray(expected_probs, dtype=np.float64)
    if counts.shape != probs.shape:
        raise ValueError("counts and probabilities must align")
    n = counts.sum()
    if n <= 0:
        raise ValueError("no observations")
    expected = probs * n
    big = expected >= min_expected
    obs_cells = list(counts[big])
    exp_cells = list(expected[big])
    pooled_obs = counts[~big].sum()
    pooled_exp = expected[~big].sum()
    if pooled_exp > 0:
        obs_cells.append(pooled_obs)
        exp_cells.append(pooled_exp)
    if len(obs_cells) < 2:
        return 0.0, 1.0
    obs = np.asarray(obs_cells)
    exp = np.asarray(exp_cells)
    # Guard scipy's sum-match requirement against float drift.
    exp = exp * (obs.sum() / exp.sum())
    stat, pvalue = sps.chisquare(obs, exp)
    return float(stat), float(pvalue)
