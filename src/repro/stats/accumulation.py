"""Variation-distance accumulation over successive stream portions.

The paper's introduction: samplers restarted on ``s`` successive portions
of a stream (or ``s`` distributed shards) multiply their output
distributions — a point-wise γ-biased sampler drifts in joint TV like
``1 − (1 − γ)^s ≈ s·γ``, while a truly perfect sampler's joint output
*is* the product target, staying at zero for any ``s``.
"""

from __future__ import annotations

import numpy as np

from repro.stats.distance import total_variation

__all__ = ["bernoulli_accumulation", "joint_tv_upper", "portioned_drift"]


def bernoulli_accumulation(gamma: float, portions: int) -> float:
    """Joint-TV growth of the planted-bias model: the joint distribution
    of ``s`` independent γ-mixtures is at TV exactly
    ``1 − (1 − γ)^s`` from the product target when the planted component
    is disjoint from the target's bias direction (worst case)."""
    if not 0 <= gamma <= 1:
        raise ValueError("gamma must be in [0, 1]")
    return 1.0 - (1.0 - gamma) ** portions


def joint_tv_upper(per_portion_tv: float, portions: int) -> float:
    """Subadditivity: ``TV(⊗p_i, ⊗q_i) ≤ Σ TV(p_i, q_i)`` (capped at 1)."""
    return min(1.0, per_portion_tv * portions)


def portioned_drift(
    per_portion_output: np.ndarray,
    per_portion_target: np.ndarray,
    portions: int,
) -> dict[str, float]:
    """Summary of the drift between joint output and joint target.

    Exact joint TV over ``s`` portions is computed via the mixture
    structure: if each portion's output is ``(1−γ_eff)·target + γ_eff·b``
    with TV ``t = TV(output, target)``, the joint TV satisfies
    ``1 − (1 − t)^s ≤ joint ≤ min(1, s·t)``; both ends are reported.
    """
    t = total_variation(per_portion_output, per_portion_target)
    return {
        "per_portion_tv": t,
        "joint_lower": bernoulli_accumulation(t, portions),
        "joint_upper": joint_tv_upper(t, portions),
    }
