"""Target output distributions for every sampler family."""

from __future__ import annotations

import numpy as np

__all__ = ["g_target", "lp_target", "f0_target", "row_target"]


def g_target(frequencies: np.ndarray, measure) -> np.ndarray:
    """``G(f_i)/F_G`` over the universe (Definition 1.1 with ε = γ = 0)."""
    freq = np.asarray(frequencies)
    weights = np.array([measure(abs(float(f))) for f in freq], dtype=np.float64)
    total = weights.sum()
    if total <= 0:
        raise ValueError("zero frequency vector has no target distribution")
    return weights / total


def lp_target(frequencies: np.ndarray, p: float) -> np.ndarray:
    """``|f_i|^p / F_p``."""
    freq = np.abs(np.asarray(frequencies, dtype=np.float64))
    weights = np.where(freq > 0, freq**p, 0.0)
    total = weights.sum()
    if total <= 0:
        raise ValueError("zero frequency vector has no target distribution")
    return weights / total


def f0_target(frequencies: np.ndarray) -> np.ndarray:
    """Uniform over the support."""
    freq = np.asarray(frequencies)
    support = (freq != 0).astype(np.float64)
    total = support.sum()
    if total <= 0:
        raise ValueError("zero frequency vector has no support")
    return support / total


def row_target(matrix: np.ndarray, row_measure) -> np.ndarray:
    """``G(m_r)/Σ_j G(m_j)`` for a row measure over a dense matrix."""
    weights = np.array(
        [
            row_measure.value({j: int(v) for j, v in enumerate(row) if v})
            for row in np.asarray(matrix)
        ],
        dtype=np.float64,
    )
    total = weights.sum()
    if total <= 0:
        raise ValueError("zero matrix has no target distribution")
    return weights / total
