"""A controlled additive-γ sampler — the experiments' bias instrument.

``BiasedGSampler`` samples from the *exact* target distribution with
probability ``1 − γ`` and from a planted alternative with probability
``γ``: its output distribution is point-wise within ``γ`` of the target,
i.e. it is exactly an ``(0, γ, 0)``-sampler in the sense of
Definition 1.1.  It is a *model*, not a streaming algorithm (it keeps the
exact frequency vector) — its purpose is to give the error-accumulation
(E16) and distinguishing-attack (E17) experiments a sampler whose γ is
known exactly, isolating the downstream effect the paper's introduction
describes from any particular algorithm's implementation detail.

The planted alternative mirrors the paper's privacy discussion: a biased
sampler "may positively bias a certain subset S ⊂ [n]" — here the bias
set is explicit.
"""

from __future__ import annotations

import numpy as np

from repro.core.measures import Measure
from repro.core.types import SampleResult
from repro.lifecycle.memory import INSTANCE_BYTES
from repro.lifecycle.protocol import StaticLifecycleMixin

__all__ = ["BiasedGSampler", "register_biased_kind"]


class BiasedGSampler(StaticLifecycleMixin):
    """Exact G-sampler with a planted point-wise-γ bias.

    Parameters
    ----------
    measure:
        Target measure ``G``.
    n:
        Universe size.
    gamma:
        Additive bias (``0`` makes the sampler truly perfect).
    bias_items:
        The favoured subset ``S``; with probability γ the output is drawn
        uniformly from ``S ∩ support`` (falling back to the target
        distribution when the intersection is empty).
    """

    def __init__(
        self,
        measure: Measure,
        n: int,
        gamma: float = 0.0,
        bias_items: list[int] | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0 <= gamma < 1:
            raise ValueError("gamma must be in [0, 1)")
        self._measure = measure
        self._n = n
        self._gamma = gamma
        self._bias = list(bias_items) if bias_items else [0]
        self._freq = np.zeros(n, dtype=np.int64)
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        self._t = 0

    @property
    def gamma(self) -> float:
        return self._gamma

    @property
    def position(self) -> int:
        return self._t

    def update(self, item: int) -> None:
        self._t += 1
        self._freq[item] += 1

    def update_batch(self, items) -> None:
        arr = np.asarray(items, dtype=np.int64)
        if arr.size == 0:
            return
        np.add.at(self._freq, arr, 1)
        self._t += int(arr.size)

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    # -- lifecycle (StreamSampler protocol; compact/watermark from the
    # static mixin — there is no wall clock and nothing to expire) ----------
    def snapshot(self) -> dict:
        return {
            "kind": "biased_g",
            "n": self._n,
            "gamma": self._gamma,
            "bias": np.asarray(self._bias, dtype=np.int64),
            "t": self._t,
            "freq": self._freq.copy(),
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "biased_g":
            raise ValueError(f"not a biased_g snapshot: {state.get('kind')!r}")
        self._n = int(state["n"])
        self._gamma = float(state["gamma"])
        self._bias = [int(i) for i in state["bias"]]
        self._t = int(state["t"])
        self._freq = np.asarray(state["freq"], dtype=np.int64).copy()

    def merge(self, other: "BiasedGSampler") -> None:
        if not isinstance(other, BiasedGSampler):
            raise TypeError(
                f"cannot merge BiasedGSampler with {type(other).__name__}"
            )
        if (
            other._n != self._n
            or other._gamma != self._gamma
            or other._bias != self._bias
        ):
            raise ValueError("biased_g merge requires identical parameters")
        self._freq += other._freq
        self._t += other._t

    def approx_size_bytes(self) -> int:
        return INSTANCE_BYTES + self._freq.nbytes

    def target_distribution(self) -> np.ndarray:
        weights = np.array([self._measure(f) for f in self._freq], dtype=np.float64)
        total = weights.sum()
        if total <= 0:
            raise ValueError("zero frequency vector")
        return weights / total

    def output_distribution(self) -> np.ndarray:
        """The exact (analytic) output distribution, for TV computations."""
        target = self.target_distribution()
        alive = [i for i in self._bias if self._freq[i] > 0]
        if not alive or self._gamma == 0:
            return target
        biased = np.zeros(self._n)
        biased[alive] = 1.0 / len(alive)
        return (1.0 - self._gamma) * target + self._gamma * biased

    def sample(self) -> SampleResult:
        if self._t == 0:
            return SampleResult.empty()
        dist = self.output_distribution()
        item = int(self._rng.choice(self._n, p=dist))
        return SampleResult.of(item)

    def sample_many(self, k: int) -> list[SampleResult]:
        """``k`` draws, consuming coins exactly as ``k`` sequential
        :meth:`sample` calls (the engine's batched-query contract)."""
        return [self.sample() for _ in range(int(k))]

    def run(self, stream) -> SampleResult:
        self.extend(stream)
        return self.sample()


def register_biased_kind(kind: str = "biased_g") -> str:
    """Register the biased sampler as an engine kind *and* an audit
    profile — the audit plane's built-in fault injection.

    Config shape: ``{"kind": "biased_g", "measure": {...}, "n": ...,
    "gamma": ..., "bias_items": [...], "seed": ...}``.  With
    ``gamma=0`` the sampler is truly perfect (the specificity control);
    with ``gamma>0`` its output is point-wise within γ of the target —
    exactly the fault the sequential monitor must flag.  Idempotent;
    returns the registered kind name.  Imports are deferred so this
    module stays importable without the engine/audit stack.
    """
    from repro.engine.registry import build_measure, register_sampler
    from repro.obs.audit import (
        AuditProfile,
        _measure_weight,
        register_audit_profile,
    )

    def _build(cfg: dict) -> BiasedGSampler:
        seed = cfg.pop("seed", None)
        cfg.pop("delta", None)  # config-shape parity with registry kinds
        return BiasedGSampler(
            build_measure(cfg.pop("measure")),
            n=int(cfg.pop("n")),
            gamma=float(cfg.pop("gamma", 0.0)),
            bias_items=cfg.pop("bias_items", None),
            seed=seed,
        )

    register_sampler(kind, _build)

    def _profile(config: dict, query_kwargs) -> AuditProfile:
        return AuditProfile(
            "frequency",
            weight=_measure_weight(build_measure(config["measure"])),
        )

    register_audit_profile(kind, _profile)
    return kind
