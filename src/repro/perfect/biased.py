"""A controlled additive-γ sampler — the experiments' bias instrument.

``BiasedGSampler`` samples from the *exact* target distribution with
probability ``1 − γ`` and from a planted alternative with probability
``γ``: its output distribution is point-wise within ``γ`` of the target,
i.e. it is exactly an ``(0, γ, 0)``-sampler in the sense of
Definition 1.1.  It is a *model*, not a streaming algorithm (it keeps the
exact frequency vector) — its purpose is to give the error-accumulation
(E16) and distinguishing-attack (E17) experiments a sampler whose γ is
known exactly, isolating the downstream effect the paper's introduction
describes from any particular algorithm's implementation detail.

The planted alternative mirrors the paper's privacy discussion: a biased
sampler "may positively bias a certain subset S ⊂ [n]" — here the bias
set is explicit.
"""

from __future__ import annotations

import numpy as np

from repro.core.measures import Measure
from repro.core.types import SampleResult

__all__ = ["BiasedGSampler"]


class BiasedGSampler:
    """Exact G-sampler with a planted point-wise-γ bias.

    Parameters
    ----------
    measure:
        Target measure ``G``.
    n:
        Universe size.
    gamma:
        Additive bias (``0`` makes the sampler truly perfect).
    bias_items:
        The favoured subset ``S``; with probability γ the output is drawn
        uniformly from ``S ∩ support`` (falling back to the target
        distribution when the intersection is empty).
    """

    def __init__(
        self,
        measure: Measure,
        n: int,
        gamma: float = 0.0,
        bias_items: list[int] | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0 <= gamma < 1:
            raise ValueError("gamma must be in [0, 1)")
        self._measure = measure
        self._n = n
        self._gamma = gamma
        self._bias = list(bias_items) if bias_items else [0]
        self._freq = np.zeros(n, dtype=np.int64)
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        self._t = 0

    @property
    def gamma(self) -> float:
        return self._gamma

    def update(self, item: int) -> None:
        self._t += 1
        self._freq[item] += 1

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def target_distribution(self) -> np.ndarray:
        weights = np.array([self._measure(f) for f in self._freq], dtype=np.float64)
        total = weights.sum()
        if total <= 0:
            raise ValueError("zero frequency vector")
        return weights / total

    def output_distribution(self) -> np.ndarray:
        """The exact (analytic) output distribution, for TV computations."""
        target = self.target_distribution()
        alive = [i for i in self._bias if self._freq[i] > 0]
        if not alive or self._gamma == 0:
            return target
        biased = np.zeros(self._n)
        biased[alive] = 1.0 / len(alive)
        return (1.0 - self._gamma) * target + self._gamma * biased

    def sample(self) -> SampleResult:
        if self._t == 0:
            return SampleResult.empty()
        dist = self.output_distribution()
        item = int(self._rng.choice(self._n, p=dist))
        return SampleResult.of(item)

    def run(self, stream) -> SampleResult:
        self.extend(stream)
        return self.sample()
