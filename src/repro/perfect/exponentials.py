"""Exponential-scaling machinery for precision sampling (Appendix B).

The core fact (Lemma B.3 / [Nag06]): if ``E_i`` are independent rate-1
exponentials, then ``argmax_i f_i/E_i^{1/p}`` equals ``i`` with probability
exactly ``f_i^p/F_p`` — because ``(f_i/E_i^{1/p})^{-p} = E_i/f_i^p`` is an
exponential with rate ``f_i^p`` and the minimum of independent
exponentials picks index ``i`` with probability proportional to its rate.

``ExponentialAssignment`` provides lazily generated, *consistent* per-key
exponentials: every reference to key ``(item, duplicate)`` sees the same
draw, which is what the paper's Nisan-PRG derandomization buys and what a
seeded counter-based PRG gives us directly (DESIGN.md §4).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["ExponentialAssignment", "sample_p_stable"]


class ExponentialAssignment:
    """Consistent lazy table of ``1/E^{1/p}`` scalings.

    Parameters
    ----------
    p:
        The Lp order (the scaling exponent is ``1/p``).
    seed:
        Master seed; key draws are derived as ``default_rng([seed, item,
        dup])`` so the table is reproducible without storing it (the
        random-oracle substitution).
    """

    __slots__ = ("_p", "_seed", "_cache")

    def __init__(self, p: float, seed: int = 0) -> None:
        if p <= 0:
            raise ValueError("p must be positive")
        self._p = p
        self._seed = int(seed)
        self._cache: dict[tuple[int, int], float] = {}

    @property
    def p(self) -> float:
        return self._p

    def exponential(self, item: int, dup: int = 0) -> float:
        """The raw exponential ``E_{item,dup}``."""
        key = (item, dup)
        val = self._cache.get(key)
        if val is None:
            rng = np.random.default_rng([self._seed, item, dup])
            val = float(rng.exponential(1.0))
            self._cache[key] = val
        return val

    def scale(self, item: int, dup: int = 0) -> float:
        """``1/E_{item,dup}^{1/p}`` — the update weight of precision
        sampling."""
        return self.exponential(item, dup) ** (-1.0 / self._p)

    def argmax_exact(self, frequencies: np.ndarray, duplication: int = 1) -> int:
        """Oracle: the exact argmax of the scaled duplicated vector —
        an *exactly* ``f_i^p/F_p``-distributed index (used as the ground
        truth the sketch-based samplers approximate)."""
        best_val = -math.inf
        best_item = -1
        for i, f in enumerate(frequencies):
            if f == 0:
                continue
            for j in range(duplication):
                val = abs(float(f)) * self.scale(i, j)
                if val > best_val:
                    best_val = val
                    best_item = i
        if best_item < 0:
            raise ValueError("zero frequency vector has no argmax")
        return best_item


def sample_p_stable(
    p: float, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Standard p-stable samples via Chambers–Mallows–Stuck.

    Theorem B.10 approximates ``Σ_j 1/e_j^{1/p}`` by a p-stable draw —
    the trick behind the polylog update time of Corollary B.11.  Valid for
    ``p ∈ (0, 2)``, ``p ≠ 1``.
    """
    if not 0 < p < 2 or p == 1:
        raise ValueError("CMS sampling requires p in (0,2), p != 1")
    theta = rng.uniform(-math.pi / 2.0, math.pi / 2.0, size=size)
    w = rng.exponential(1.0, size=size)
    num = np.sin(p * theta) / np.cos(theta) ** (1.0 / p)
    tail = (np.cos((1.0 - p) * theta) / w) ** ((1.0 - p) / p)
    return num * tail
