"""Algorithm 7 / Theorem B.7 — perfect (γ > 0) Lp sampling for
``p ∈ (0, 1)`` on sliding windows.

Structure, following the paper:

* every update to item ``i`` spawns ``D`` duplicated weighted instances
  ``z_{i,j} = 1/e_{i,j}^{1/p}`` (consistent exponentials);
* geometric *level sets* ``S_k`` hold a ``~c₀/2^k`` subsample of the
  instances, with timestamps so expired instances can be dropped;
* at query time the level matching the window's total instance count is
  inspected: if a single duplicated key holds a majority of the level's
  sample, its base item is output (Lemma B.5: the scaled max dominates
  with constant probability; Lemma B.6: which item wins perturbs the
  failure event only by 1/poly — the additive γ).

The window's total instance count is maintained with an exact rolling
sum (O(W) counters); the paper uses a [BO07] estimate — the substitution
only sharpens the level choice and does not affect the γ source (the
majority test).  This sampler is *perfect*, not truly perfect: the
benchmarks measure its γ against the truly perfect samplers.
"""

from __future__ import annotations

import math
from collections import Counter, deque

import numpy as np

from repro.core.types import SampleResult
from repro.perfect.exponentials import ExponentialAssignment

__all__ = ["SlidingWindowPerfectLpSampler"]


class _LevelSet:
    """One geometric level: a timestamped subsample of instances."""

    __slots__ = ("rate", "cap", "members")

    def __init__(self, rate: float, cap: int) -> None:
        self.rate = rate
        self.cap = cap
        self.members: deque[tuple[int, int]] = deque()  # (key, timestamp)


class SlidingWindowPerfectLpSampler:
    """Perfect Lp sampler (``p ∈ (0,1)``) over the last ``window`` updates.

    Parameters
    ----------
    p, n, window:
        Order, universe, and window size.
    duplication:
        The ``n^c`` knob; γ shrinks with it (and update cost grows).
    level_size:
        Target subsample size per level (the paper's ``100·c·log n``).
    """

    def __init__(
        self,
        p: float,
        n: int,
        window: int,
        duplication: int = 8,
        level_size: int = 48,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0 < p < 1:
            raise ValueError("requires p in (0, 1)")
        if window < 1:
            raise ValueError("window must be ≥ 1")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self._p = p
        self._n = n
        self._window = window
        self._dup = duplication
        self._exp = ExponentialAssignment(p, int(rng.integers(2**31)))
        self._rng = rng
        self._level_size = level_size
        self._levels: dict[int, _LevelSet] = {}
        self._recent_weights: deque[float] = deque()  # per-update instance mass
        self._window_weight = 0.0
        self._t = 0

    @property
    def p(self) -> float:
        return self._p

    @property
    def window(self) -> int:
        return self._window

    @property
    def duplication(self) -> int:
        return self._dup

    @property
    def position(self) -> int:
        return self._t

    def _level(self, k: int) -> _LevelSet:
        level = self._levels.get(k)
        if level is None:
            rate = min(1.0, self._level_size / 2.0**k)
            level = _LevelSet(rate, 8 * self._level_size)
            self._levels[k] = level
        return level

    def update(self, item: int) -> None:
        self._t += 1
        t = self._t
        dup = self._dup
        total = 0.0
        max_level = max(
            1, int(math.log2(max(self._window_weight, 2.0))) + 3
        )
        for j in range(dup):
            weight = self._exp.scale(item, j)
            total += weight
            # The weight stands for ~weight unit instances; each level
            # subsamples them Binomially at its rate.
            instances = int(weight) + (self._rng.random() < weight - int(weight))
            if instances <= 0:
                continue
            key = item * dup + j
            for k in range(1, max_level + 1):
                level = self._level(k)
                if len(level.members) >= level.cap:
                    continue
                if level.rate >= 1.0:
                    hits = instances
                else:
                    hits = int(self._rng.binomial(min(instances, 10**9), level.rate))
                for __ in range(min(hits, level.cap - len(level.members))):
                    level.members.append((key, t))
        # Rolling window mass.
        self._recent_weights.append(total)
        self._window_weight += total
        if len(self._recent_weights) > self._window:
            self._window_weight -= self._recent_weights.popleft()
        self._expire()

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def _expire(self) -> None:
        cutoff = self._t - self._window
        for level in self._levels.values():
            while level.members and level.members[0][1] <= cutoff:
                level.members.popleft()

    def sample(self) -> SampleResult:
        """Majority test at the level matching the window's mass."""
        if self._t == 0:
            return SampleResult.empty()
        self._expire()
        mass = max(self._window_weight, 1.0)
        k = max(1, int(math.log2(mass)))
        level = self._levels.get(k)
        if level is None or not level.members:
            return SampleResult.fail(level=k)
        counts = Counter(key for key, __ in level.members)
        key, c = counts.most_common(1)[0]
        if c * 2 <= len(level.members):
            return SampleResult.fail(level=k, majority=c / len(level.members))
        return SampleResult.of(
            key // self._dup, duplicate=key % self._dup, level=k
        )

    def run(self, stream) -> SampleResult:
        self.extend(stream)
        return self.sample()
