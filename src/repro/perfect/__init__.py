"""Perfect — but *not truly* perfect — samplers (Appendix B, baselines).

These samplers carry the ``γ = 1/poly(n)`` additive error the paper's
lower bound (Theorem 1.2) shows is unavoidable for one-pass turnstile
algorithms, and that Framework 1.3 eliminates in the insertion-only model:

* :class:`FastPerfectLpSampler` — Algorithm 8 / Theorem B.9: exponential
  scaling with item duplication + a deterministic weighted heavy-hitter
  test; ``p < 1``.
* :class:`PrecisionSamplingLpSampler` — the [JW18b]-style baseline:
  CountSketch over the exponentially scaled vector with a dominance test;
  exposes the duplication (update-time) and sketch-width (γ) knobs the
  benchmarks sweep.
* :class:`BiasedGSampler` — a *model instrument*: an exact sampler with a
  planted additive-γ bias, used by the error-accumulation and
  distinguishing-attack experiments to realize a precisely known γ.
"""

from repro.perfect.exponentials import (
    ExponentialAssignment,
    sample_p_stable,
)
from repro.perfect.fast_lp import FastPerfectLpSampler, WeightedMisraGries
from repro.perfect.precision_sampling import PrecisionSamplingLpSampler
from repro.perfect.window_lp import SlidingWindowPerfectLpSampler
from repro.perfect.biased import BiasedGSampler

__all__ = [
    "ExponentialAssignment",
    "sample_p_stable",
    "FastPerfectLpSampler",
    "WeightedMisraGries",
    "PrecisionSamplingLpSampler",
    "SlidingWindowPerfectLpSampler",
    "BiasedGSampler",
]
