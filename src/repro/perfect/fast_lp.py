"""Algorithm 8 / Theorem B.9 — fast perfect Lp sampling, ``p < 1``,
insertion-only streams.

Each stream update to item ``i`` conceptually inserts, for every duplicate
``j < D``, ``1/e_{i,j}^{1/p}`` copies of the duplicated key ``(i, j)``
into a derived stream; a Misra–Gries structure over that weighted stream
reports a key holding at least half the total weight, which Lemma B.5
shows is the scaled maximum with constant probability.  The output is
exactly ``f_i^p/F_p``-distributed up to an additive ``1/poly(D)``
(Lemma B.6) — *perfect*, never truly perfect, and the benchmarks measure
exactly that gap shrinking as ``D`` grows.

``WeightedMisraGries`` generalizes the classic summary to real-valued
increments, preserving determinism (the property the paper leans on) and
the ``total/(capacity+1)`` error bound.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import SampleResult
from repro.perfect.exponentials import ExponentialAssignment

__all__ = ["WeightedMisraGries", "FastPerfectLpSampler"]


class WeightedMisraGries:
    """Misra–Gries with non-negative real weights.

    Deterministic guarantee: every key's estimate satisfies
    ``w(key) − total/(capacity+1) ≤ est(key) ≤ w(key)``.
    """

    __slots__ = ("_capacity", "_counters", "_total")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be ≥ 1")
        self._capacity = capacity
        self._counters: dict[int, float] = {}
        self._total = 0.0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def total(self) -> float:
        return self._total

    def update(self, key: int, weight: float) -> None:
        if weight < 0:
            raise ValueError("weights must be non-negative")
        self._total += weight
        counters = self._counters
        if key in counters:
            counters[key] += weight
            return
        if len(counters) < self._capacity:
            counters[key] = weight
            return
        smallest = min(counters.values())
        decrement = min(weight, smallest)
        remaining = weight - decrement
        dead = [k for k in counters if counters[k] - decrement <= 0]
        for k in counters:
            counters[k] -= decrement
        for k in dead:
            del counters[k]
        if remaining > 0:
            self.update(key, remaining)

    def estimate(self, key: int) -> float:
        return self._counters.get(key, 0.0)

    def argmax(self) -> tuple[int | None, float]:
        if not self._counters:
            return None, 0.0
        key = max(self._counters, key=self._counters.get)
        return key, self._counters[key]


class FastPerfectLpSampler:
    """Perfect (γ = 1/poly(duplication)) Lp sampler for ``p ∈ (0, 1)``.

    Parameters
    ----------
    p:
        Order in ``(0, 1)``.
    n:
        Universe size.
    duplication:
        The paper's ``n^c`` knob; larger values shrink the additive error
        and grow the per-update cost linearly — the trade-off Theorem 1.4
        eliminates for truly perfect samplers.
    capacity:
        Weighted Misra–Gries capacity (the ε = 1/100 structure of
        Theorem B.9 corresponds to capacity 100).
    """

    def __init__(
        self,
        p: float,
        n: int,
        duplication: int = 16,
        capacity: int = 64,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0 < p < 1:
            raise ValueError("FastPerfectLpSampler requires p in (0, 1)")
        if duplication < 1:
            raise ValueError("duplication must be ≥ 1")
        base_seed = (
            int(seed.integers(0, 2**31)) if isinstance(seed, np.random.Generator)
            else (seed if seed is not None else 0)
        )
        self._p = p
        self._n = n
        self._dup = duplication
        self._exp = ExponentialAssignment(p, base_seed)
        self._mg = WeightedMisraGries(capacity)
        self._t = 0

    @property
    def p(self) -> float:
        return self._p

    @property
    def duplication(self) -> int:
        return self._dup

    @property
    def position(self) -> int:
        return self._t

    def update(self, item: int) -> None:
        """O(duplication) weighted updates — the cost the benchmark sweeps."""
        self._t += 1
        dup = self._dup
        for j in range(dup):
            key = item * dup + j
            self._mg.update(key, self._exp.scale(item, j))

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def sample(self) -> SampleResult:
        """Report the dominant duplicated key's base item, if dominant."""
        if self._t == 0:
            return SampleResult.empty()
        key, est = self._mg.argmax()
        if key is None:
            return SampleResult.fail()
        # Theorem B.9's test: the scaled max must carry at least half the
        # total weight (certified via the deterministic MG bound).
        if est < 0.5 * self._mg.total:
            return SampleResult.fail(dominance=est / max(self._mg.total, 1e-300))
        return SampleResult.of(key // self._dup, duplicate=key % self._dup)

    def run(self, stream) -> SampleResult:
        self.extend(stream)
        return self.sample()
