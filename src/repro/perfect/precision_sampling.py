"""The [JW18b]/[AKO11]-style precision-sampling baseline.

Structure: scale each coordinate by ``1/E_i^{1/p}``, sketch the scaled
vector with CountSketch, and report the coordinate whose *estimated*
scaled value dominates.  The argmax of the exact scaled vector is
perfectly ``f_i^p/F_p`` distributed (Lemma B.3); every deviation of the
output from that argmax — sketch noise, the dominance test — contributes
the additive error ``γ`` that truly perfect samplers forbid.

The two cost knobs the benchmarks sweep:

* ``duplication`` — extra scaled copies per item, the paper's ``n^c``
  update-time cost of driving γ down;
* ``width``/``depth`` — CountSketch size, trading space for
  identification accuracy.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.types import SampleResult
from repro.perfect.exponentials import ExponentialAssignment
from repro.sketches.countsketch import CountSketch

__all__ = ["PrecisionSamplingLpSampler"]


class PrecisionSamplingLpSampler:
    """Perfect-but-not-truly-perfect Lp sampler (turnstile-capable).

    Parameters
    ----------
    p:
        Order in ``(0, 2]``.
    n:
        Universe size.
    duplication:
        Scaled copies per item (update cost multiplier).
    width, depth:
        CountSketch geometry.
    dominance:
        The acceptance test ``ẑ_max ≥ dominance·‖ẑ_rest‖₂`` (the paper's
        constant is 20; smaller values fail less but bias more).
    """

    def __init__(
        self,
        p: float,
        n: int,
        duplication: int = 4,
        width: int = 256,
        depth: int = 5,
        dominance: float = 2.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0 < p <= 2:
            raise ValueError("p must be in (0, 2]")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        base_seed = int(rng.integers(0, 2**31))
        self._p = p
        self._n = n
        self._dup = duplication
        self._exp = ExponentialAssignment(p, base_seed)
        self._sketch = CountSketch(width, depth, rng)
        self._seen: set[int] = set()
        self._dominance = dominance
        self._t = 0

    @property
    def p(self) -> float:
        return self._p

    @property
    def duplication(self) -> int:
        return self._dup

    @property
    def position(self) -> int:
        return self._t

    def update(self, item: int, delta: float = 1.0) -> None:
        """O(duplication × depth) sketch updates."""
        self._t += 1
        dup = self._dup
        for j in range(dup):
            key = item * dup + j
            self._sketch.update(key, delta * self._exp.scale(item, j))
        self._seen.add(item)

    def extend(self, items) -> None:
        for item in items:
            self.update(item)

    def sample(self) -> SampleResult:
        """Estimate every seen duplicated coordinate, apply the dominance
        test, and report the winner's base item."""
        if self._t == 0:
            return SampleResult.empty()
        best_key = None
        best_val = -math.inf
        total_sq = 0.0
        for item in self._seen:
            for j in range(self._dup):
                key = item * self._dup + j
                est = abs(self._sketch.estimate(key))
                total_sq += est * est
                if est > best_val:
                    best_val = est
                    best_key = key
        if best_key is None:
            return SampleResult.fail()
        rest = math.sqrt(max(total_sq - best_val * best_val, 0.0))
        if best_val < self._dominance * rest:
            return SampleResult.fail(dominance=best_val / max(rest, 1e-300))
        return SampleResult.of(best_key // self._dup, scaled=best_val)

    def run(self, stream) -> SampleResult:
        self.extend(stream)
        return self.sample()
