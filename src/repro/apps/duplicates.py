"""Finding duplicates via F0 samples — the [JST11] application.

The F0 samplers report the exact frequency of the returned support
element (Theorem 5.2), so a duplicated item (``f_i ≥ 2``) is found as
soon as a sample lands on one: each draw succeeds with probability
``(#items with f ≥ 2)/F0``, and the draws are exactly uniform, so no
duplicate is systematically missed.
"""

from __future__ import annotations

import numpy as np

from repro.core.f0_sampler import TrulyPerfectF0Sampler
from repro.engine.batch import ingest

__all__ = ["find_duplicate"]


def find_duplicate(
    stream,
    n: int,
    max_draws: int = 64,
    seed: int | np.random.Generator | None = None,
) -> int | None:
    """Return some item appearing at least twice, or None if no draw
    found one.

    Parameters
    ----------
    stream:
        Re-iterable insertion-only stream.
    max_draws:
        Independent F0 samples to try; if a fraction ``q`` of the support
        is duplicated, the miss probability is ``(1−q)^max_draws``.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    for __ in range(max_draws):
        sampler = TrulyPerfectF0Sampler(
            n, delta=0.1, seed=int(rng.integers(2**31))
        )
        ingest(sampler, stream)  # batched replay via update_batch
        res = sampler.sample()
        if res.is_item and res.metadata.get("frequency", 0) >= 2:
            return res.item
    return None
