"""Unbiased ``F_G`` estimation from reservoir state — the telescoping
identity as an estimator.

For a uniform stream position holding item ``s`` with forward count
``c``, ``E[G(c) − G(c−1)] = F_G/m`` *exactly* (the same telescoping sum
that powers the sampler's rejection step, here read as an expectation).
So a pool of Algorithm-1 instances yields, at any moment,

    F̂_G = m · mean_over_instances( G(c) − G(c−1) )

an unbiased estimator of ``F_G`` — for *every* measure ``G``
simultaneously from the same pool, since the pool state does not depend
on ``G`` at all.  This is the [AMS99] estimator generalized to arbitrary
measures, and a free by-product of running the sampler.
"""

from __future__ import annotations

import numpy as np

from repro.core.g_sampler import SamplerPool
from repro.core.measures import Measure

__all__ = ["FGEstimator"]


class FGEstimator:
    """Streaming, simultaneously-unbiased ``F_G`` estimates.

    Parameters
    ----------
    units:
        Number of reservoir instances averaged (standard error shrinks as
        ``1/√units`` times the per-unit deviation).
    """

    def __init__(self, units: int = 64, seed: int | np.random.Generator | None = None) -> None:
        self._pool = SamplerPool(units, seed)

    @property
    def units(self) -> int:
        return self._pool.instances

    @property
    def position(self) -> int:
        return self._pool.position

    def update(self, item: int) -> None:
        self._pool.update(item)

    def extend(self, items) -> None:
        self._pool.extend(items)

    def update_batch(self, items) -> None:
        """Vectorized ingestion (see ``SamplerPool.update_batch``)."""
        self._pool.update_batch(items)

    def estimate(self, measure: Measure) -> float:
        """Unbiased estimate of ``F_G`` for ``measure``."""
        finals = self._pool.finalize()
        if not finals:
            return 0.0
        m = self._pool.position
        increments = [measure.increment(count) for __, count, __ in finals]
        return m * float(np.mean(increments))

    def estimate_many(self, measures: list[Measure]) -> dict[str, float]:
        """One pool, many measures — all estimates from the same state."""
        finals = self._pool.finalize()
        m = self._pool.position
        out: dict[str, float] = {}
        for measure in measures:
            if not finals:
                out[measure.name] = 0.0
                continue
            increments = [measure.increment(count) for __, count, __ in finals]
            out[measure.name] = m * float(np.mean(increments))
        return out
