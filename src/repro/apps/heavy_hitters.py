"""Heavy hitters from repeated truly perfect Lp samples.

An item with ``f_i^p ≥ φ·F_p`` appears in each successful Lp sample with
probability exactly ``≥ φ``, so ``O(log(1/δ)/φ)`` samples surface every
φ-heavy item with probability ``1 − δ`` — with *no* bias toward or away
from any particular index, unlike sketch-based heavy hitters whose error
events correlate with item identity.
"""

from __future__ import annotations

import dataclasses
import math
from collections import Counter

import numpy as np

from repro.core.lp_sampler import TrulyPerfectLpSampler
from repro.engine.batch import ingest

__all__ = ["HeavyHitterReport", "find_heavy_hitters"]


@dataclasses.dataclass(frozen=True)
class HeavyHitterReport:
    """Outcome of a sampling-based heavy-hitter query."""

    items: tuple[int, ...]  # items sorted by sample multiplicity
    multiplicities: dict[int, int]
    samples_used: int
    fails: int

    def hit_rate(self, item: int) -> float:
        succeeded = self.samples_used - self.fails
        if succeeded == 0:
            return 0.0
        return self.multiplicities.get(item, 0) / succeeded


def find_heavy_hitters(
    stream,
    n: int,
    p: float = 2.0,
    phi: float = 0.1,
    delta: float = 0.05,
    seed: int | np.random.Generator | None = None,
) -> HeavyHitterReport:
    """Report candidate φ-heavy items (w.r.t. ``F_p``) from independent
    truly perfect Lp samples.

    Parameters
    ----------
    stream:
        Re-iterable insertion-only stream.
    phi:
        Heaviness threshold: items with ``f_i^p ≥ φ·F_p`` are the
        targets.
    delta:
        Per-item miss probability; drives the sample budget
        ``⌈ln(1/δ)·2/φ⌉``.

    Returns items whose empirical sample share exceeds ``φ/2`` — each
    true φ-heavy item passes with probability ≥ 1 − δ, and the exactness
    of the sampler means the shares are unbiased estimates of the true
    ``f^p/F_p`` masses.
    """
    if not 0 < phi < 1:
        raise ValueError("phi must be in (0, 1)")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    budget = max(8, math.ceil(2.0 * math.log(1.0 / delta) / phi))
    counts: Counter = Counter()
    fails = 0
    for __ in range(budget):
        sampler = TrulyPerfectLpSampler(
            p=p, n=n, delta=0.1, seed=int(rng.integers(2**31))
        )
        ingest(sampler, stream)  # batched replay via update_batch
        res = sampler.sample()
        if res.is_item:
            counts[res.item] += 1
        else:
            fails += 1
    succeeded = budget - fails
    cutoff = phi / 2.0 * max(succeeded, 1)
    heavy = tuple(
        item for item, c in counts.most_common() if c >= cutoff
    )
    return HeavyHitterReport(
        items=heavy,
        multiplicities=dict(counts),
        samples_used=budget,
        fails=fails,
    )
