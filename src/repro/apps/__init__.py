"""Applications built on the samplers — the paper's "useful subroutines".

Lp samplers were introduced as building blocks for heavy hitters, moment
estimation, and duplicate finding ([MW10, JST11], Section 1).  This
subpackage implements those consumers on top of the truly perfect
samplers, demonstrating the end-to-end workflows the introduction
motivates:

* :func:`find_heavy_hitters` — repeated Lp samples expose every
  φ-heavy item with probability ≥ φ per draw.
* :class:`FGEstimator` — one reservoir pool estimates ``F_G``
  *unbiasedly for any set of measures simultaneously* via the
  telescoping identity ``m·E[G(c) − G(c−1)] = F_G``.
* :func:`find_duplicate` — F0 samples with frequency metadata locate a
  duplicated item.
"""

from repro.apps.heavy_hitters import HeavyHitterReport, find_heavy_hitters
from repro.apps.moments import FGEstimator
from repro.apps.duplicates import find_duplicate

__all__ = [
    "HeavyHitterReport",
    "find_heavy_hitters",
    "FGEstimator",
    "find_duplicate",
]
