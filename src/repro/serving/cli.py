"""``repro-serve`` — a tiny serving demo/smoke CLI.

Builds a :class:`~repro.serving.SamplerService` from a registry sampler
config (JSON), feeds it a generated stream through the concurrent front
door while query clients sample it live, then prints the sampled output
and the service stats.  It exists so "does the serving path work here?"
is one shell command::

    repro-serve --config '{"kind": "lp", "p": 2.0, "n": 4096}' \\
        --items 200000 --shards 8 --workers 4 --clients 4

Time-windowed kinds (``tw_*``, ``window_bank``) get synthetic uniform
arrival timestamps at ``--rate`` items/second automatically.  Exit code
0 means every submit was accepted, every query answered, and the
service closed cleanly — the CI smoke job runs exactly this under a
strict timeout.  ``--metrics-dump PATH`` additionally writes the
service registry's Prometheus exposition after the run.

The ``stats`` subcommand runs a small canned workload and prints the
resulting metrics exposition — the scrape-endpoint smoke::

    repro-serve stats --config '{"kind": "g", "measure": {"name": "huber"}}' \\
        --format prom | python -m repro.obs.promcheck

With ``--workers-mode process`` the exposition already contains the
worker-side families (shipped over the telemetry plane and merged under
``worker`` labels); ``--per-worker`` additionally prints each worker's
raw *unmerged* snapshot as comment-delimited blocks (prom) or a
``workers`` key (json).

``health`` runs a canned *audited* workload, executes the audit ticks,
and prints the readiness/liveness probe report — exit 0 only when the
service is live, ready, and the audit verdict is clean (the CI audit
smoke).  ``--dump-on-fail PATH`` writes the flight-recorder bundle when
it isn't.  ``dump`` runs the same workload and always writes the
bundle::

    repro-serve health --config '{"kind": "lp", "p": 2.0, "n": 4096}' \\
        --dump-on-fail flight-bundle.zip
    repro-serve dump --config '{"kind": "lp", "p": 2.0, "n": 4096}' \\
        --out bundle.zip
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import threading
import time

import numpy as np

from repro.engine.registry import sampler_kinds
from repro.serving.service import SamplerService
from repro.streams.generators import zipf_stream
from repro.streams.timestamped import uniform_arrivals

__all__ = ["main"]

#: Registry kinds that need arrival timestamps on every update.
TIMED_KINDS = ("tw_g", "tw_lp", "tw_f0", "window_bank")


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="repro-serve", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--config",
        required=True,
        help=(
            "sampler config JSON for the engine registry, e.g. "
            '\'{"kind": "lp", "p": 2.0, "n": 4096}\' '
            f"(kinds: {', '.join(sampler_kinds())})"
        ),
    )
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--workers-mode",
        choices=("thread", "process"),
        default="thread",
        help=(
            "shard-owning worker threads (GIL-shared) or worker "
            "processes (one core per worker; see repro.serving.procplane)"
        ),
    )
    parser.add_argument("--items", type=int, default=100_000, help="stream length")
    parser.add_argument(
        "--universe", type=int, default=4096, help="stream universe size"
    )
    parser.add_argument(
        "--alpha", type=float, default=1.2, help="Zipf skew of the demo stream"
    )
    parser.add_argument(
        "--batch", type=int, default=4096, help="submit batch size"
    )
    parser.add_argument(
        "--clients", type=int, default=4, help="concurrent query client threads"
    )
    parser.add_argument(
        "--queries", type=int, default=32, help="queries per client"
    )
    parser.add_argument(
        "--client-interval",
        type=float,
        default=0.005,
        help="think time between a client's queries (seconds)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=1000.0,
        help="synthetic arrivals/second for time-windowed kinds",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--serialized",
        action="store_true",
        help="serialized replay mode (single worker, locked queries)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON summary instead of prose",
    )
    parser.add_argument(
        "--metrics-dump",
        metavar="PATH",
        help="write the service's Prometheus exposition here after the run",
    )
    return parser.parse_args(argv)


def _stats_main(argv) -> int:
    """``repro-serve stats`` — run a small canned served workload and
    print the metrics exposition (``--format prom`` | ``json``)."""
    parser = argparse.ArgumentParser(
        prog="repro-serve stats",
        description="print a served workload's metrics exposition",
    )
    parser.add_argument("--config", required=True, help="sampler config JSON")
    parser.add_argument(
        "--format", choices=("prom", "json"), default="prom",
        help="exposition format (default: prom)",
    )
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--workers-mode", choices=("thread", "process"), default="thread"
    )
    parser.add_argument("--items", type=int, default=20_000)
    parser.add_argument("--universe", type=int, default=4096)
    parser.add_argument("--queries", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--per-worker",
        action="store_true",
        help=(
            "additionally print each worker's raw (unmerged) telemetry "
            "snapshot — process mode only"
        ),
    )
    args = parser.parse_args(argv)
    try:
        config = json.loads(args.config)
    except json.JSONDecodeError as exc:
        print(f"repro-serve: --config is not valid JSON: {exc}", file=sys.stderr)
        return 2
    if not isinstance(config, dict):
        print("repro-serve: --config must be a JSON object", file=sys.stderr)
        return 2
    stream = zipf_stream(args.universe, args.items, alpha=1.2, seed=args.seed)
    items = np.asarray(stream.items)
    timed = config.get("kind") in TIMED_KINDS
    timestamps = uniform_arrivals(args.items, 1000.0) if timed else None
    query_kwargs = (
        {"horizon": float(min(config["resolutions"]))}
        if config.get("kind") == "window_bank"
        else {}
    )
    try:
        service = SamplerService(
            config, shards=args.shards, seed=args.seed,
            ingest_workers=args.workers, workers_mode=args.workers_mode,
        )
    except ValueError as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2
    with service:
        batch = 4096
        for lo in range(0, args.items, batch):
            hi = min(lo + batch, args.items)
            service.submit(
                items[lo:hi],
                None if timestamps is None else timestamps[lo:hi],
            )
        service.flush()
        service.refresh()
        for __ in range(args.queries):
            service.sample(**query_kwargs)
        service.sample_many(max(1, args.queries), **query_kwargs)
        worker_info = (
            service.worker_telemetry_info() if args.per_worker else None
        )
        if args.format == "prom":
            print(service.metrics.render_prometheus(), end="")
            if args.per_worker:
                _print_per_worker_prom(worker_info)
        else:
            payload = {
                "metrics": service.metrics.render_json(),
                # Bucket-resolution approximations computed from the
                # latency histogram buckets at render time.
                "derived_quantiles": service.stats()["latency"],
            }
            if args.per_worker:
                payload["workers"] = (
                    None
                    if worker_info is None
                    else [
                        {k: v for k, v in entry.items() if k != "trace"}
                        for entry in worker_info
                    ]
                )
            print(json.dumps(_none_nan(payload), indent=2))
    return 0


def _print_per_worker_prom(worker_info) -> None:
    """The ``--per-worker`` tail: each worker's raw (unmerged) snapshot
    rendered as its own comment-delimited exposition block.  Comment
    lines keep the combined output valid for ``promcheck`` readers that
    stop at the first block; the per-worker blocks repeat family
    headers by design (they are separate registries)."""
    from repro.obs.telemetry import render_snapshot_prometheus

    if worker_info is None:
        print("# --per-worker: no worker telemetry (thread workers mode)")
        return
    for entry in worker_info:
        snap = entry.get("metrics")
        print(
            f"# -- worker {entry['worker']} "
            f"(generation {entry.get('generation')}, pid {entry.get('pid')}) "
            f"-- unmerged snapshot --"
        )
        if snap is None:
            print("# (no snapshot shipped yet)")
        else:
            print(render_snapshot_prometheus(snap), end="")


def _none_nan(obj):
    """NaN → None recursively, so the JSON output is strict."""
    if isinstance(obj, float) and math.isnan(obj):
        return None
    if isinstance(obj, dict):
        return {k: _none_nan(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_none_nan(v) for v in obj]
    return obj


def _load_config(raw: str):
    try:
        config = json.loads(raw)
    except json.JSONDecodeError as exc:
        print(f"repro-serve: --config is not valid JSON: {exc}", file=sys.stderr)
        return None
    if not isinstance(config, dict):
        print("repro-serve: --config must be a JSON object", file=sys.stderr)
        return None
    return config


def _audited_canned_run(config, args, audit_ticks: int):
    """Build an audited service, push the canned stream through it, and
    run the audit ticks.  Returns the open service (caller closes)."""
    stream = zipf_stream(args.universe, args.items, alpha=1.2, seed=args.seed)
    items = np.asarray(stream.items)
    timed = config.get("kind") in TIMED_KINDS
    timestamps = uniform_arrivals(args.items, 1000.0) if timed else None
    service = SamplerService(
        config, shards=args.shards, seed=args.seed,
        ingest_workers=args.workers, workers_mode=args.workers_mode,
        audit={"interval": 0.0, "draws": args.audit_draws},
    )
    batch = 4096
    for lo in range(0, args.items, batch):
        hi = min(lo + batch, args.items)
        service.submit(
            items[lo:hi],
            None if timestamps is None else timestamps[lo:hi],
        )
    service.flush()
    service.refresh()
    for __ in range(audit_ticks):
        service.audit_tick()
    return service


def _canned_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--config", required=True, help="sampler config JSON")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--workers-mode", choices=("thread", "process"), default="thread"
    )
    parser.add_argument("--items", type=int, default=20_000)
    parser.add_argument("--universe", type=int, default=4096)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--audit-ticks", type=int, default=4,
        help="audit ticks to run after the canned ingest",
    )
    parser.add_argument(
        "--audit-draws", type=int, default=512,
        help="dedicated sample_many draws per audit tick",
    )


def _health_main(argv) -> int:
    """``repro-serve health`` — canned audited workload + probe report;
    exit 0 iff live, ready, and the audit verdict is clean."""
    parser = argparse.ArgumentParser(
        prog="repro-serve health",
        description="run an audited canned workload and report health",
    )
    _canned_args(parser)
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "--dump-on-fail", metavar="PATH",
        help="write the flight-recorder bundle here when not healthy",
    )
    args = parser.parse_args(argv)
    config = _load_config(args.config)
    if config is None:
        return 2
    try:
        service = _audited_canned_run(config, args, args.audit_ticks)
    except ValueError as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2
    with service:
        report = service.health()
        audit = service.audit_status()
        ok = report.live and report.ready and not audit.get("flagged", False)
        if not ok and args.dump_on_fail:
            service.dump(args.dump_on_fail)
        if args.json:
            payload = {
                "healthy": ok,
                "report": report.to_dict(),
                "audit": {
                    k: v for k, v in audit.items() if k != "history"
                },
            }
            print(json.dumps(_none_nan(payload), indent=2))
        else:
            print(f"live={report.live} ready={report.ready}")
            for probe in report.probes:
                print(f"  {probe.status.upper():<4} {probe.name}: {probe.detail}")
            print(
                f"audit: verdict={audit.get('verdict')} "
                f"draws={audit.get('draws_total')} "
                f"e_value={audit.get('e_value'):.3g}"
                if audit.get("enabled")
                else "audit: disabled"
            )
            if not ok and args.dump_on_fail:
                print(f"flight-recorder bundle written to {args.dump_on_fail}")
    return 0 if ok else 1


def _dump_main(argv) -> int:
    """``repro-serve dump`` — canned audited workload + flight-recorder
    bundle."""
    parser = argparse.ArgumentParser(
        prog="repro-serve dump",
        description="run an audited canned workload and write a debug bundle",
    )
    _canned_args(parser)
    parser.add_argument(
        "--out", required=True, metavar="PATH", help="bundle zip path"
    )
    args = parser.parse_args(argv)
    config = _load_config(args.config)
    if config is None:
        return 2
    try:
        service = _audited_canned_run(config, args, args.audit_ticks)
    except ValueError as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2
    with service:
        manifest = service.dump(args.out)
    entries = len(manifest["entries"])
    errors = manifest["errors"]
    print(f"wrote {entries} bundle entries to {args.out}")
    if errors:
        print(f"sections skipped with errors: {sorted(errors)}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "stats":
        return _stats_main(argv[1:])
    if argv and argv[0] == "health":
        return _health_main(argv[1:])
    if argv and argv[0] == "dump":
        return _dump_main(argv[1:])
    args = _parse_args(argv)
    try:
        config = json.loads(args.config)
    except json.JSONDecodeError as exc:
        print(f"repro-serve: --config is not valid JSON: {exc}", file=sys.stderr)
        return 2
    if not isinstance(config, dict):
        print("repro-serve: --config must be a JSON object", file=sys.stderr)
        return 2

    stream = zipf_stream(args.universe, args.items, alpha=args.alpha, seed=args.seed)
    items = np.asarray(stream.items)
    timed = config.get("kind") in TIMED_KINDS
    timestamps = (
        uniform_arrivals(args.items, args.rate) if timed else None
    )

    results: list = []
    errors: list[Exception] = []

    try:
        service = SamplerService(
            config,
            shards=args.shards,
            seed=args.seed,
            ingest_workers=args.workers,
            workers_mode=args.workers_mode,
            serialized=args.serialized,
        )
    except ValueError as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2

    query_kwargs = (
        {"horizon": float(min(config["resolutions"]))}
        if config.get("kind") == "window_bank"
        else {}
    )

    def client(idx: int) -> None:
        # Paced, not saturating: the point is queries *overlapping* the
        # live ingest, and a think-time loop spans the whole run.
        try:
            for __ in range(args.queries):
                results.append(service.sample(**query_kwargs))
                time.sleep(args.client_interval)
        except Exception as exc:  # pragma: no cover - surfaced via exit code
            errors.append(exc)

    with service:
        clients = [
            threading.Thread(target=client, args=(c,), daemon=True)
            for c in range(args.clients)
        ]
        # Live ingest: submit batches while the clients query concurrently.
        for thread in clients:
            thread.start()
        for lo in range(0, args.items, args.batch):
            hi = min(lo + args.batch, args.items)
            service.submit(
                items[lo:hi],
                None if timestamps is None else timestamps[lo:hi],
            )
        service.flush()
        service.refresh()
        for thread in clients:
            thread.join()
        final = service.sample(**query_kwargs)
        stats = service.stats()
        if args.metrics_dump:
            with open(args.metrics_dump, "w", encoding="utf-8") as fh:
                fh.write(service.metrics.render_prometheus())

    if errors:
        print(f"repro-serve: query client failed: {errors[0]!r}", file=sys.stderr)
        return 1

    answered = len(results)
    item_hits = sum(1 for r in results if getattr(r, "is_item", False))
    summary = {
        "kind": config.get("kind"),
        "items_submitted": int(stats["ingest"]["submitted_items"]),
        "items_applied": int(stats["ingest"]["applied_items"]),
        "queries_answered": answered,
        "queries_with_item": item_hits,
        "final_sample": {
            "is_item": bool(getattr(final, "is_item", False)),
            "item": getattr(final, "item", None),
        },
        "fold_generation": stats["query"]["generation"],
        "fold_refreshes": stats["query"]["refreshes"],
        "cache": stats["engine"]["cache"],
    }
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(
            f"served kind={summary['kind']}: ingested "
            f"{summary['items_applied']}/{summary['items_submitted']} items, "
            f"answered {answered} live queries "
            f"({item_hits} returned an item)"
        )
        if summary["final_sample"]["is_item"]:
            print(f"final sample after flush: item {summary['final_sample']['item']}")
        else:
            print("final sample after flush: (no item — FAIL/EMPTY draw)")
        cache = summary["cache"]
        print(
            f"fold generations {summary['fold_generation'] + 1}, cache "
            f"hits/misses/rebases {cache['hits']}/{cache['misses']}/"
            f"{cache['rebases']}"
        )
    if stats["ingest"]["applied_items"] != args.items:
        print(
            f"repro-serve: ingest mismatch "
            f"({stats['ingest']['applied_items']} != {args.items})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
