"""SamplerService — the concurrent front door over the sharded engine.

One object wires the whole serving path together::

    submit(batch) ──► admission (per-tenant token buckets)
                  ──► router (engine-identical hash partition)
                  ──► bounded per-shard queues  ──► N ingest workers
                                                        │ (per-shard locks)
    sample()/sample_many() ◄── per-reader query views ◄─┴─ fold refresh +
                               (lock-free)                 compaction ticker

Ingestion is shard-parallel and bitwise-deterministic: per-shard FIFO
and single shard ownership make the final engine state identical to a
sequential ``engine.ingest`` of the same submits, for any worker count.
Queries serve off the epoch-validated merged view concurrently — see
:mod:`repro.serving.executor` for the ``per-reader`` / ``locked`` RNG
contract.  Backpressure (queue high-water marks), per-tenant rate caps,
and load-shed errors guard the front; a background ticker refreshes the
fold (bounded staleness) and runs expiry compaction.

**Serialized mode** (``serialized=True``) is the replay/debug
configuration: one worker, locked single-stream queries, and an
implicit ``flush()`` before every query — the full request sequence
(submits and queries) becomes bitwise identical to driving the engine
directly from one thread, which is how the CI determinism gate compares
the service against the engine.

The asyncio facade over this same core lives in
:mod:`repro.serving.aio`; a tiny CLI (``repro-serve``) in
:mod:`repro.serving.cli`.
"""

from __future__ import annotations

import threading
import time

from repro.engine.registry import kind_spec
from repro.engine.shard import ShardedSamplerEngine
from repro.serving.errors import Backpressure, ServiceClosed
from repro.serving.executor import QueryExecutor
from repro.serving.router import ShardRouter, TenantRateLimiter
from repro.serving.workers import IngestWorker, ShardQueues

__all__ = ["SamplerService"]

#: Default coalescing limit for worker micro-batches (items).
DEFAULT_MAX_BATCH = 1 << 16


class SamplerService:
    """Concurrent ingest + query serving over a sharded sampler engine.

    Parameters
    ----------
    config:
        Sampler config for the engine registry (``{"kind": ..., ...}``),
        or an already-built :class:`ShardedSamplerEngine` to serve (the
        service then owns its concurrency: stop driving it directly).
    shards, seed, max_watermark_skew:
        Engine construction knobs (ignored when ``config`` is an
        engine).  The service always builds the engine with the query
        cache on and no ``compact_every`` cadence — the ticker owns
        compaction here.
    ingest_workers:
        Ingest worker threads (clamped to the shard count).  Shards are
        assigned round-robin, each owned by exactly one worker.
    queue_capacity:
        Per-shard queue high-water mark, in items (queued + in-flight).
    backpressure:
        ``"block"`` (default): ``submit`` waits for capacity (up to its
        ``timeout``); ``"shed"``: a full lane rejects the whole submit
        with :class:`~repro.serving.errors.Backpressure` immediately.
        Either way admission is atomic — a rejected submit enqueued
        nothing.
    tenant_rates / default_rate:
        Per-tenant ``(items_per_second, burst)`` caps, and the cap for
        tenants not listed (``None`` = unlimited).
    rng_mode:
        ``"per-reader"`` (lock-free concurrent queries, default) or
        ``"locked"`` (serialized bitwise-replay queries) — see
        :mod:`repro.serving.executor`.
    refresh_interval:
        Fold publication cadence in seconds — the staleness bound for
        lock-free reads.  ``0`` disables the ticker's refresh leg and
        refreshes synchronously before *every* query instead (freshest
        answers, writers quiesced per query).
    compact_interval:
        Expiry-compaction cadence in seconds (``None`` disables; the
        pass runs shard-by-shard under each shard's own lock, never
        stopping the world).
    max_batch:
        Worker micro-batch coalescing limit, in items.
    serialized:
        Replay/debug mode — see the module docstring.
    """

    def __init__(
        self,
        config,
        *,
        shards: int = 8,
        seed: int | None = None,
        max_watermark_skew: float = float("inf"),
        ingest_workers: int = 4,
        queue_capacity: int = 1 << 18,
        backpressure: str = "block",
        tenant_rates: dict[str, tuple[float, float]] | None = None,
        default_rate: tuple[float, float] | None = None,
        rng_mode: str = "per-reader",
        refresh_interval: float = 0.05,
        compact_interval: float | None = 1.0,
        max_batch: int = DEFAULT_MAX_BATCH,
        serialized: bool = False,
    ) -> None:
        if backpressure not in ("block", "shed"):
            raise ValueError(
                f"backpressure must be 'block' or 'shed', got {backpressure!r}"
            )
        if refresh_interval < 0:
            raise ValueError(
                f"refresh_interval must be ≥ 0, got {refresh_interval}"
            )
        if compact_interval is not None and compact_interval <= 0:
            raise ValueError(
                f"compact_interval must be positive or None, got {compact_interval}"
            )
        if max_batch < 1:
            raise ValueError(f"max_batch must be ≥ 1, got {max_batch}")
        if serialized:
            ingest_workers = 1
            rng_mode = "locked"
            refresh_interval = 0.0
        if isinstance(config, ShardedSamplerEngine):
            self._engine = config
        else:
            # Fail actionably before building K shards' worth of state.
            kind_spec(dict(config).get("kind"))
            self._engine = ShardedSamplerEngine(
                config,
                shards=shards,
                seed=seed,
                max_watermark_skew=max_watermark_skew,
                query_cache=True,
            )
        k = self._engine.shards
        if ingest_workers < 1:
            raise ValueError(f"need at least one worker, got {ingest_workers}")
        ingest_workers = min(ingest_workers, k)
        self._serialized = serialized
        self._block = backpressure == "block"
        self._refresh_interval = float(refresh_interval)
        self._compact_interval = compact_interval
        self._shard_locks = [threading.Lock() for _ in range(k)]
        self._router = ShardRouter(self._engine.partitioner)
        self._queues = ShardQueues(k, queue_capacity)
        self._limiter = TenantRateLimiter(tenant_rates, default_rate)
        self._executor = QueryExecutor(
            self._engine, self._shard_locks, seed=seed, rng_mode=rng_mode
        )
        self._workers = [
            IngestWorker(
                w,
                self._engine,
                self._queues,
                self._shard_locks,
                owned_shards=[s for s in range(k) if s % ingest_workers == w],
                max_batch=max_batch,
                on_error=self._record_worker_error,
            )
            for w in range(ingest_workers)
        ]
        self._worker_errors: list[tuple[Exception, int]] = []
        self._closed = False
        self._compaction_passes = 0
        self._compaction_bytes = 0
        self._ticker_stop = threading.Event()
        self._ticker: threading.Thread | None = None
        for worker in self._workers:
            worker.start()
        if self._refresh_interval > 0 or self._compact_interval is not None:
            self._ticker = threading.Thread(
                target=self._tick_loop, name="repro-serving-ticker", daemon=True
            )
            self._ticker.start()

    # -- background ticker --------------------------------------------------
    def _tick_loop(self) -> None:
        period = min(
            self._refresh_interval or float("inf"),
            self._compact_interval or float("inf"),
        )
        last_refresh = last_compact = time.monotonic()
        while not self._ticker_stop.wait(period):
            now = time.monotonic()
            if (
                self._refresh_interval > 0
                and now - last_refresh >= self._refresh_interval
            ):
                try:
                    self._executor.refresh()
                except Exception:
                    # Must not kill the ticker.  The executor latches
                    # the failure and re-raises it on every query until
                    # a refresh succeeds, so readers cannot be silently
                    # pinned to the stale pre-failure fold.
                    pass
                last_refresh = now
            if (
                self._compact_interval is not None
                and now - last_compact >= self._compact_interval
            ):
                self._run_compaction()
                last_compact = now

    def _run_compaction(self) -> None:
        """One expiry-compaction pass, shard by shard — each under its
        own write lock, so ingest of the other shards keeps flowing."""
        freed = 0
        for shard in range(self._engine.shards):
            with self._shard_locks[shard]:
                freed += self._engine.compact_shard(shard)
        self._compaction_passes += 1
        self._compaction_bytes += freed

    def _record_worker_error(self, exc: Exception, shard: int) -> None:
        self._worker_errors.append((exc, shard))

    # -- front door ---------------------------------------------------------
    @property
    def engine(self) -> ShardedSamplerEngine:
        """The wrapped engine.  While the service is open, mutate it
        only through the service (the workers own the shard writes)."""
        return self._engine

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceClosed("service is closed")
        if self._worker_errors:
            exc, shard = self._worker_errors[0]
            raise ServiceClosed(
                f"ingest worker for shard {shard} failed: {exc!r}"
            ) from exc

    def submit(
        self,
        items,
        timestamps=None,
        *,
        tenant: str | None = None,
        timeout: float | None = None,
    ) -> int:
        """Admit, route, and enqueue one batch; returns items accepted.

        Raises :class:`~repro.serving.errors.RateLimited` (tenant over
        its cap), :class:`~repro.serving.errors.Backpressure` (queues at
        the high-water mark under the ``shed`` policy, or still full
        after ``timeout`` under ``block``), or
        :class:`~repro.serving.errors.ServiceClosed` — in every case the
        batch was rejected atomically, and a backpressure rejection
        refunds the tenant's rate tokens (a shed submit costs nothing).
        Accepts a plain item array, a ``TimestampedStream``, or explicit
        ``timestamps`` (required form for time-windowed kinds).
        """
        self._check_open()
        arr, ts = self._router.normalize(items, timestamps)
        total = int(arr.size)
        if total == 0:
            return 0
        # Admission first, on the raw count: a rate-limited batch never
        # pays for hash partitioning.
        self._limiter.admit(tenant, total)
        parts = self._router.route_normalized(arr, ts)
        try:
            return self._queues.put(parts, block=self._block, timeout=timeout)
        except (Backpressure, ServiceClosed, ValueError):
            # Every put() rejection is atomic (nothing enqueued), so the
            # admitted tokens go back — a refused submit costs nothing.
            self._limiter.refund(tenant, total)
            raise

    def flush(self, timeout: float | None = None) -> None:
        """Block until every accepted item has landed in its shard
        (:class:`~repro.serving.errors.FlushTimeout` on expiry).  Does
        not force a fold refresh — pair with :meth:`refresh` when a
        subsequent lock-free query must observe the flushed writes."""
        self._queues.wait_empty(timeout)
        self._check_open()

    def refresh(self) -> bool:
        """Publish a fresh fold generation now (quiesces writers);
        returns whether the epochs had moved.  Lock-free queries observe
        it immediately."""
        self._check_open()
        return self._executor.refresh()

    def sample(self, **kwargs):
        """One truly perfect sample from the query plane.

        ``per-reader`` mode serves the last *published* fold lock-free —
        answers lag ingest by at most ``refresh_interval`` (call
        :meth:`flush` + :meth:`refresh` for read-your-writes).
        ``locked`` mode serializes on the live engine; serialized mode
        additionally flushes first, making the whole request sequence
        bitwise identical to direct engine calls.
        """
        self._check_open()
        if self._serialized:
            self.flush()
        elif self._refresh_interval == 0 and self._executor.rng_mode != "locked":
            self._executor.refresh()
        return self._executor.sample(**kwargs)

    def sample_many(self, k: int, **kwargs):
        """``k`` truly perfect samples, amortized — same freshness
        contract as :meth:`sample`."""
        self._check_open()
        if self._serialized:
            self.flush()
        elif self._refresh_interval == 0 and self._executor.rng_mode != "locked":
            self._executor.refresh()
        return self._executor.sample_many(k, **kwargs)

    # -- observability ------------------------------------------------------
    def stats(self) -> dict:
        """The service's stats endpoint: queue/ingest counters, query
        plane state, engine cache hit/miss/rebase counters, compaction
        totals.

        Advisory, not transactional: the engine fields (position,
        watermark, ``approx_size_bytes`` — the latter an O(state) walk)
        are read without quiescing the workers, so under live ingest
        they reflect a best-effort instant, not a consistent cut.
        """
        queues = self._queues
        return {
            "closed": self._closed,
            "serialized": self._serialized,
            "shards": self._engine.shards,
            "workers": len(self._workers),
            "ingest": {
                "submitted_items": queues.submitted_items,
                "applied_items": queues.applied_items,
                "failed_items": queues.failed_items,
                "pending_items": queues.pending(),
                "queue_depths": queues.depths(),
                "queue_capacity": queues.capacity,
                "backpressure_shed": queues.shed_count,
                "rate_limited": self._limiter.shed_count,
                "worker_errors": len(self._worker_errors),
            },
            "query": self._executor.stats(),
            "engine": {
                "position": self._engine.position,
                "watermark": self._engine.watermark(),
                "approx_size_bytes": self._engine.approx_size_bytes(),
                "cache": self._engine.cache_info(),
            },
            "compaction": {
                "passes": self._compaction_passes,
                "bytes_reclaimed": self._compaction_bytes,
            },
        }

    @property
    def position(self) -> int:
        """Items applied to shard state so far (excludes queued)."""
        return self._engine.position

    # -- shutdown -----------------------------------------------------------
    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the service: reject new work, optionally drain the
        queues, stop workers and ticker.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._queues.close()
        if drain:
            try:
                self._queues.wait_empty(timeout)
            except Exception:
                pass
        for worker in self._workers:
            worker.stop()
        self._ticker_stop.set()
        for worker in self._workers:
            worker.join(timeout=5.0)
        if self._ticker is not None:
            self._ticker.join(timeout=5.0)

    def __enter__(self) -> "SamplerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
