"""SamplerService — the concurrent front door over the sharded engine.

One object wires the whole serving path together::

    submit(batch) ──► admission (per-tenant token buckets)
                  ──► router (engine-identical hash partition)
                  ──► bounded per-shard queues  ──► N ingest workers
                                                        │ (per-shard locks)
    sample()/sample_many() ◄── per-reader query views ◄─┴─ fold refresh +
                               (lock-free)                 compaction ticker

Ingestion is shard-parallel and bitwise-deterministic: per-shard FIFO
and single shard ownership make the final engine state identical to a
sequential ``engine.ingest`` of the same submits, for any worker count.
Queries serve off the epoch-validated merged view concurrently — see
:mod:`repro.serving.executor` for the ``per-reader`` / ``locked`` RNG
contract.  Backpressure (queue high-water marks), per-tenant rate caps,
and load-shed errors guard the front; a background ticker refreshes the
fold (bounded staleness) and runs expiry compaction.

**Serialized mode** (``serialized=True``) is the replay/debug
configuration: one worker, locked single-stream queries, and an
implicit ``flush()`` before every query — the full request sequence
(submits and queries) becomes bitwise identical to driving the engine
directly from one thread, which is how the CI determinism gate compares
the service against the engine.

The asyncio facade over this same core lives in
:mod:`repro.serving.aio`; a tiny CLI (``repro-serve``) in
:mod:`repro.serving.cli`.
"""

from __future__ import annotations

import threading
import time

from repro.engine.registry import kind_spec
from repro.engine.shard import ShardedSamplerEngine
from repro.engine.state import save_state
from repro.obs.audit import AuditConfig, AuditEvent, Auditor
from repro.obs.catalog import CATALOG_HELP
from repro.obs.health import (
    BurnRateTracker,
    HealthChecker,
    HealthReport,
    ProbeResult,
    freshness_status,
)
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.trace import current_tracer, span
from repro.serving.errors import Backpressure, RateLimited, ServiceClosed
from repro.serving.executor import QueryExecutor
from repro.serving.procplane import ProcessPlane, WorkerDied
from repro.serving.router import ShardRouter, TenantRateLimiter
from repro.serving.workers import IngestWorker, ShardQueues

__all__ = ["SamplerService"]

#: Default coalescing limit for worker micro-batches (items).
DEFAULT_MAX_BATCH = 1 << 16

#: Query-latency SLO the burn-rate probe tracks: ``QUERY_SLO`` of
#: queries under ``QUERY_SLO_OBJECTIVE_SECONDS`` (the objective sits on
#: a latency-bucket boundary so the cumulative counts are exact).
QUERY_SLO_OBJECTIVE_SECONDS = 1e-6 * 2**17  # ≈131 ms, a LATENCY_BUCKETS bound
QUERY_SLO = 0.99


class SamplerService:
    """Concurrent ingest + query serving over a sharded sampler engine.

    Parameters
    ----------
    config:
        Sampler config for the engine registry (``{"kind": ..., ...}``),
        or an already-built :class:`ShardedSamplerEngine` to serve (the
        service then owns its concurrency: stop driving it directly).
    shards, seed, max_watermark_skew:
        Engine construction knobs (ignored when ``config`` is an
        engine).  The service always builds the engine with the query
        cache on and no ``compact_every`` cadence — the ticker owns
        compaction here.
    ingest_workers:
        Ingest workers (clamped to the shard count).  Shards are
        assigned round-robin, each owned by exactly one worker.
    workers_mode:
        ``"thread"`` (default): shard-owning worker threads applying
        into the in-process engine — zero IPC cost, but on CPython all
        workers share one GIL.  ``"process"``: shard-owning worker
        *processes* holding bitwise replicas of their shards, fed
        RPRS-coded frames over pipes (:mod:`repro.serving.procplane`) —
        K shards use K cores; a fold collector pulls per-shard snapshot
        deltas back into this process's mirror engine for the query
        plane.  Requires a config dict (not a prebuilt engine).  The
        determinism contract is identical in both modes.
    mp_start_method:
        ``multiprocessing`` start method for process mode (``"fork"``,
        ``"spawn"``, ``"forkserver"``; ``None`` = platform default).
    queue_capacity:
        Per-shard queue high-water mark, in items (queued + in-flight).
    backpressure:
        ``"block"`` (default): ``submit`` waits for capacity (up to its
        ``timeout``); ``"shed"``: a full lane rejects the whole submit
        with :class:`~repro.serving.errors.Backpressure` immediately.
        Either way admission is atomic — a rejected submit enqueued
        nothing.
    tenant_rates / default_rate:
        Per-tenant ``(items_per_second, burst)`` caps, and the cap for
        tenants not listed (``None`` = unlimited).
    rng_mode:
        ``"per-reader"`` (lock-free concurrent queries, default) or
        ``"locked"`` (serialized bitwise-replay queries) — see
        :mod:`repro.serving.executor`.
    refresh_interval:
        Fold publication cadence in seconds — the staleness bound for
        lock-free reads.  ``0`` disables the ticker's refresh leg and
        refreshes synchronously before *every* query instead (freshest
        answers, writers quiesced per query).
    compact_interval:
        Expiry-compaction cadence in seconds (``None`` disables; the
        pass runs shard-by-shard under each shard's own lock, never
        stopping the world).
    max_batch:
        Worker micro-batch coalescing limit, in items.
    serialized:
        Replay/debug mode — see the module docstring.
    metrics:
        The service's :class:`~repro.obs.MetricsRegistry`.  ``None``
        (default) creates one fresh enabled registry per service;
        ``False`` disables metrics entirely (every instrument is the
        shared no-op — the zero-overhead configuration); pass a registry
        instance to aggregate several services into one exposition.  The
        registry is installed while the engine is built, so engine fold
        metrics and per-rung window counters land in it too; render it
        with ``service.metrics.render_prometheus()`` or the
        ``repro-serve stats`` CLI.
    audit:
        The statistical audit plane (off by default).  ``True`` enables
        it with :class:`~repro.obs.AuditConfig` defaults; pass an
        ``AuditConfig`` or a kwargs dict to tune it.  Requires a sampler
        *config dict* (the shadow truth needs the kind's target model),
        not a prebuilt engine.  Accepted submits also feed the shadow
        truth; the ticker (or an explicit :meth:`audit_tick`) draws
        dedicated ``sample_many`` batches off published folds and runs
        the sequential goodness-of-fit monitor — see
        :mod:`repro.obs.audit`.
    """

    def __init__(
        self,
        config,
        *,
        shards: int = 8,
        seed: int | None = None,
        max_watermark_skew: float = float("inf"),
        ingest_workers: int = 4,
        workers_mode: str = "thread",
        mp_start_method: str | None = None,
        queue_capacity: int = 1 << 18,
        backpressure: str = "block",
        tenant_rates: dict[str, tuple[float, float]] | None = None,
        default_rate: tuple[float, float] | None = None,
        rng_mode: str = "per-reader",
        refresh_interval: float = 0.05,
        compact_interval: float | None = 1.0,
        max_batch: int = DEFAULT_MAX_BATCH,
        serialized: bool = False,
        metrics=None,
        audit=None,
        worker_telemetry: bool = True,
    ) -> None:
        if backpressure not in ("block", "shed"):
            raise ValueError(
                f"backpressure must be 'block' or 'shed', got {backpressure!r}"
            )
        if workers_mode not in ("thread", "process"):
            raise ValueError(
                f"workers_mode must be 'thread' or 'process', "
                f"got {workers_mode!r}"
            )
        if workers_mode == "process" and isinstance(
            config, ShardedSamplerEngine
        ):
            raise ValueError(
                "process-mode serving needs a config dict (worker "
                "processes bootstrap shard replicas from the registry "
                "config); pass config=, or use workers_mode='thread'"
            )
        if refresh_interval < 0:
            raise ValueError(
                f"refresh_interval must be ≥ 0, got {refresh_interval}"
            )
        if compact_interval is not None and compact_interval <= 0:
            raise ValueError(
                f"compact_interval must be positive or None, got {compact_interval}"
            )
        if max_batch < 1:
            raise ValueError(f"max_batch must be ≥ 1, got {max_batch}")
        if serialized:
            ingest_workers = 1
            rng_mode = "locked"
            refresh_interval = 0.0
        if metrics is None or metrics is True:
            self._metrics = MetricsRegistry()
        elif metrics is False:
            self._metrics = MetricsRegistry(enabled=False)
        else:
            self._metrics = metrics
        self._metrics_on = self._metrics.enabled
        self._config = (
            None if isinstance(config, ShardedSamplerEngine) else dict(config)
        )
        if audit is None or audit is False:
            audit_cfg = None
        elif audit is True:
            audit_cfg = AuditConfig()
        elif isinstance(audit, AuditConfig):
            audit_cfg = audit
        elif isinstance(audit, dict):
            audit_cfg = AuditConfig(**audit)
        else:
            raise ValueError(
                f"audit must be a bool, AuditConfig, or kwargs dict, "
                f"got {type(audit).__name__}"
            )
        if audit_cfg is not None and self._config is None:
            raise ValueError(
                "the audit plane needs the sampler config dict to model "
                "the target distribution; pass the config, not a "
                "prebuilt engine"
            )
        self._audit_cfg = audit_cfg
        if isinstance(config, ShardedSamplerEngine):
            self._engine = config
        else:
            # Fail actionably before building K shards' worth of state.
            kind_spec(dict(config).get("kind"))
            # The registry is installed for the build so sampler-internal
            # instruments (WindowBank rungs) land in the service registry.
            with use_registry(self._metrics):
                self._engine = ShardedSamplerEngine(
                    config,
                    shards=shards,
                    seed=seed,
                    max_watermark_skew=max_watermark_skew,
                    query_cache=True,
                    metrics=self._metrics,
                )
        k = self._engine.shards
        if ingest_workers < 1:
            raise ValueError(f"need at least one worker, got {ingest_workers}")
        ingest_workers = min(ingest_workers, k)
        self._serialized = serialized
        self._block = backpressure == "block"
        self._refresh_interval = float(refresh_interval)
        self._compact_interval = compact_interval
        self._shard_locks = [threading.Lock() for _ in range(k)]
        self._router = ShardRouter(self._engine.partitioner)
        self._queues = ShardQueues(k, queue_capacity)
        self._limiter = TenantRateLimiter(
            tenant_rates, default_rate, metrics=self._metrics
        )
        self._executor = QueryExecutor(
            self._engine, self._shard_locks, seed=seed, rng_mode=rng_mode,
            metrics=self._metrics,
        )
        self._workers_mode = workers_mode
        self._worker_errors: list[tuple[Exception, int]] = []
        self._plane: ProcessPlane | None = None
        self._worker_metrics: MetricsRegistry | None = None
        if workers_mode == "process":
            self._workers: list[IngestWorker] = []
            # The worker-telemetry mirror: worker-shipped families land
            # here (same names, extra ``worker`` label) and render inside
            # this service's exposition as an auxiliary registry.
            if worker_telemetry and self._metrics_on:
                self._worker_metrics = MetricsRegistry()
            self._plane = ProcessPlane(
                self._engine,
                self._queues,
                self._shard_locks,
                workers=ingest_workers,
                max_batch=max_batch,
                on_error=self._record_worker_error,
                metrics=self._metrics,
                start_method=mp_start_method,
                telemetry=bool(worker_telemetry),
                worker_metrics=self._worker_metrics,
            )
            if self._worker_metrics is not None:
                self._metrics.attach_auxiliary(self._worker_metrics)
                self._metrics.set_render_hook(self._pull_worker_telemetry)
            # Spawn the shard processes *now*, before any service thread
            # exists — forking a multithreaded process risks inheriting
            # a mid-held lock into the child.
            self._plane.start()
        else:
            self._workers = [
                IngestWorker(
                    w,
                    self._engine,
                    self._queues,
                    self._shard_locks,
                    owned_shards=[
                        s for s in range(k) if s % ingest_workers == w
                    ],
                    max_batch=max_batch,
                    on_error=self._record_worker_error,
                    metrics=self._metrics,
                )
                for w in range(ingest_workers)
            ]
        self._closed = False
        self._compaction_passes = 0
        self._compaction_bytes = 0
        self._ticker_stop = threading.Event()
        self._ticker: threading.Thread | None = None
        self._register_metrics(k)
        self._auditor: Auditor | None = None
        self._audit_error: Exception | None = None
        self._audit_kwargs: dict = {}
        if audit_cfg is not None:
            self._auditor = Auditor(
                self._config, audit_cfg, metrics=self._metrics
            )
            self._audit_kwargs = dict(audit_cfg.query_kwargs or {})
            if (
                self._config.get("kind") == "window_bank"
                and "horizon" not in self._audit_kwargs
            ):
                # Pin the audited rung explicitly (same default the
                # truth's profile uses), so draws and truth agree.
                self._audit_kwargs["horizon"] = float(
                    min(self._config["resolutions"])
                )
        self._burn = BurnRateTracker(
            QUERY_SLO_OBJECTIVE_SECONDS, slo=QUERY_SLO
        )
        self._health = HealthChecker(
            {
                "service_open": self._probe_service_open,
                "worker_errors": self._probe_worker_errors,
                "workers": self._probe_workers,
                "queue_saturation": self._probe_queue_saturation,
                "refresh_latch": self._probe_refresh_latch,
                "fold_staleness": self._probe_fold_staleness,
                "audit": self._probe_audit,
                "slo_burn": lambda: self._burn.probe("slo_burn"),
            },
            liveness_names=("service_open", "worker_errors"),
            status_gauge=self._m_health if self._metrics_on else None,
        )
        for worker in self._workers:
            worker.start()
        audit_interval = 0.0 if audit_cfg is None else audit_cfg.interval
        if (
            self._refresh_interval > 0
            or self._compact_interval is not None
            or audit_interval > 0
        ):
            self._ticker = threading.Thread(
                target=self._tick_loop, name="repro-serving-ticker", daemon=True
            )
            self._ticker.start()

    def _register_metrics(self, k: int) -> None:
        """Register the front-door instruments and live callback gauges
        (all shared no-ops when the registry is disabled)."""
        m = self._metrics
        self._m_submitted = m.counter(
            "repro_serving_submitted_items_total",
            CATALOG_HELP["repro_serving_submitted_items_total"],
            labels=("tenant",),
        )
        self._m_bp_shed = m.counter(
            "repro_serving_backpressure_shed_total",
            CATALOG_HELP["repro_serving_backpressure_shed_total"],
            labels=("tenant",),
        )
        submit_s = m.histogram(
            "repro_serving_submit_seconds",
            CATALOG_HELP["repro_serving_submit_seconds"],
            labels=("outcome",),
        )
        self._m_submit_s = {
            o: submit_s.labels(outcome=o)
            for o in ("accepted", "shed", "rate_limited")
        }
        query_s = m.histogram(
            "repro_serving_query_seconds",
            CATALOG_HELP["repro_serving_query_seconds"],
            labels=("method", "outcome"),
        )
        self._m_query_s = {
            (meth, out): query_s.labels(method=meth, outcome=out)
            for meth in ("sample", "sample_many")
            for out in ("ok", "error")
        }
        self._m_compact_passes = m.counter(
            "repro_serving_compaction_passes_total",
            CATALOG_HELP["repro_serving_compaction_passes_total"],
        )
        self._m_compact_bytes = m.counter(
            "repro_serving_compaction_reclaimed_bytes_total",
            CATALOG_HELP["repro_serving_compaction_reclaimed_bytes_total"],
        )
        # Audit/health/trace families are part of the catalog, so they
        # register here unconditionally (the Auditor re-acquires the
        # same families by name when the audit plane is on).
        self._m_audit_verdict = m.gauge(
            "repro_audit_verdict", CATALOG_HELP["repro_audit_verdict"]
        )
        self._m_audit_verdict.set(-1)  # no auditor, no verdict
        m.counter(
            "repro_audit_draws_total", CATALOG_HELP["repro_audit_draws_total"]
        )
        m.gauge(
            "repro_audit_tvd_bound", CATALOG_HELP["repro_audit_tvd_bound"]
        )
        m.gauge("repro_audit_evalue", CATALOG_HELP["repro_audit_evalue"])
        m.counter(
            "repro_audit_ticks_total",
            CATALOG_HELP["repro_audit_ticks_total"],
            labels=("result",),
        )
        self._m_health = m.gauge(
            "repro_health_status",
            CATALOG_HELP["repro_health_status"],
            labels=("probe",),
        )
        # Process-plane families likewise register unconditionally so a
        # thread-mode exposition still carries the whole catalog (empty
        # families render their headers with no samples).
        m.counter(
            "repro_serving_ipc_frames_total",
            CATALOG_HELP["repro_serving_ipc_frames_total"],
            labels=("direction",),
        )
        m.counter(
            "repro_serving_ipc_bytes_total",
            CATALOG_HELP["repro_serving_ipc_bytes_total"],
            labels=("direction",),
        )
        m.counter(
            "repro_serving_worker_restarts_total",
            CATALOG_HELP["repro_serving_worker_restarts_total"],
            labels=("worker",),
        )
        m.gauge(
            "repro_serving_worker_queue_depth",
            CATALOG_HELP["repro_serving_worker_queue_depth"],
            labels=("worker",),
        )
        # Cross-process telemetry plane families (children are created by
        # the ProcessPlane per worker; thread mode renders bare headers).
        m.counter(
            "repro_worker_telemetry_ships_total",
            CATALOG_HELP["repro_worker_telemetry_ships_total"],
            labels=("worker",),
        )
        m.counter(
            "repro_worker_telemetry_spans_total",
            CATALOG_HELP["repro_worker_telemetry_spans_total"],
            labels=("worker",),
        )
        m.counter(
            "repro_worker_telemetry_merge_errors_total",
            CATALOG_HELP["repro_worker_telemetry_merge_errors_total"],
            labels=("worker",),
        )
        m.gauge(
            "repro_worker_telemetry_age_seconds",
            CATALOG_HELP["repro_worker_telemetry_age_seconds"],
            labels=("worker",),
        )
        m.gauge(
            "repro_worker_telemetry_clock_offset_seconds",
            CATALOG_HELP["repro_worker_telemetry_clock_offset_seconds"],
            labels=("worker",),
        )
        trace_dropped = m.counter(
            "repro_trace_dropped_total",
            CATALOG_HELP["repro_trace_dropped_total"],
        )
        if not self._metrics_on:
            return
        # Mirror the ambient tracer's ring-buffer drops into this
        # service's registry (last bound service wins — one live tracer,
        # one serving registry is the supported production shape).
        current_tracer().bind_dropped_counter(trace_dropped)
        # Live gauges evaluate their callbacks at render/read time; each
        # callback reads state the owning component already exposes
        # thread-safely (a raising callback renders NaN, never breaks
        # exposition).
        depth = m.gauge(
            "repro_serving_queue_depth",
            CATALOG_HELP["repro_serving_queue_depth"],
            labels=("shard",),
        )
        for shard in range(k):
            depth.labels(shard=str(shard)).set_function(
                lambda s=shard: self._queues.depths()[s]
            )
        m.gauge(
            "repro_serving_queue_pending_items",
            CATALOG_HELP["repro_serving_queue_pending_items"],
        ).set_function(self._queues.pending)
        m.gauge(
            "repro_serving_tenant_buckets",
            CATALOG_HELP["repro_serving_tenant_buckets"],
        ).set_function(self._limiter.bucket_count)
        m.gauge(
            "repro_serving_fold_generation",
            CATALOG_HELP["repro_serving_fold_generation"],
        ).set_function(lambda: self._executor.generation)
        m.gauge(
            "repro_serving_fold_age_seconds",
            CATALOG_HELP["repro_serving_fold_age_seconds"],
        ).set_function(self._executor.fold_age_seconds)
        m.gauge(
            "repro_serving_fold_epoch_lag",
            CATALOG_HELP["repro_serving_fold_epoch_lag"],
        ).set_function(self._executor.epoch_lag)
        m.gauge(
            "repro_serving_watermark_skew_latched",
            CATALOG_HELP["repro_serving_watermark_skew_latched"],
        ).set_function(
            lambda: 0 if self._executor.refresh_error is None else 1
        )

    # -- background ticker --------------------------------------------------
    def _tick_loop(self) -> None:
        audit_interval = (
            self._audit_cfg.interval if self._audit_cfg is not None else 0.0
        )
        period = min(
            self._refresh_interval or float("inf"),
            self._compact_interval or float("inf"),
            audit_interval or float("inf"),
        )
        last_refresh = last_compact = last_audit = time.monotonic()
        while not self._ticker_stop.wait(period):
            now = time.monotonic()
            if (
                self._refresh_interval > 0
                and now - last_refresh >= self._refresh_interval
            ):
                try:
                    self._refresh()
                except Exception:
                    # Must not kill the ticker.  The executor latches
                    # the failure and re-raises it on every query until
                    # a refresh succeeds, so readers cannot be silently
                    # pinned to the stale pre-failure fold.  (A collect
                    # hitting a dead worker surfaces through the
                    # worker_errors latch / workers probe instead.)
                    pass
                last_refresh = now
                # Piggyback the SLO burn-rate cut on the refresh cadence.
                if self._metrics_on:
                    self._burn.observe(
                        self._metrics.get("repro_serving_query_seconds")
                    )
            if (
                self._compact_interval is not None
                and now - last_compact >= self._compact_interval
            ):
                self._run_compaction()
                last_compact = now
            if (
                audit_interval > 0
                and now - last_audit >= audit_interval
            ):
                try:
                    self.audit_tick()
                except Exception:
                    pass  # a broken tick must not kill the ticker
                last_audit = now

    def _run_compaction(self) -> None:
        """One expiry-compaction pass.  Thread mode: shard by shard,
        each under its own write lock, so ingest of the other shards
        keeps flowing.  Process mode: inside the workers (they own the
        authoritative state); the mirror picks up compacted snapshots on
        the next collect."""
        freed = 0
        with span("serving.compaction") as sp:
            if self._plane is not None:
                try:
                    freed = self._plane.compact()
                except WorkerDied:
                    # Death bookkeeping (latch or lossless restart) is
                    # the receiver thread's job; skip this pass.
                    sp.set(freed=0)
                    return
            else:
                for shard in range(self._engine.shards):
                    with self._shard_locks[shard]:
                        freed += self._engine.compact_shard(shard)
            sp.set(freed=freed)
        self._compaction_passes += 1
        self._compaction_bytes += freed
        self._m_compact_passes.inc()
        if freed:
            self._m_compact_bytes.add(freed)

    def _record_worker_error(self, exc: Exception, shard: int) -> None:
        self._worker_errors.append((exc, shard))

    def _refresh(self, force: bool = False) -> bool:
        """Refresh the published fold; in process mode, first pull the
        workers' snapshot deltas into the mirror engine so the new
        generation reflects everything acked so far."""
        if self._plane is not None:
            self._plane.collect()
        return self._executor.refresh(force)

    # -- front door ---------------------------------------------------------
    @property
    def engine(self) -> ShardedSamplerEngine:
        """The wrapped engine.  While the service is open, mutate it
        only through the service (the workers own the shard writes)."""
        return self._engine

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def metrics(self) -> MetricsRegistry:
        """The service's metrics registry — render with
        ``render_prometheus()`` / ``render_json()``."""
        return self._metrics

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceClosed("service is closed")
        if self._worker_errors:
            exc, shard = self._worker_errors[0]
            raise ServiceClosed(
                f"ingest worker for shard {shard} failed: {exc!r}"
            ) from exc

    def submit(
        self,
        items,
        timestamps=None,
        *,
        tenant: str | None = None,
        timeout: float | None = None,
    ) -> int:
        """Admit, route, and enqueue one batch; returns items accepted.

        Raises :class:`~repro.serving.errors.RateLimited` (tenant over
        its cap), :class:`~repro.serving.errors.Backpressure` (queues at
        the high-water mark under the ``shed`` policy, or still full
        after ``timeout`` under ``block``), or
        :class:`~repro.serving.errors.ServiceClosed` — in every case the
        batch was rejected atomically, and a backpressure rejection
        refunds the tenant's rate tokens (a shed submit costs nothing).
        Accepts a plain item array, a ``TimestampedStream``, or explicit
        ``timestamps`` (required form for time-windowed kinds).
        """
        self._check_open()
        t0 = time.perf_counter() if self._metrics_on else 0.0
        arr, ts = self._router.normalize(items, timestamps)
        total = int(arr.size)
        if total == 0:
            return 0
        with span("serving.submit", tenant=tenant, items=total):
            # Admission first, on the raw count: a rate-limited batch
            # never pays for hash partitioning.
            try:
                self._limiter.admit(tenant, total)
            except RateLimited:
                # The limiter owns the per-tenant rate_limited counter;
                # the front door only times the outcome.
                if self._metrics_on:
                    self._m_submit_s["rate_limited"].observe(
                        time.perf_counter() - t0
                    )
                raise
            parts = self._router.route_normalized(arr, ts)
            try:
                accepted = self._queues.put(
                    parts, block=self._block, timeout=timeout
                )
            except (Backpressure, ServiceClosed, ValueError) as exc:
                # Every put() rejection is atomic (nothing enqueued), so
                # the admitted tokens go back — a refused submit costs
                # nothing.
                self._limiter.refund(tenant, total)
                if isinstance(exc, Backpressure):
                    self._m_bp_shed.labels(
                        tenant=tenant if tenant is not None else "_default"
                    ).inc()
                    if self._metrics_on:
                        self._m_submit_s["shed"].observe(
                            time.perf_counter() - t0
                        )
                raise
        if self._auditor is not None and self._audit_error is None:
            # Same accepted batch the workers will apply (put() is
            # all-or-nothing, so `accepted == total`).  feed() is one
            # lock + append; counting is deferred to the audit tick.
            try:
                self._auditor.feed(arr, ts, tenant)
            except Exception as exc:
                self._audit_error = exc  # latch: audits skip, submits flow
        self._m_submitted.labels(
            tenant=tenant if tenant is not None else "_default"
        ).add(accepted)
        if self._metrics_on:
            self._m_submit_s["accepted"].observe(time.perf_counter() - t0)
        return accepted

    def flush(self, timeout: float | None = None) -> None:
        """Block until every accepted item has landed in its shard
        (:class:`~repro.serving.errors.FlushTimeout` on expiry).  Does
        not force a fold refresh — pair with :meth:`refresh` when a
        subsequent lock-free query must observe the flushed writes."""
        self._queues.wait_empty(timeout)
        self._check_open()

    def refresh(self) -> bool:
        """Publish a fresh fold generation now (quiesces writers);
        returns whether the epochs had moved.  Lock-free queries observe
        it immediately.  In process mode this first collects the shard
        workers' snapshot deltas, so ``flush()`` + ``refresh()`` is
        read-your-writes in both modes."""
        self._check_open()
        return self._refresh()

    def _pre_query(self, kwargs: dict) -> None:
        """The freshness leg run before every query.  Serialized mode
        flushes (and, in process mode, compacts the workers at the query
        clock then collects their deltas — reproducing the direct
        engine's exact compact-then-draw lineage, so the locked query's
        own compaction pass is a bitwise no-op).  Synchronous-refresh
        mode republishes the fold."""
        if self._serialized:
            self.flush()
            if self._plane is not None:
                self._plane.compact(now=kwargs.get("now"))
                self._plane.collect()
        elif (
            self._refresh_interval == 0
            and self._executor.rng_mode != "locked"
        ):
            self._refresh()

    def sample(self, **kwargs):
        """One truly perfect sample from the query plane.

        ``per-reader`` mode serves the last *published* fold lock-free —
        answers lag ingest by at most ``refresh_interval`` (call
        :meth:`flush` + :meth:`refresh` for read-your-writes).
        ``locked`` mode serializes on the live engine; serialized mode
        additionally flushes first, making the whole request sequence
        bitwise identical to direct engine calls (in process mode the
        flush is followed by a worker compact at the query clock and a
        delta collect, so the mirror holds the exact state a direct
        engine would query).
        """
        self._check_open()
        self._pre_query(kwargs)
        if not self._metrics_on:
            return self._executor.sample(**kwargs)
        t0 = time.perf_counter()
        try:
            result = self._executor.sample(**kwargs)
        except Exception:
            self._m_query_s[("sample", "error")].observe(
                time.perf_counter() - t0
            )
            raise
        self._m_query_s[("sample", "ok")].observe(time.perf_counter() - t0)
        return result

    def sample_many(self, k: int, **kwargs):
        """``k`` truly perfect samples, amortized — same freshness
        contract as :meth:`sample`."""
        self._check_open()
        self._pre_query(kwargs)
        if not self._metrics_on:
            return self._executor.sample_many(k, **kwargs)
        t0 = time.perf_counter()
        try:
            result = self._executor.sample_many(k, **kwargs)
        except Exception:
            self._m_query_s[("sample_many", "error")].observe(
                time.perf_counter() - t0
            )
            raise
        self._m_query_s[("sample_many", "ok")].observe(time.perf_counter() - t0)
        return result

    # -- audit plane --------------------------------------------------------
    @property
    def config(self) -> dict | None:
        """The sampler config the service was built with (``None`` when
        it wraps a prebuilt engine)."""
        return None if self._config is None else dict(self._config)

    @property
    def auditor(self) -> Auditor | None:
        return self._auditor

    def audit_tick(self) -> AuditEvent | None:
        """Run one audit tick now: verify the queues are drained, pin a
        fresh fold, take the dedicated audit draws, and judge them
        against the shadow truth.  Returns the tick's
        :class:`~repro.obs.AuditEvent` (``None`` when the audit plane is
        off).  Ticks that would race live ingest — pending items, a
        truth-feed or fold-generation move during the draws — are
        recorded as skips/discards, never judged: a verdict must only
        ever compare draws and truth that describe the same state.
        """
        self._check_open()
        aud = self._auditor
        if aud is None:
            return None
        if not aud.supported:
            return aud.record_skip(
                "unsupported",
                f"kind {aud.kind!r} exposes no auditable sample()",
            )
        if self._audit_error is not None:
            return aud.record_skip(
                "skipped_feed_error", repr(self._audit_error)
            )
        if self._queues.pending():
            return aud.record_skip(
                "skipped_busy", "ingest queues not drained"
            )
        try:
            self._refresh()
        except Exception as exc:
            return aud.record_skip("skipped_refresh_error", repr(exc))
        version = aud.truth_version
        generation = self._executor.generation
        try:
            results = self._executor.sample_many(
                self._audit_cfg.draws, **self._audit_kwargs
            )
            watermark = self._executor.published().watermark
        except Exception as exc:
            return aud.record_skip("skipped_query_error", repr(exc))
        if (
            aud.truth_version != version
            or self._executor.generation != generation
            or self._queues.pending()
        ):
            return aud.record_skip(
                "discarded_race", "ingest raced the audit draws"
            )
        return aud.evaluate(results, now=watermark, generation=generation)

    def audit_status(self) -> dict:
        """The audit plane's machine-readable status (also serialized
        into the flight-recorder bundle)."""
        if self._auditor is None:
            return {"enabled": False}
        out = self._auditor.status()
        out["enabled"] = True
        out["interval"] = self._audit_cfg.interval
        out["feed_error"] = (
            None if self._audit_error is None else repr(self._audit_error)
        )
        out["history"] = [e.to_dict() for e in self._auditor.history()]
        return out

    # -- health plane -------------------------------------------------------
    def _probe_service_open(self) -> ProbeResult:
        if self._closed:
            return ProbeResult("service_open", "fail", "service is closed")
        return ProbeResult("service_open", "pass", "open")

    def _probe_worker_errors(self) -> ProbeResult:
        n = len(self._worker_errors)
        if n:
            exc, shard = self._worker_errors[0]
            return ProbeResult(
                "worker_errors", "fail",
                f"{n} worker error(s); first: shard {shard}: {exc!r}",
                float(n),
            )
        return ProbeResult("worker_errors", "pass", "no worker errors", 0.0)

    def _probe_workers(self) -> ProbeResult:
        """Are the shard-owning workers (threads or processes) serving?
        Process mode reports dead and stalled shard processes by worker
        index; lossless restarts keep the probe green (they show up in
        ``repro_serving_worker_restarts_total`` instead)."""
        if self._closed:
            return ProbeResult("workers", "pass", "service closed")
        if self._plane is not None:
            statuses = self._plane.status()
            dead = [st["worker"] for st in statuses if not st["alive"]]
            stalled = [st["worker"] for st in statuses if st["stalled"]]
            restarts = sum(st["restarts"] for st in statuses)
            if dead:
                return ProbeResult(
                    "workers", "fail",
                    f"dead shard process(es) for worker(s) {dead} "
                    f"(shards {[st['shards'] for st in statuses if not st['alive']]})",
                    float(len(dead)),
                )
            if stalled:
                return ProbeResult(
                    "workers", "warn",
                    f"stalled shard process(es) for worker(s) {stalled} "
                    "(frames in flight, no ack)",
                    float(len(stalled)),
                )
            if self._plane.telemetry_enabled:
                # Telemetry freshness: a live pull is the probe — every
                # worker must answer, and the merged view must be fresh.
                unresponsive = self._plane.pull_telemetry(timeout=5.0)
                stale = [
                    st["worker"]
                    for st in self._plane.telemetry_status()
                    if freshness_status(st["last_age_s"], warn_after=30.0)
                    != "pass"
                ]
                lagging = sorted(set(unresponsive) | set(stale))
                if lagging:
                    return ProbeResult(
                        "workers", "warn",
                        f"telemetry stale for worker(s) {lagging} "
                        "(no payload merged recently)",
                        float(len(lagging)),
                    )
            return ProbeResult(
                "workers", "pass",
                f"{len(statuses)} shard process(es) live"
                + (f", {restarts} lossless restart(s)" if restarts else "")
                + (
                    ", telemetry fresh"
                    if self._plane.telemetry_enabled
                    else ""
                ),
                0.0,
            )
        dead = [w.index for w in self._workers if not w.is_alive()]
        if dead:
            return ProbeResult(
                "workers", "fail",
                f"dead ingest thread(s) for worker(s) {dead}",
                float(len(dead)),
            )
        return ProbeResult(
            "workers", "pass", f"{len(self._workers)} ingest thread(s) live", 0.0
        )

    def _probe_queue_saturation(self) -> ProbeResult:
        depths = self._queues.depths()
        frac = max(depths) / self._queues.capacity if depths else 0.0
        detail = f"max shard occupancy {frac:.0%} of capacity"
        if frac > 0.9:
            return ProbeResult("queue_saturation", "fail", detail, frac)
        if frac > 0.5:
            return ProbeResult("queue_saturation", "warn", detail, frac)
        return ProbeResult("queue_saturation", "pass", detail, frac)

    def _probe_refresh_latch(self) -> ProbeResult:
        error = self._executor.refresh_error
        if error is not None:
            return ProbeResult(
                "refresh_latch", "fail", f"latched refresh failure: {error!r}"
            )
        return ProbeResult("refresh_latch", "pass", "no latched failure")

    def _probe_fold_staleness(self) -> ProbeResult:
        if self._refresh_interval <= 0:
            return ProbeResult(
                "fold_staleness", "pass", "synchronous refresh mode"
            )
        if self._executor.generation < 0:
            return ProbeResult(
                "fold_staleness", "pass", "no fold published yet"
            )
        age = self._executor.fold_age_seconds()
        lag = self._executor.epoch_lag()
        detail = f"fold age {age:.3f}s (interval {self._refresh_interval}s)"
        # A stale fold only matters while ingest has moved past it.
        if lag > 0 and age > max(20 * self._refresh_interval, 5.0):
            return ProbeResult("fold_staleness", "fail", detail, age)
        if lag > 0 and age > max(5 * self._refresh_interval, 1.0):
            return ProbeResult("fold_staleness", "warn", detail, age)
        return ProbeResult("fold_staleness", "pass", detail, age)

    def _probe_audit(self) -> ProbeResult:
        if self._auditor is None:
            return ProbeResult("audit", "pass", "audit plane disabled")
        if self._audit_error is not None:
            return ProbeResult(
                "audit", "warn",
                f"truth feed latched an error: {self._audit_error!r}",
            )
        if self._auditor.flagged:
            return ProbeResult(
                "audit", "fail",
                f"sequential monitor flagged the sampler "
                f"(e-value {self._auditor.monitor.e_value:.3g} ≥ "
                f"1/alpha {self._auditor.monitor.threshold:.3g})",
                0.0,
            )
        if not self._auditor.supported:
            return ProbeResult(
                "audit", "pass", f"kind {self._auditor.kind!r} not auditable"
            )
        return ProbeResult(
            "audit", "pass",
            f"verdict {self._auditor.verdict} after "
            f"{self._auditor.draws_total} draws",
            float(self._auditor.verdict),
        )

    def health(self) -> HealthReport:
        """Run every readiness/liveness probe now (never raises, safe on
        a closed service).  ``report.live`` — keep the process;
        ``report.ready`` — keep the traffic.  Probe statuses also land
        in the ``repro_health_status`` gauge."""
        return self._health.check()

    # -- flight recorder ----------------------------------------------------
    def snapshot_shards_bytes(self) -> list[bytes]:
        """Per-shard snapshot envelopes (``save_state`` bytes), each
        captured under its shard's write lock.  In process mode the
        workers' latest deltas are collected first, so the blobs reflect
        everything acked at call time."""
        if self._plane is not None:
            try:
                self._plane.collect()
            except WorkerDied:
                pass  # dump what the mirror has — better than nothing
        blobs = []
        for shard, sampler in enumerate(self._engine.samplers):
            with self._shard_locks[shard]:
                blobs.append(save_state(sampler))
        return blobs

    def dump(self, path) -> dict:
        """Write the flight-recorder debug bundle to ``path`` (a zip);
        returns its manifest.  See :mod:`repro.obs.flight` for the
        bundle layout."""
        from repro.obs.flight import write_bundle

        return write_bundle(self, path)

    # -- cross-process telemetry --------------------------------------------
    def _pull_worker_telemetry(self) -> None:
        """Best-effort fresh pull from every worker (no-op in thread
        mode, with telemetry off, or once closed).  Installed as the
        registry render hook so every exposition reflects the workers'
        current counters, and called by ``stats()`` for the same
        reason."""
        plane = self._plane
        if plane is None or self._closed or not plane.telemetry_enabled:
            return
        try:
            plane.pull_telemetry(timeout=5.0)
        except Exception:
            pass

    def worker_telemetry_info(self) -> list[dict] | None:
        """Per-worker telemetry detail — shipping status, the raw
        unmerged metric snapshot, retained span records — after a fresh
        pull.  ``None`` in thread mode."""
        if self._plane is None:
            return None
        self._pull_worker_telemetry()
        return self._plane.telemetry_info()

    def export_chrome(self, path_or_file) -> int:
        """Export one merged Chrome trace: the ambient tracer's spans on
        this process's real pid plus every worker's shipped spans on
        their pids, clock-aligned via the per-generation min-RTT offset
        estimates.  Returns the number of span events written."""
        import json as _json
        import os as _os

        from repro.obs.trace import export_chrome_merged

        groups = [
            {
                "name": "repro-serve",
                "pid": _os.getpid(),
                "offset_ns": 0,
                "records": [
                    _json.loads(event.to_json())
                    for event in current_tracer().events()
                ],
            }
        ]
        if self._plane is not None:
            self._pull_worker_telemetry()
            groups.extend(self._plane.trace_groups())
        return export_chrome_merged(path_or_file, groups)

    # -- observability ------------------------------------------------------
    def stats(self) -> dict:
        """The service's stats endpoint: queue/ingest counters, query
        plane state, engine cache hit/miss/rebase counters, compaction
        totals.

        Built on the metrics registry: with metrics enabled the ingest
        and compaction tallies are the registry counter totals (the same
        numbers the Prometheus exposition reports — the two endpoints
        cannot drift, every count is written exactly once per event at
        one site); with ``metrics=False`` they fall back to the
        components' internal integers.  The dict keys are stable across
        both modes and across the pre-obs releases.

        Advisory, not transactional: the engine fields (position,
        watermark, ``approx_size_bytes`` — the latter an O(state) walk)
        are read without quiescing the workers, so under live ingest
        they reflect a best-effort instant, not a consistent cut.
        """
        self._pull_worker_telemetry()
        queues = self._queues
        if self._metrics_on:
            m = self._metrics
            counts = {
                "submitted_items": int(self._m_submitted.total()),
                "applied_items": int(
                    m.get("repro_serving_applied_items_total").total()
                ),
                "failed_items": int(
                    m.get("repro_serving_failed_items_total").total()
                ),
                "backpressure_shed": int(self._m_bp_shed.total()),
                "rate_limited": int(
                    m.get("repro_serving_rate_limited_total").total()
                ),
            }
            compaction = {
                "passes": int(self._m_compact_passes.total()),
                "bytes_reclaimed": int(self._m_compact_bytes.total()),
            }
            latency = {
                "note": (
                    "p50/p90/p99 are bucket-resolution approximations "
                    "derived from the latency histogram buckets"
                ),
                "submit_seconds": m.get(
                    "repro_serving_submit_seconds"
                ).merged_percentiles(),
                "query_seconds": m.get(
                    "repro_serving_query_seconds"
                ).merged_percentiles(),
                # In process mode with telemetry, the apply histogram
                # samples live in the worker-shipped mirror; merge both
                # (identical ladders) into one estimate.
                "ingest_apply_seconds": m.get(
                    "repro_serving_ingest_apply_seconds"
                ).merged_percentiles(
                    self._worker_metrics.get(
                        "repro_serving_ingest_apply_seconds"
                    )
                    if self._worker_metrics is not None
                    else None
                ),
            }
        else:
            counts = {
                "submitted_items": queues.submitted_items,
                "applied_items": queues.applied_items,
                "failed_items": queues.failed_items,
                "backpressure_shed": queues.shed_count,
                "rate_limited": self._limiter.shed_count,
            }
            compaction = {
                "passes": self._compaction_passes,
                "bytes_reclaimed": self._compaction_bytes,
            }
            latency = None
        audit = None
        if self._auditor is not None:
            audit = {
                "verdict": self._auditor.verdict,
                "flagged": self._auditor.flagged,
                "draws_total": self._auditor.draws_total,
                "e_value": self._auditor.monitor.e_value,
            }
        ingest_stats = {
            **counts,
            "pending_items": queues.pending(),
            "queue_depths": queues.depths(),
            "queue_capacity": queues.capacity,
            "worker_errors": len(self._worker_errors),
        }
        if self._plane is not None:
            statuses = self._plane.status()
            ingest_stats["worker_processes"] = statuses
            ingest_stats["worker_restarts"] = sum(
                st["restarts"] for st in statuses
            )
            ingest_stats["worker_telemetry"] = self._plane.telemetry_status()
        return {
            "closed": self._closed,
            "serialized": self._serialized,
            "shards": self._engine.shards,
            "workers": (
                len(self._plane.links)
                if self._plane is not None
                else len(self._workers)
            ),
            "workers_mode": self._workers_mode,
            "metrics_enabled": self._metrics_on,
            "ingest": ingest_stats,
            "query": self._executor.stats(),
            "latency": latency,
            "audit": audit,
            "engine": {
                "position": self._engine.position,
                "watermark": self._engine.watermark(),
                "approx_size_bytes": self._engine.approx_size_bytes(),
                "cache": self._engine.cache_info(),
            },
            "compaction": compaction,
        }

    @property
    def position(self) -> int:
        """Items applied to shard state so far (excludes queued)."""
        return self._engine.position

    # -- shutdown -----------------------------------------------------------
    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the service: reject new work, optionally drain the
        queues, stop workers and ticker.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._queues.close()
        if drain:
            try:
                self._queues.wait_empty(timeout)
            except Exception:
                pass
        for worker in self._workers:
            worker.stop()
        self._ticker_stop.set()
        if self._plane is not None:
            self._plane.stop()
        for worker in self._workers:
            worker.join(timeout=5.0)
        if self._ticker is not None:
            self._ticker.join(timeout=5.0)

    def __enter__(self) -> "SamplerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
