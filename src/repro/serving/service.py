"""SamplerService — the concurrent front door over the sharded engine.

One object wires the whole serving path together::

    submit(batch) ──► admission (per-tenant token buckets)
                  ──► router (engine-identical hash partition)
                  ──► bounded per-shard queues  ──► N ingest workers
                                                        │ (per-shard locks)
    sample()/sample_many() ◄── per-reader query views ◄─┴─ fold refresh +
                               (lock-free)                 compaction ticker

Ingestion is shard-parallel and bitwise-deterministic: per-shard FIFO
and single shard ownership make the final engine state identical to a
sequential ``engine.ingest`` of the same submits, for any worker count.
Queries serve off the epoch-validated merged view concurrently — see
:mod:`repro.serving.executor` for the ``per-reader`` / ``locked`` RNG
contract.  Backpressure (queue high-water marks), per-tenant rate caps,
and load-shed errors guard the front; a background ticker refreshes the
fold (bounded staleness) and runs expiry compaction.

**Serialized mode** (``serialized=True``) is the replay/debug
configuration: one worker, locked single-stream queries, and an
implicit ``flush()`` before every query — the full request sequence
(submits and queries) becomes bitwise identical to driving the engine
directly from one thread, which is how the CI determinism gate compares
the service against the engine.

The asyncio facade over this same core lives in
:mod:`repro.serving.aio`; a tiny CLI (``repro-serve``) in
:mod:`repro.serving.cli`.
"""

from __future__ import annotations

import threading
import time

from repro.engine.registry import kind_spec
from repro.engine.shard import ShardedSamplerEngine
from repro.obs.catalog import CATALOG_HELP
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.trace import span
from repro.serving.errors import Backpressure, RateLimited, ServiceClosed
from repro.serving.executor import QueryExecutor
from repro.serving.router import ShardRouter, TenantRateLimiter
from repro.serving.workers import IngestWorker, ShardQueues

__all__ = ["SamplerService"]

#: Default coalescing limit for worker micro-batches (items).
DEFAULT_MAX_BATCH = 1 << 16


class SamplerService:
    """Concurrent ingest + query serving over a sharded sampler engine.

    Parameters
    ----------
    config:
        Sampler config for the engine registry (``{"kind": ..., ...}``),
        or an already-built :class:`ShardedSamplerEngine` to serve (the
        service then owns its concurrency: stop driving it directly).
    shards, seed, max_watermark_skew:
        Engine construction knobs (ignored when ``config`` is an
        engine).  The service always builds the engine with the query
        cache on and no ``compact_every`` cadence — the ticker owns
        compaction here.
    ingest_workers:
        Ingest worker threads (clamped to the shard count).  Shards are
        assigned round-robin, each owned by exactly one worker.
    queue_capacity:
        Per-shard queue high-water mark, in items (queued + in-flight).
    backpressure:
        ``"block"`` (default): ``submit`` waits for capacity (up to its
        ``timeout``); ``"shed"``: a full lane rejects the whole submit
        with :class:`~repro.serving.errors.Backpressure` immediately.
        Either way admission is atomic — a rejected submit enqueued
        nothing.
    tenant_rates / default_rate:
        Per-tenant ``(items_per_second, burst)`` caps, and the cap for
        tenants not listed (``None`` = unlimited).
    rng_mode:
        ``"per-reader"`` (lock-free concurrent queries, default) or
        ``"locked"`` (serialized bitwise-replay queries) — see
        :mod:`repro.serving.executor`.
    refresh_interval:
        Fold publication cadence in seconds — the staleness bound for
        lock-free reads.  ``0`` disables the ticker's refresh leg and
        refreshes synchronously before *every* query instead (freshest
        answers, writers quiesced per query).
    compact_interval:
        Expiry-compaction cadence in seconds (``None`` disables; the
        pass runs shard-by-shard under each shard's own lock, never
        stopping the world).
    max_batch:
        Worker micro-batch coalescing limit, in items.
    serialized:
        Replay/debug mode — see the module docstring.
    metrics:
        The service's :class:`~repro.obs.MetricsRegistry`.  ``None``
        (default) creates one fresh enabled registry per service;
        ``False`` disables metrics entirely (every instrument is the
        shared no-op — the zero-overhead configuration); pass a registry
        instance to aggregate several services into one exposition.  The
        registry is installed while the engine is built, so engine fold
        metrics and per-rung window counters land in it too; render it
        with ``service.metrics.render_prometheus()`` or the
        ``repro-serve stats`` CLI.
    """

    def __init__(
        self,
        config,
        *,
        shards: int = 8,
        seed: int | None = None,
        max_watermark_skew: float = float("inf"),
        ingest_workers: int = 4,
        queue_capacity: int = 1 << 18,
        backpressure: str = "block",
        tenant_rates: dict[str, tuple[float, float]] | None = None,
        default_rate: tuple[float, float] | None = None,
        rng_mode: str = "per-reader",
        refresh_interval: float = 0.05,
        compact_interval: float | None = 1.0,
        max_batch: int = DEFAULT_MAX_BATCH,
        serialized: bool = False,
        metrics=None,
    ) -> None:
        if backpressure not in ("block", "shed"):
            raise ValueError(
                f"backpressure must be 'block' or 'shed', got {backpressure!r}"
            )
        if refresh_interval < 0:
            raise ValueError(
                f"refresh_interval must be ≥ 0, got {refresh_interval}"
            )
        if compact_interval is not None and compact_interval <= 0:
            raise ValueError(
                f"compact_interval must be positive or None, got {compact_interval}"
            )
        if max_batch < 1:
            raise ValueError(f"max_batch must be ≥ 1, got {max_batch}")
        if serialized:
            ingest_workers = 1
            rng_mode = "locked"
            refresh_interval = 0.0
        if metrics is None or metrics is True:
            self._metrics = MetricsRegistry()
        elif metrics is False:
            self._metrics = MetricsRegistry(enabled=False)
        else:
            self._metrics = metrics
        self._metrics_on = self._metrics.enabled
        if isinstance(config, ShardedSamplerEngine):
            self._engine = config
        else:
            # Fail actionably before building K shards' worth of state.
            kind_spec(dict(config).get("kind"))
            # The registry is installed for the build so sampler-internal
            # instruments (WindowBank rungs) land in the service registry.
            with use_registry(self._metrics):
                self._engine = ShardedSamplerEngine(
                    config,
                    shards=shards,
                    seed=seed,
                    max_watermark_skew=max_watermark_skew,
                    query_cache=True,
                    metrics=self._metrics,
                )
        k = self._engine.shards
        if ingest_workers < 1:
            raise ValueError(f"need at least one worker, got {ingest_workers}")
        ingest_workers = min(ingest_workers, k)
        self._serialized = serialized
        self._block = backpressure == "block"
        self._refresh_interval = float(refresh_interval)
        self._compact_interval = compact_interval
        self._shard_locks = [threading.Lock() for _ in range(k)]
        self._router = ShardRouter(self._engine.partitioner)
        self._queues = ShardQueues(k, queue_capacity)
        self._limiter = TenantRateLimiter(
            tenant_rates, default_rate, metrics=self._metrics
        )
        self._executor = QueryExecutor(
            self._engine, self._shard_locks, seed=seed, rng_mode=rng_mode,
            metrics=self._metrics,
        )
        self._workers = [
            IngestWorker(
                w,
                self._engine,
                self._queues,
                self._shard_locks,
                owned_shards=[s for s in range(k) if s % ingest_workers == w],
                max_batch=max_batch,
                on_error=self._record_worker_error,
                metrics=self._metrics,
            )
            for w in range(ingest_workers)
        ]
        self._worker_errors: list[tuple[Exception, int]] = []
        self._closed = False
        self._compaction_passes = 0
        self._compaction_bytes = 0
        self._ticker_stop = threading.Event()
        self._ticker: threading.Thread | None = None
        self._register_metrics(k)
        for worker in self._workers:
            worker.start()
        if self._refresh_interval > 0 or self._compact_interval is not None:
            self._ticker = threading.Thread(
                target=self._tick_loop, name="repro-serving-ticker", daemon=True
            )
            self._ticker.start()

    def _register_metrics(self, k: int) -> None:
        """Register the front-door instruments and live callback gauges
        (all shared no-ops when the registry is disabled)."""
        m = self._metrics
        self._m_submitted = m.counter(
            "repro_serving_submitted_items_total",
            CATALOG_HELP["repro_serving_submitted_items_total"],
            labels=("tenant",),
        )
        self._m_bp_shed = m.counter(
            "repro_serving_backpressure_shed_total",
            CATALOG_HELP["repro_serving_backpressure_shed_total"],
            labels=("tenant",),
        )
        submit_s = m.histogram(
            "repro_serving_submit_seconds",
            CATALOG_HELP["repro_serving_submit_seconds"],
            labels=("outcome",),
        )
        self._m_submit_s = {
            o: submit_s.labels(outcome=o)
            for o in ("accepted", "shed", "rate_limited")
        }
        query_s = m.histogram(
            "repro_serving_query_seconds",
            CATALOG_HELP["repro_serving_query_seconds"],
            labels=("method", "outcome"),
        )
        self._m_query_s = {
            (meth, out): query_s.labels(method=meth, outcome=out)
            for meth in ("sample", "sample_many")
            for out in ("ok", "error")
        }
        self._m_compact_passes = m.counter(
            "repro_serving_compaction_passes_total",
            CATALOG_HELP["repro_serving_compaction_passes_total"],
        )
        self._m_compact_bytes = m.counter(
            "repro_serving_compaction_reclaimed_bytes_total",
            CATALOG_HELP["repro_serving_compaction_reclaimed_bytes_total"],
        )
        if not self._metrics_on:
            return
        # Live gauges evaluate their callbacks at render/read time; each
        # callback reads state the owning component already exposes
        # thread-safely (a raising callback renders NaN, never breaks
        # exposition).
        depth = m.gauge(
            "repro_serving_queue_depth",
            CATALOG_HELP["repro_serving_queue_depth"],
            labels=("shard",),
        )
        for shard in range(k):
            depth.labels(shard=str(shard)).set_function(
                lambda s=shard: self._queues.depths()[s]
            )
        m.gauge(
            "repro_serving_queue_pending_items",
            CATALOG_HELP["repro_serving_queue_pending_items"],
        ).set_function(self._queues.pending)
        m.gauge(
            "repro_serving_tenant_buckets",
            CATALOG_HELP["repro_serving_tenant_buckets"],
        ).set_function(self._limiter.bucket_count)
        m.gauge(
            "repro_serving_fold_generation",
            CATALOG_HELP["repro_serving_fold_generation"],
        ).set_function(lambda: self._executor.generation)
        m.gauge(
            "repro_serving_fold_age_seconds",
            CATALOG_HELP["repro_serving_fold_age_seconds"],
        ).set_function(self._executor.fold_age_seconds)
        m.gauge(
            "repro_serving_fold_epoch_lag",
            CATALOG_HELP["repro_serving_fold_epoch_lag"],
        ).set_function(self._executor.epoch_lag)
        m.gauge(
            "repro_serving_watermark_skew_latched",
            CATALOG_HELP["repro_serving_watermark_skew_latched"],
        ).set_function(
            lambda: 0 if self._executor.refresh_error is None else 1
        )

    # -- background ticker --------------------------------------------------
    def _tick_loop(self) -> None:
        period = min(
            self._refresh_interval or float("inf"),
            self._compact_interval or float("inf"),
        )
        last_refresh = last_compact = time.monotonic()
        while not self._ticker_stop.wait(period):
            now = time.monotonic()
            if (
                self._refresh_interval > 0
                and now - last_refresh >= self._refresh_interval
            ):
                try:
                    self._executor.refresh()
                except Exception:
                    # Must not kill the ticker.  The executor latches
                    # the failure and re-raises it on every query until
                    # a refresh succeeds, so readers cannot be silently
                    # pinned to the stale pre-failure fold.
                    pass
                last_refresh = now
            if (
                self._compact_interval is not None
                and now - last_compact >= self._compact_interval
            ):
                self._run_compaction()
                last_compact = now

    def _run_compaction(self) -> None:
        """One expiry-compaction pass, shard by shard — each under its
        own write lock, so ingest of the other shards keeps flowing."""
        freed = 0
        with span("serving.compaction") as sp:
            for shard in range(self._engine.shards):
                with self._shard_locks[shard]:
                    freed += self._engine.compact_shard(shard)
            sp.set(freed=freed)
        self._compaction_passes += 1
        self._compaction_bytes += freed
        self._m_compact_passes.inc()
        if freed:
            self._m_compact_bytes.add(freed)

    def _record_worker_error(self, exc: Exception, shard: int) -> None:
        self._worker_errors.append((exc, shard))

    # -- front door ---------------------------------------------------------
    @property
    def engine(self) -> ShardedSamplerEngine:
        """The wrapped engine.  While the service is open, mutate it
        only through the service (the workers own the shard writes)."""
        return self._engine

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def metrics(self) -> MetricsRegistry:
        """The service's metrics registry — render with
        ``render_prometheus()`` / ``render_json()``."""
        return self._metrics

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceClosed("service is closed")
        if self._worker_errors:
            exc, shard = self._worker_errors[0]
            raise ServiceClosed(
                f"ingest worker for shard {shard} failed: {exc!r}"
            ) from exc

    def submit(
        self,
        items,
        timestamps=None,
        *,
        tenant: str | None = None,
        timeout: float | None = None,
    ) -> int:
        """Admit, route, and enqueue one batch; returns items accepted.

        Raises :class:`~repro.serving.errors.RateLimited` (tenant over
        its cap), :class:`~repro.serving.errors.Backpressure` (queues at
        the high-water mark under the ``shed`` policy, or still full
        after ``timeout`` under ``block``), or
        :class:`~repro.serving.errors.ServiceClosed` — in every case the
        batch was rejected atomically, and a backpressure rejection
        refunds the tenant's rate tokens (a shed submit costs nothing).
        Accepts a plain item array, a ``TimestampedStream``, or explicit
        ``timestamps`` (required form for time-windowed kinds).
        """
        self._check_open()
        t0 = time.perf_counter() if self._metrics_on else 0.0
        arr, ts = self._router.normalize(items, timestamps)
        total = int(arr.size)
        if total == 0:
            return 0
        with span("serving.submit", tenant=tenant, items=total):
            # Admission first, on the raw count: a rate-limited batch
            # never pays for hash partitioning.
            try:
                self._limiter.admit(tenant, total)
            except RateLimited:
                # The limiter owns the per-tenant rate_limited counter;
                # the front door only times the outcome.
                if self._metrics_on:
                    self._m_submit_s["rate_limited"].observe(
                        time.perf_counter() - t0
                    )
                raise
            parts = self._router.route_normalized(arr, ts)
            try:
                accepted = self._queues.put(
                    parts, block=self._block, timeout=timeout
                )
            except (Backpressure, ServiceClosed, ValueError) as exc:
                # Every put() rejection is atomic (nothing enqueued), so
                # the admitted tokens go back — a refused submit costs
                # nothing.
                self._limiter.refund(tenant, total)
                if isinstance(exc, Backpressure):
                    self._m_bp_shed.labels(
                        tenant=tenant if tenant is not None else "_default"
                    ).inc()
                    if self._metrics_on:
                        self._m_submit_s["shed"].observe(
                            time.perf_counter() - t0
                        )
                raise
        self._m_submitted.labels(
            tenant=tenant if tenant is not None else "_default"
        ).add(accepted)
        if self._metrics_on:
            self._m_submit_s["accepted"].observe(time.perf_counter() - t0)
        return accepted

    def flush(self, timeout: float | None = None) -> None:
        """Block until every accepted item has landed in its shard
        (:class:`~repro.serving.errors.FlushTimeout` on expiry).  Does
        not force a fold refresh — pair with :meth:`refresh` when a
        subsequent lock-free query must observe the flushed writes."""
        self._queues.wait_empty(timeout)
        self._check_open()

    def refresh(self) -> bool:
        """Publish a fresh fold generation now (quiesces writers);
        returns whether the epochs had moved.  Lock-free queries observe
        it immediately."""
        self._check_open()
        return self._executor.refresh()

    def sample(self, **kwargs):
        """One truly perfect sample from the query plane.

        ``per-reader`` mode serves the last *published* fold lock-free —
        answers lag ingest by at most ``refresh_interval`` (call
        :meth:`flush` + :meth:`refresh` for read-your-writes).
        ``locked`` mode serializes on the live engine; serialized mode
        additionally flushes first, making the whole request sequence
        bitwise identical to direct engine calls.
        """
        self._check_open()
        if self._serialized:
            self.flush()
        elif self._refresh_interval == 0 and self._executor.rng_mode != "locked":
            self._executor.refresh()
        if not self._metrics_on:
            return self._executor.sample(**kwargs)
        t0 = time.perf_counter()
        try:
            result = self._executor.sample(**kwargs)
        except Exception:
            self._m_query_s[("sample", "error")].observe(
                time.perf_counter() - t0
            )
            raise
        self._m_query_s[("sample", "ok")].observe(time.perf_counter() - t0)
        return result

    def sample_many(self, k: int, **kwargs):
        """``k`` truly perfect samples, amortized — same freshness
        contract as :meth:`sample`."""
        self._check_open()
        if self._serialized:
            self.flush()
        elif self._refresh_interval == 0 and self._executor.rng_mode != "locked":
            self._executor.refresh()
        if not self._metrics_on:
            return self._executor.sample_many(k, **kwargs)
        t0 = time.perf_counter()
        try:
            result = self._executor.sample_many(k, **kwargs)
        except Exception:
            self._m_query_s[("sample_many", "error")].observe(
                time.perf_counter() - t0
            )
            raise
        self._m_query_s[("sample_many", "ok")].observe(time.perf_counter() - t0)
        return result

    # -- observability ------------------------------------------------------
    def stats(self) -> dict:
        """The service's stats endpoint: queue/ingest counters, query
        plane state, engine cache hit/miss/rebase counters, compaction
        totals.

        Built on the metrics registry: with metrics enabled the ingest
        and compaction tallies are the registry counter totals (the same
        numbers the Prometheus exposition reports — the two endpoints
        cannot drift, every count is written exactly once per event at
        one site); with ``metrics=False`` they fall back to the
        components' internal integers.  The dict keys are stable across
        both modes and across the pre-obs releases.

        Advisory, not transactional: the engine fields (position,
        watermark, ``approx_size_bytes`` — the latter an O(state) walk)
        are read without quiescing the workers, so under live ingest
        they reflect a best-effort instant, not a consistent cut.
        """
        queues = self._queues
        if self._metrics_on:
            m = self._metrics
            counts = {
                "submitted_items": int(self._m_submitted.total()),
                "applied_items": int(
                    m.get("repro_serving_applied_items_total").total()
                ),
                "failed_items": int(
                    m.get("repro_serving_failed_items_total").total()
                ),
                "backpressure_shed": int(self._m_bp_shed.total()),
                "rate_limited": int(
                    m.get("repro_serving_rate_limited_total").total()
                ),
            }
            compaction = {
                "passes": int(self._m_compact_passes.total()),
                "bytes_reclaimed": int(self._m_compact_bytes.total()),
            }
        else:
            counts = {
                "submitted_items": queues.submitted_items,
                "applied_items": queues.applied_items,
                "failed_items": queues.failed_items,
                "backpressure_shed": queues.shed_count,
                "rate_limited": self._limiter.shed_count,
            }
            compaction = {
                "passes": self._compaction_passes,
                "bytes_reclaimed": self._compaction_bytes,
            }
        return {
            "closed": self._closed,
            "serialized": self._serialized,
            "shards": self._engine.shards,
            "workers": len(self._workers),
            "metrics_enabled": self._metrics_on,
            "ingest": {
                **counts,
                "pending_items": queues.pending(),
                "queue_depths": queues.depths(),
                "queue_capacity": queues.capacity,
                "worker_errors": len(self._worker_errors),
            },
            "query": self._executor.stats(),
            "engine": {
                "position": self._engine.position,
                "watermark": self._engine.watermark(),
                "approx_size_bytes": self._engine.approx_size_bytes(),
                "cache": self._engine.cache_info(),
            },
            "compaction": compaction,
        }

    @property
    def position(self) -> int:
        """Items applied to shard state so far (excludes queued)."""
        return self._engine.position

    # -- shutdown -----------------------------------------------------------
    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the service: reject new work, optionally drain the
        queues, stop workers and ticker.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._queues.close()
        if drain:
            try:
                self._queues.wait_empty(timeout)
            except Exception:
                pass
        for worker in self._workers:
            worker.stop()
        self._ticker_stop.set()
        for worker in self._workers:
            worker.join(timeout=5.0)
        if self._ticker is not None:
            self._ticker.join(timeout=5.0)

    def __enter__(self) -> "SamplerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
