"""The concurrent query plane: epoch-validated folds, per-reader RNGs.

The PR 4 fast path left one concurrency caveat: a retained fold's
*state* is frozen between refolds, but its private RNG stream advances
on every query, so a shared fold cannot serve concurrent readers
lock-free.  :class:`QueryExecutor` resolves it with two modes:

* ``per-reader`` (default, lock-free reads) — the executor publishes an
  immutable :class:`PublishedFold` (fold + epoch snapshot + watermark +
  generation counter) and serves readers from a *leased view pool*:
  copy-on-publish query views of the fold
  (:func:`repro.lifecycle.spawn_query_view`), each held exclusively for
  the duration of one query and returned to the generation's free list
  afterwards.  A view's non-RNG state is frozen (queries only draw
  coins), so any reader can use any pooled view — a lease just rebinds
  the view's generators to the reader's own RNG stream, derived from
  ``(service seed, generation, reader index)``.  Leases are sticky: a
  reader that gets back the view it used last skips the rebind, so the
  steady single-reader query is pop + method call + push.  Deep copies
  of the fold therefore scale with *concurrent* readers (exactly one
  for any number of sequential readers), not with readers × generations
  as the previous per-thread views did — ``view_info()`` exposes the
  ``views_copied`` / ``views_leased`` counters that prove it.  Each
  reader's sequence is exactly target-distributed and reproducible
  given the seed and its reader index when readers don't contend for
  views; the cross-reader interleaving is not a single replayable
  stream (that is what ``locked`` is for).
* ``locked`` (bitwise replay) — queries serialize on one lock around
  the engine's own ``sample``/``sample_many``, quiescing the shard
  writers for the duration.  The answer sequence is bitwise identical
  to direct single-threaded engine calls — the replay/debug mode, and
  the serialized-serving determinism gate in CI.

**Publication protocol.**  ``refresh()`` quiesces all shard writers
(taking every shard lock in ascending order), asks the engine for its
merged view (``acquire_fold`` — the epoch-keyed cache does full-hit /
prefix-rebase / from-scratch exactly as for direct queries), and
publishes a new generation only when the epochs actually moved.
Readers pick up a new generation at their next query by a single
reference read — the swap is one Python assignment, torn folds cannot
be observed.  Between refreshes readers serve the previous generation:
bounded staleness is the price of lock-free reads, and the ticker's
``refresh_interval`` is the bound.
"""

from __future__ import annotations

import itertools
import threading
import time
import weakref

from repro.lifecycle.rng import (
    derive_reader_rng,
    rebind_query_rngs,
    spawn_query_view,
)
from repro.obs.catalog import CATALOG_HELP
from repro.obs.metrics import current_registry
from repro.obs.trace import span

__all__ = ["PublishedFold", "QueryExecutor"]

#: The two query-plane RNG modes.
RNG_MODES = ("per-reader", "locked")


class PublishedFold:
    """One immutable published generation of the merged view, plus the
    generation's free list of leasable query views (``pool`` holds
    ``(view, last_reader_index)`` pairs; views leave the list while
    leased, so every entry is exclusively owned by whoever pops it).
    Old generations retire their whole pool with the object."""

    __slots__ = (
        "generation", "fold", "epochs", "watermark", "published_at", "pool",
    )

    def __init__(self, generation, fold, epochs, watermark, published_at):
        self.generation = generation
        self.fold = fold
        self.epochs = epochs
        self.watermark = watermark
        self.published_at = published_at
        self.pool: list = []


class _ReaderSlot(threading.local):
    """Thread-local reader state: a stable reader index, the reader's
    RNG stream for the currently-published generation, and this
    reader's served-query tally (single-writer, so increments are
    race-free; the stats endpoint sums tallies across the registry)."""

    index: int | None = None
    generation: int = -1
    rng = None
    tally = None


class QueryExecutor:
    """Serve ``sample``/``sample_many`` off the engine's epoch-validated
    merged view, concurrently.  See the module docstring for the two
    RNG modes and the publication protocol."""

    def __init__(
        self,
        engine,
        shard_locks: list[threading.Lock],
        *,
        seed: int | None,
        rng_mode: str = "per-reader",
        metrics=None,
    ) -> None:
        if rng_mode not in RNG_MODES:
            raise ValueError(
                f"unknown rng_mode {rng_mode!r}; choose from {RNG_MODES}"
            )
        registry = current_registry() if metrics is None else metrics
        refresh_c = registry.counter(
            "repro_serving_fold_refresh_total",
            CATALOG_HELP["repro_serving_fold_refresh_total"],
            labels=("result",),
        )
        self._m_refresh = {
            r: refresh_c.labels(result=r)
            for r in ("published", "unchanged", "error")
        }
        self._engine = engine
        self._locks = shard_locks
        self._seed = seed
        self._mode = rng_mode
        self._published: PublishedFold | None = None
        self._refresh_lock = threading.Lock()
        self._query_lock = threading.Lock()
        self._reader_ids = itertools.count()
        self._slot = _ReaderSlot()
        self._refreshes = 0
        # A failed refresh (e.g. WatermarkSkewError) latches here and is
        # re-raised by every lock-free query until a refresh succeeds —
        # mirroring the direct engine, where each query re-checks skew.
        # Without it the ticker's failure would silently pin readers to
        # an ever-staler fold.
        self._refresh_error: Exception | None = None
        # Served-query counts live in per-reader single-writer tallies
        # (registered under a lock, summed by stats()) so the lock-free
        # query path never does a racy shared-counter increment.  A
        # tally retires into the aggregate when its thread dies, so a
        # thread-per-request caller doesn't grow the registry forever.
        # Leased view pool bookkeeping: the free lists live on each
        # PublishedFold; one executor-level lock guards them all plus
        # the cache_info-style counters (pool critical sections are a
        # few list ops — far cheaper than the deep copies they elide).
        self._pool_lock = threading.Lock()
        self._views_copied = 0
        self._views_leased = 0
        self._tally_lock = threading.Lock()
        self._tally_keys = itertools.count()
        self._tallies: dict[int, list[int]] = {}
        self._tally_watchers: dict[int, weakref.ref] = {}
        self._retired_served = 0
        self._readers_ever = 0

    @property
    def rng_mode(self) -> str:
        return self._mode

    @property
    def generation(self) -> int:
        """The currently-published fold generation (-1 before the first
        refresh)."""
        published = self._published
        return -1 if published is None else published.generation

    @property
    def refresh_error(self) -> Exception | None:
        """The latched refresh failure, if any (cleared by the next
        successful refresh) — the watermark-skew latch the gauges watch."""
        return self._refresh_error

    def fold_age_seconds(self) -> float:
        """Seconds since the current generation was published (NaN
        before the first publish)."""
        published = self._published
        if published is None:
            return float("nan")
        return time.monotonic() - published.published_at

    def epoch_lag(self) -> int:
        """Shard mutation-epoch bumps the published fold does not yet
        reflect (everything counts before the first publish)."""
        published = self._published
        total = sum(self._engine.mutation_epochs())
        seen = 0 if published is None else sum(published.epochs)
        return total - seen

    def _retire_tally(self, key: int) -> None:
        """Fold a dead thread's tally into the aggregate (weakref
        callback on the owning Thread object)."""
        with self._tally_lock:
            tally = self._tallies.pop(key, None)
            if tally is not None:
                self._retired_served += tally[0]
            self._tally_watchers.pop(key, None)

    def _tally(self) -> list[int]:
        """This thread's served-query tally, registered on first use and
        retired into the aggregate when the thread dies."""
        slot = self._slot
        if slot.tally is None:
            tally = [0]
            slot.tally = tally
            thread = threading.current_thread()
            # A fresh key, not id(thread): thread ids recycle, and a
            # recycled id could overwrite a dead-but-uncollected
            # reader's live entry.
            key = next(self._tally_keys)
            with self._tally_lock:
                self._tallies[key] = tally
                self._readers_ever += 1
                self._tally_watchers[key] = weakref.ref(
                    thread, lambda ref, key=key: self._retire_tally(key)
                )
        return slot.tally

    def stats(self) -> dict:
        published = self._published
        with self._tally_lock:
            served = self._retired_served + sum(
                t[0] for t in self._tallies.values()
            )
            readers = self._readers_ever
        with self._pool_lock:
            views_copied = self._views_copied
            views_leased = self._views_leased
        return {
            "rng_mode": self._mode,
            "served": served,
            "refreshes": self._refreshes,
            "generation": self.generation,
            "readers": readers,
            "views_copied": views_copied,
            "views_leased": views_leased,
            "fold_age_s": (
                None
                if published is None
                else time.monotonic() - published.published_at
            ),
            "fold_watermark": None if published is None else published.watermark,
        }

    # -- publication --------------------------------------------------------
    def _quiesce(self):
        """Acquire every shard lock in ascending order (the one global
        ordering, so refresh can never deadlock against the workers'
        single-lock acquisitions)."""
        for lock in self._locks:
            lock.acquire()

    def _release(self):
        for lock in self._locks:
            lock.release()

    def refresh(self, force: bool = False) -> bool:
        """Re-acquire the merged view and publish a new generation if
        the shard epochs moved (or ``force``); returns whether a new
        generation was published.

        Cheap when nothing changed: an epoch-list compare under no shard
        locks, then return.  Concurrent refreshes coalesce on an
        internal lock.
        """
        published = self._published
        if (
            published is not None
            and not force
            and list(published.epochs) == self._engine.mutation_epochs()
        ):
            self._m_refresh["unchanged"].inc()
            return False
        with self._refresh_lock:
            published = self._published
            if (
                published is not None
                and not force
                and list(published.epochs) == self._engine.mutation_epochs()
            ):
                self._m_refresh["unchanged"].inc()
                return False
            with span("serving.refresh") as sp:
                self._quiesce()
                try:
                    handle = self._engine.acquire_fold()
                except Exception as exc:
                    self._refresh_error = exc
                    self._m_refresh["error"].inc()
                    raise
                finally:
                    self._release()
                self._refresh_error = None
                generation = 0 if published is None else published.generation + 1
                self._published = PublishedFold(
                    generation, handle.fold, handle.epochs, handle.watermark,
                    time.monotonic(),
                )
                self._refreshes += 1
                self._m_refresh["published"].inc()
                sp.set(generation=generation)
            return True

    def published(self) -> PublishedFold:
        """The current generation, refreshing synchronously only when
        nothing was ever published.  Re-raises a latched refresh failure
        (watermark skew, fold errors) instead of serving the stale
        pre-failure fold — exactly the error a direct engine query would
        keep raising; it clears on the next successful refresh."""
        error = self._refresh_error
        if error is not None:
            raise error
        published = self._published
        if published is None:
            # Non-forced: concurrent first readers coalesce on the
            # refresh lock and share one initial generation.
            self.refresh()
            published = self._published
        return published

    # -- queries ------------------------------------------------------------
    def _pin_clock(self, published: PublishedFold, kwargs: dict) -> dict:
        """The fold-handle analogue of the engine's query-clock pinning:
        default ``now`` to the fold's watermark, reject a ``now`` behind
        it (a cached fold must fail a stale clock exactly as a fresh one
        would)."""
        mark = published.watermark
        if mark is None:
            return kwargs
        now = kwargs.get("now")
        if now is None:
            return {**kwargs, "now": mark}
        if float(now) < mark:
            raise ValueError(
                f"cannot sample at {now}, fold already reflects ingest up "
                f"to {mark}"
            )
        return kwargs

    def _reader_rng(self, published: PublishedFold):
        """This thread's RNG stream for the published generation,
        (re)derived lazily when the generation moved."""
        slot = self._slot
        if slot.index is None:
            slot.index = next(self._reader_ids)
        if slot.rng is None or slot.generation != published.generation:
            slot.rng = derive_reader_rng(
                self._seed, published.generation, slot.index
            )
            slot.generation = published.generation
        return slot.rng

    def lease_view(self, published: PublishedFold):
        """Check a query view of ``published`` out of the generation's
        pool for this thread's exclusive use (return it with
        :meth:`return_view`).

        Sticky fast path first: the view this reader returned last
        still carries its generators, so no rebind.  Otherwise any free
        view is rebound to the reader's stream; only when the free list
        is empty — a cold generation, or more *concurrent* readers than
        views — is the fold deep-copied (``views_copied``)."""
        rng = self._reader_rng(published)
        slot = self._slot
        view = None
        sticky = False
        with self._pool_lock:
            self._views_leased += 1
            pool = published.pool
            for i in range(len(pool) - 1, -1, -1):
                if pool[i][1] == slot.index:
                    view = pool[i][0]
                    del pool[i]
                    sticky = True
                    break
            else:
                if pool:
                    view = pool.pop()[0]
        if view is not None:
            if not sticky:
                rebind_query_rngs(view, rng)
            return view
        view = spawn_query_view(published.fold, rng)
        with self._pool_lock:
            self._views_copied += 1
        return view

    def return_view(self, published: PublishedFold, view) -> None:
        """Return a leased view to its generation's free list (a stale
        generation's pool is retained only by the PublishedFold itself,
        so returning to one is harmless)."""
        with self._pool_lock:
            published.pool.append((view, self._slot.index))

    def view_info(self) -> dict:
        """``cache_info()``-style counters for the leased view pool."""
        published = self._published
        with self._pool_lock:
            return {
                "views_copied": self._views_copied,
                "views_leased": self._views_leased,
                "pool_free": 0 if published is None else len(published.pool),
            }

    def sample(self, **kwargs):
        """One truly perfect sample off the published fold (lock-free in
        ``per-reader`` mode; engine-identical under the query lock in
        ``locked`` mode)."""
        self._tally()[0] += 1
        if self._mode == "locked":
            with self._query_lock:
                self._quiesce()
                try:
                    return self._engine.sample(**kwargs)
                finally:
                    self._release()
        published = self.published()
        kwargs = self._pin_clock(published, kwargs)
        view = self.lease_view(published)
        try:
            return view.sample(**kwargs)
        finally:
            self.return_view(published, view)

    def sample_many(self, k: int, **kwargs):
        """``k`` samples amortizing one view lease (and, for kinds with
        a vectorized ``sample_many``, one batched coin block)."""
        self._tally()[0] += 1
        if self._mode == "locked":
            with self._query_lock:
                self._quiesce()
                try:
                    return self._engine.sample_many(k, **kwargs)
                finally:
                    self._release()
        if k < 0:
            raise ValueError(f"need a non-negative draw count, got {k}")
        published = self.published()
        kwargs = self._pin_clock(published, kwargs)
        view = self.lease_view(published)
        try:
            many = getattr(view, "sample_many", None)
            if callable(many):
                return many(k, **kwargs)
            return [view.sample(**kwargs) for __ in range(k)]
        finally:
            self.return_view(published, view)
