"""repro.serving — the concurrent front door over the sharded engine.

PR 4 made the query fast path lock-friendly (epoch-keyed merged-view
cache, a staleness signal readers can poll without locks); this package
adds the concurrency itself, turning the engine from a library into a
service:

* :mod:`repro.serving.router` — admission control (per-tenant token
  buckets) and engine-identical batch → shard routing;
* :mod:`repro.serving.workers` — bounded per-shard queues with atomic
  backpressure, drained by shard-owning ingest worker threads;
* :mod:`repro.serving.transport` / :mod:`repro.serving.procplane` —
  the process-parallel ingest plane (``workers_mode="process"``):
  RPRS-coded frames over ``multiprocessing`` pipes to shard-owning
  worker *processes*, plus the fold collector that pulls their
  snapshot deltas back into the query plane's mirror engine;
* :mod:`repro.serving.executor` — the concurrent query plane:
  epoch-validated fold publication, lock-free per-reader RNG views
  (plus the locked bitwise-replay mode);
* :mod:`repro.serving.service` — :class:`SamplerService`, wiring
  ingest, queries, the compaction/refresh ticker, stats, and shutdown
  into one facade;
* :mod:`repro.serving.aio` — :class:`AsyncSamplerService`, the asyncio
  facade over the same core;
* :mod:`repro.serving.errors` — the load-shed error vocabulary;
* :mod:`repro.serving.cli` — the ``repro-serve`` console entry point.

Quick start::

    from repro.serving import SamplerService

    with SamplerService(
        {"kind": "g", "measure": {"name": "huber"}, "instances": 64},
        shards=8, seed=0, ingest_workers=4,
    ) as svc:
        svc.submit(items)              # routed, queued, worker-ingested
        res = svc.sample()             # lock-free off the published fold
        svc.flush(); svc.refresh()     # read-your-writes when needed
"""

from repro.serving.aio import AsyncSamplerService
from repro.serving.errors import (
    Backpressure,
    FlushTimeout,
    RateLimited,
    ServiceClosed,
    ServingError,
)
from repro.serving.executor import PublishedFold, QueryExecutor
from repro.serving.procplane import ProcessPlane, WorkerDied, WorkerLink
from repro.serving.router import ShardRouter, TenantRateLimiter, TokenBucket
from repro.serving.service import SamplerService
from repro.serving.transport import FrameConnection
from repro.serving.workers import IngestWorker, ShardQueues

__all__ = [
    "AsyncSamplerService",
    "SamplerService",
    "QueryExecutor",
    "PublishedFold",
    "ShardRouter",
    "TenantRateLimiter",
    "TokenBucket",
    "IngestWorker",
    "ShardQueues",
    "ProcessPlane",
    "WorkerLink",
    "WorkerDied",
    "FrameConnection",
    "ServingError",
    "Backpressure",
    "RateLimited",
    "ServiceClosed",
    "FlushTimeout",
]
