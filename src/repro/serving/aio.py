"""AsyncSamplerService — the asyncio facade over the threaded core.

One serving core, two front doors: :class:`SamplerService` for thread
-based callers, this wrapper for event-loop applications.  Every call
(queue backpressure, flush, queries, fold refresh, stats) is pushed
onto an executor via ``asyncio.to_thread``-style dispatch so the loop
never stalls on the service's internal locks or state walks.

The facade adds no second implementation — it owns a
:class:`SamplerService` and forwards, so thread and asyncio callers can
even share one service instance (pass an existing service in).  That is
the design the tests exercise: the asyncio smoke job drives the same
core the thread-pool job does.

Usage::

    async with AsyncSamplerService({"kind": "g", ...}, shards=8) as svc:
        await svc.submit(batch)
        res = await svc.sample()
"""

from __future__ import annotations

import asyncio
import functools

from repro.serving.service import SamplerService

__all__ = ["AsyncSamplerService"]


class AsyncSamplerService:
    """Asyncio front door over a :class:`SamplerService` core.

    Accepts either a sampler config (a service is built with the given
    keyword arguments, same surface as :class:`SamplerService`) or an
    already-running service to wrap.  ``concurrency`` bounds how many
    blocking calls may be in flight on the default executor at once —
    a semaphore, so a flood of async clients degrades to queueing
    rather than unbounded thread fan-out.
    """

    def __init__(self, config, *, concurrency: int = 32, **kwargs) -> None:
        if isinstance(config, SamplerService):
            if kwargs:
                raise ValueError(
                    "keyword arguments are for building a new service; "
                    "got an existing SamplerService plus "
                    f"{sorted(kwargs)}"
                )
            self._service = config
        else:
            self._service = SamplerService(config, **kwargs)
        if concurrency < 1:
            raise ValueError(f"concurrency must be ≥ 1, got {concurrency}")
        self._gate = asyncio.Semaphore(concurrency)

    @property
    def service(self) -> SamplerService:
        """The threaded core (shared-use is fine; it is thread-safe)."""
        return self._service

    async def _dispatch(self, fn, /, *args, **kwargs):
        loop = asyncio.get_running_loop()
        async with self._gate:
            return await loop.run_in_executor(
                None, functools.partial(fn, *args, **kwargs)
            )

    async def submit(self, items, timestamps=None, **kwargs) -> int:
        """Async :meth:`SamplerService.submit` — backpressure blocking
        happens off-loop; admission errors propagate unchanged."""
        return await self._dispatch(
            self._service.submit, items, timestamps, **kwargs
        )

    async def sample(self, **kwargs):
        return await self._dispatch(self._service.sample, **kwargs)

    async def sample_many(self, k: int, **kwargs):
        return await self._dispatch(self._service.sample_many, k, **kwargs)

    async def flush(self, timeout: float | None = None) -> None:
        await self._dispatch(self._service.flush, timeout)

    async def refresh(self) -> bool:
        return await self._dispatch(self._service.refresh)

    async def stats(self) -> dict:
        """Off-loop like every other call: the stats payload includes
        ``engine.approx_size_bytes()``, an O(state) walk across all
        shards — too heavy to run on the event loop for a big engine."""
        return await self._dispatch(self._service.stats)

    async def close(self, drain: bool = True, timeout: float | None = None) -> None:
        await self._dispatch(self._service.close, drain, timeout)

    async def __aenter__(self) -> "AsyncSamplerService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
