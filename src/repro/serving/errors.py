"""The serving layer's error vocabulary.

Every failure the front door can hand a client is a
:class:`ServingError`, so callers can catch one base class at the
service boundary.  The admission-control errors (:class:`Backpressure`,
:class:`RateLimited`) are *load-shed signals*: the submitted batch was
rejected atomically — no shard queue received any part of it — and the
client may retry after backing off.
"""

from __future__ import annotations

__all__ = [
    "ServingError",
    "Backpressure",
    "RateLimited",
    "ServiceClosed",
    "FlushTimeout",
]


class ServingError(RuntimeError):
    """Base class for every error raised at the service boundary."""


class Backpressure(ServingError):
    """A shard queue is at its high-water mark and the service is
    configured to shed rather than block.

    The whole submit was rejected atomically (capacity is reserved on
    every target shard before anything is enqueued), so retrying the
    identical batch after a backoff is safe and lossless.
    """

    def __init__(self, message: str, *, shard: int | None = None) -> None:
        super().__init__(message)
        self.shard = shard


class RateLimited(ServingError):
    """The tenant's token bucket cannot cover the batch right now.

    Carries ``retry_after`` — the seconds until the bucket will have
    refilled enough to admit a batch of this size.
    """

    def __init__(self, message: str, *, tenant: str, retry_after: float) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.retry_after = retry_after


class ServiceClosed(ServingError):
    """The service has been closed; no further submits or queries."""


class FlushTimeout(ServingError):
    """``flush(timeout=...)`` expired with items still queued or
    in-flight (carries the residue count for diagnostics)."""

    def __init__(self, message: str, *, pending: int) -> None:
        super().__init__(message)
        self.pending = pending
