"""Shard-parallel ingest: bounded per-shard queues + worker threads.

**Queues.**  :class:`ShardQueues` holds one FIFO lane per shard with a
shared capacity gate.  A submit *reserves* capacity on every target
shard before enqueuing anything, so backpressure is atomic: either the
whole batch is accepted, or nothing was enqueued and the caller gets a
:class:`~repro.serving.errors.Backpressure` (shed policy) or blocks
until the high-water mark clears (block policy).  Occupancy counts both
queued and in-flight items, so a slow shard throttles its producers
even while its worker is mid-batch.

**Workers.**  Each :class:`IngestWorker` owns a disjoint set of shards
(round-robin by worker index) and drains them in shard order, coalescing
queued entries into micro-batches before handing them to
``engine.ingest_shard`` under that shard's write lock.  Per-shard FIFO
plus single ownership gives the determinism the tests pin down: the
final shard state is bitwise identical to a sequential
``engine.ingest`` of the same submits, for any worker count — batching
boundaries don't matter because ``update_batch`` is bitwise equal to
the scalar loop, and cross-shard interleaving doesn't matter because
shards share no state.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from repro.obs.catalog import CATALOG_HELP
from repro.obs.metrics import SIZE_BUCKETS, current_registry
from repro.obs.trace import span
from repro.serving.errors import Backpressure, FlushTimeout, ServiceClosed
from repro.serving.router import RoutedBatch

__all__ = ["ShardQueues", "IngestWorker"]


class ShardQueues:
    """Bounded per-shard FIFO lanes behind one condition gate."""

    def __init__(self, shards: int, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be ≥ 1, got {capacity}")
        self._lanes: list[deque[RoutedBatch]] = [deque() for _ in range(shards)]
        self._occupancy = [0] * shards  # queued + in-flight items
        self._capacity = capacity
        self._gate = threading.Condition()
        self._closed = False
        self.submitted_items = 0
        self.applied_items = 0
        self.failed_items = 0
        self.shed_count = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def shards(self) -> int:
        return len(self._lanes)

    def depths(self) -> list[int]:
        """Per-shard occupancy (queued + in-flight items)."""
        with self._gate:
            return list(self._occupancy)

    def pending(self) -> int:
        """Total items accepted but not yet applied."""
        with self._gate:
            return sum(self._occupancy)

    def put(
        self,
        parts: list[RoutedBatch],
        *,
        block: bool,
        timeout: float | None = None,
    ) -> int:
        """Enqueue one routed submit atomically; returns items accepted.

        Capacity is checked on *every* target shard before anything is
        enqueued.  With ``block=False`` a full lane sheds the whole
        submit via :class:`Backpressure`; with ``block=True`` the caller
        waits (up to ``timeout``) for every lane to clear its high-water
        mark, then enqueues — still atomically.
        """
        sizes = [(part.shard, len(part)) for part in parts]
        total = sum(n for __, n in sizes)
        if total == 0:
            return 0
        # A part larger than the whole lane can never be admitted — the
        # block policy would park the caller forever and shed would tell
        # it to retry a hopeless batch.  Fail loudly instead.
        oversized = [(s, n) for s, n in sizes if n > self._capacity]
        if oversized:
            shard, n = oversized[0]
            raise ValueError(
                f"routed subchunk of {n} items for shard {shard} exceeds "
                f"the per-shard queue capacity ({self._capacity}); split "
                "the submit into smaller batches or raise queue_capacity"
            )
        with self._gate:
            deadline = None
            while True:
                if self._closed:
                    raise ServiceClosed("service is closed; submit rejected")
                full = [
                    (shard, n)
                    for shard, n in sizes
                    if self._occupancy[shard] + n > self._capacity
                ]
                if not full:
                    break
                shard, n = full[0]
                if not block:
                    self.shed_count += 1
                    raise Backpressure(
                        f"shard {shard} queue at high-water mark "
                        f"({self._occupancy[shard]}/{self._capacity} items, "
                        f"+{n} requested); batch shed atomically — back off "
                        "and retry",
                        shard=shard,
                    )
                if timeout is not None:
                    if deadline is None:
                        deadline = time.monotonic() + timeout
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._gate.wait(remaining):
                        self.shed_count += 1
                        raise Backpressure(
                            f"shard {shard} queue still at high-water mark "
                            f"after {timeout:g}s; batch shed atomically",
                            shard=shard,
                        )
                else:
                    self._gate.wait()
            for part in parts:
                self._lanes[part.shard].append(part)
                self._occupancy[part.shard] += len(part)
            self.submitted_items += total
            self._gate.notify_all()
        return total

    def take(self, shards: list[int], cursor: int, max_items: int):
        """Dequeue a coalesced micro-batch from the first non-empty
        owned lane at/after ``cursor`` (round-robin).

        Returns ``(lane_index_in_shards, batches)`` or ``None`` when
        every owned lane is empty.  The taken items stay counted in
        occupancy until :meth:`mark_applied` — callers apply the batch,
        then mark it.
        """
        with self._gate:
            for step in range(len(shards)):
                lane_idx = (cursor + step) % len(shards)
                lane = self._lanes[shards[lane_idx]]
                if not lane:
                    continue
                batches = [lane.popleft()]
                taken = len(batches[0])
                timed = batches[0].timestamps is not None
                # Coalesce only like-shaped entries: a timed and an
                # untimed batch cannot concatenate, and mixing them is a
                # caller error the *sampler* should report per-batch.
                while (
                    lane
                    and taken < max_items
                    and (lane[0].timestamps is not None) == timed
                ):
                    taken += len(lane[0])
                    batches.append(lane.popleft())
                return lane_idx, batches
            return None

    def mark_applied(self, shard: int, n: int, ok: bool = True) -> None:
        """Release ``n`` items of occupancy after their batch finished.
        Occupancy drains either way (a wedged queue is worse than a lost
        batch), but only successfully-landed items count as applied —
        ``applied_items`` must reconcile with the engine's position."""
        with self._gate:
            self._occupancy[shard] -= n
            if ok:
                self.applied_items += n
            else:
                self.failed_items += n
            self._gate.notify_all()

    def wait_empty(self, timeout: float | None = None) -> None:
        """Block until all lanes are drained *and* applied; raises
        :class:`FlushTimeout` with the residue count otherwise."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._gate:
            while True:
                residue = sum(self._occupancy)
                if residue == 0:
                    return
                if deadline is None:
                    self._gate.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._gate.wait(remaining):
                        residue = sum(self._occupancy)
                        if residue == 0:
                            return
                        raise FlushTimeout(
                            f"flush timed out with {residue} items still "
                            "queued or in flight",
                            pending=residue,
                        )

    def close(self) -> None:
        """Reject future puts; queued work remains drainable."""
        with self._gate:
            self._closed = True
            self._gate.notify_all()

    def wait_for_work(self, shards: list[int], stop: threading.Event) -> bool:
        """Park a worker until one of its lanes is non-empty or ``stop``
        is set; returns True when there may be work."""
        with self._gate:
            while not stop.is_set():
                if any(self._lanes[s] for s in shards):
                    return True
                self._gate.wait(timeout=0.05)
            return any(self._lanes[s] for s in shards)


class IngestWorker(threading.Thread):
    """One ingest thread draining its owned shards' lanes.

    ``shard_locks[s]`` serializes shard ``s``'s writes against the
    fold/compaction passes (never against other workers — ownership is
    disjoint).  On ``stop``, the worker drains its lanes to empty before
    exiting, so ``close(drain=True)`` loses nothing.
    """

    def __init__(
        self,
        index: int,
        engine,
        queues: ShardQueues,
        shard_locks: list[threading.Lock],
        owned_shards: list[int],
        *,
        max_batch: int,
        on_error=None,
        metrics=None,
    ) -> None:
        super().__init__(name=f"repro-ingest-{index}", daemon=True)
        self.index = index
        self._engine = engine
        self._queues = queues
        self._locks = shard_locks
        self._owned = owned_shards
        self._max_batch = max_batch
        self._halt = threading.Event()
        self._cursor = 0
        self._on_error = on_error
        self.applied_batches = 0
        # Children pre-resolved per owned shard (ownership is static),
        # so the apply loop never does a label lookup.
        registry = current_registry() if metrics is None else metrics
        self._metrics_on = registry.enabled
        applied = registry.counter(
            "repro_serving_applied_items_total",
            CATALOG_HELP["repro_serving_applied_items_total"],
            labels=("shard",),
        )
        failed = registry.counter(
            "repro_serving_failed_items_total",
            CATALOG_HELP["repro_serving_failed_items_total"],
            labels=("shard",),
        )
        apply_s = registry.histogram(
            "repro_serving_ingest_apply_seconds",
            CATALOG_HELP["repro_serving_ingest_apply_seconds"],
            labels=("shard",),
        )
        self._m_applied = {s: applied.labels(shard=str(s)) for s in owned_shards}
        self._m_failed = {s: failed.labels(shard=str(s)) for s in owned_shards}
        self._m_apply_s = {s: apply_s.labels(shard=str(s)) for s in owned_shards}
        self._m_coalesce = registry.histogram(
            "repro_serving_batch_coalesce_items",
            CATALOG_HELP["repro_serving_batch_coalesce_items"],
            buckets=SIZE_BUCKETS,
        )

    def stop(self) -> None:
        self._halt.set()

    def _apply(self, batches: list[RoutedBatch]) -> None:
        shard = batches[0].shard
        n = sum(len(batch) for batch in batches)
        ok = False
        t0 = time.perf_counter() if self._metrics_on else 0.0
        try:
            # Everything from coalescing onward sits inside the guard:
            # a failure anywhere here must still release occupancy and
            # reach on_error, or flush()/close(drain=True) would wedge
            # on items that will never land.
            with span("serving.apply", shard=shard, items=n, batches=len(batches)):
                items = (
                    batches[0].items
                    if len(batches) == 1
                    else np.concatenate([b.items for b in batches])
                )
                if batches[0].timestamps is None:
                    timestamps = None
                else:
                    timestamps = (
                        batches[0].timestamps
                        if len(batches) == 1
                        else np.concatenate([b.timestamps for b in batches])
                    )
                with self._locks[shard]:
                    self._engine.ingest_shard(shard, items, timestamps=timestamps)
            self.applied_batches += 1
            ok = True
        except Exception as exc:  # surface, don't die silently
            if self._on_error is not None:
                self._on_error(exc, shard)
            else:
                raise
        finally:
            self._queues.mark_applied(shard, n, ok=ok)
            if ok:
                self._m_applied[shard].add(n)
                if self._metrics_on:
                    self._m_apply_s[shard].observe(time.perf_counter() - t0)
                    self._m_coalesce.observe(n)
            else:
                self._m_failed[shard].add(n)

    def run(self) -> None:
        while True:
            got = self._queues.take(self._owned, self._cursor, self._max_batch)
            if got is None:
                if self._halt.is_set():
                    return
                self._queues.wait_for_work(self._owned, self._halt)
                continue
            lane_idx, batches = got
            # Resume the scan *after* the drained lane so one hot shard
            # cannot starve its siblings on this worker.
            self._cursor = lane_idx + 1
            self._apply(batches)
