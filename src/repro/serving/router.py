"""Admission + routing: the first two stages of the serving front door.

A submitted batch passes through, in order:

1. **admission control** — per-tenant token buckets
   (:class:`TenantRateLimiter`): a tenant whose bucket cannot cover the
   batch is shed with :class:`~repro.serving.errors.RateLimited` before
   any routing work happens;
2. **routing** — :class:`ShardRouter` hash-partitions the batch into
   per-shard subchunks with *exactly* the engine's own split (same
   partitioner, same stable within-shard order), which is what makes
   worker-ingested state bitwise identical to a sequential
   ``engine.ingest`` of the same batches.

The bounded per-shard queues the router feeds live in
:mod:`repro.serving.workers`.
"""

from __future__ import annotations

import math
import threading
import time

import numpy as np

from repro.engine.partition import UniversePartitioner
from repro.obs.catalog import CATALOG_HELP
from repro.obs.metrics import current_registry
from repro.serving.errors import RateLimited

__all__ = ["RoutedBatch", "ShardRouter", "TokenBucket", "TenantRateLimiter"]


class RoutedBatch:
    """One shard's slice of a submitted batch (timestamps ``None`` for
    untimed sampler kinds)."""

    __slots__ = ("shard", "items", "timestamps")

    def __init__(self, shard: int, items: np.ndarray, timestamps) -> None:
        self.shard = shard
        self.items = items
        self.timestamps = timestamps

    def __len__(self) -> int:
        return int(self.items.size)

    def __repr__(self) -> str:
        timed = "timed" if self.timestamps is not None else "untimed"
        return f"RoutedBatch(shard={self.shard}, items={len(self)}, {timed})"


class ShardRouter:
    """Vectorized batch → per-shard subchunk routing.

    Wraps the engine's own :class:`UniversePartitioner` so routed
    subchunks match ``ShardedSamplerEngine.ingest``'s internal split
    bitwise: the same items land on the same shards in the same
    within-shard order, whether a batch enters through the engine or
    through the service.
    """

    def __init__(self, partitioner: UniversePartitioner) -> None:
        self._partitioner = partitioner

    @property
    def shards(self) -> int:
        return self._partitioner.shards

    def normalize(self, items, timestamps=None):
        """Coerce one submit into ``(items, timestamps)`` arrays without
        doing any routing work — accepts a plain item array, a
        ``TimestampedStream`` (timestamps picked up automatically), or
        an explicit ``timestamps`` array.  This is the cheap first step
        the service runs *before* admission control, so a rate-limited
        batch never pays for hash partitioning."""
        if timestamps is None:
            timestamps = getattr(items, "timestamps", None)
        inner = getattr(items, "items", None)
        arr = np.asarray(inner if inner is not None else items, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError("route expects a 1-d sequence of items")
        if timestamps is None:
            return arr, None
        ts = np.asarray(timestamps, dtype=np.float64)
        if ts.shape != arr.shape:
            raise ValueError("items and timestamps must be matching 1-d arrays")
        return arr, ts

    def route(self, items, timestamps=None) -> list[RoutedBatch]:
        """Split one batch into non-empty per-shard subchunks, shard
        order ascending (input forms as in :meth:`normalize`)."""
        return self.route_normalized(*self.normalize(items, timestamps))

    def route_normalized(self, arr, ts) -> list[RoutedBatch]:
        """:meth:`route` for arrays :meth:`normalize` already produced —
        the service's hot path, skipping the redundant re-coercion."""
        if ts is None:
            return [
                RoutedBatch(shard, sub, None)
                for shard, sub in enumerate(self._partitioner.split(arr))
                if sub.size
            ]
        assignment = self._partitioner.assign(arr)
        out = []
        for shard in range(self._partitioner.shards):
            mask = assignment == shard
            if mask.any():
                out.append(RoutedBatch(shard, arr[mask], ts[mask]))
        return out


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` cap.

    One token admits one item.  ``try_consume`` is all-or-nothing (a
    batch is never partially admitted) and returns the seconds until
    the bucket could cover the batch when it cannot now.
    """

    __slots__ = ("rate", "burst", "_tokens", "_stamp")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError(f"rate and burst must be positive, got {rate}, {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp: float | None = None

    def try_consume(self, n: int, now: float) -> float:
        """Consume ``n`` tokens if available; returns 0.0 on success,
        else the seconds until ``n`` tokens will have accrued —
        ``math.inf`` when ``n`` exceeds the burst cap (tokens never
        accrue past ``burst``, so such a batch is permanently
        inadmissible and must be split instead of retried)."""
        if n > self.burst:
            return math.inf
        if self._stamp is not None and now > self._stamp:
            self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now
        if n <= self._tokens:
            self._tokens -= n
            return 0.0
        return (n - self._tokens) / self.rate

    def refund(self, n: int) -> None:
        """Return ``n`` tokens (capped at ``burst``) — for callers whose
        admitted batch was then rejected downstream before any of it
        took effect."""
        self._tokens = min(self.burst, self._tokens + n)


class TenantRateLimiter:
    """Per-tenant admission control over a table of token buckets.

    ``limits`` maps tenant id → ``(rate, burst)``; ``default`` applies
    to tenants not in the table (``None`` = unlimited).  Thread-safe;
    the serving layer calls :meth:`admit` on every submit.

    Default-rate buckets are created lazily per tenant id and the table
    is bounded by ``max_tenants``: past the cap, the longest-idle
    *full* bucket is evicted first (a bucket refilled to its burst cap
    carries no admission state, so dropping it is semantically
    lossless), falling back to the longest-idle bucket outright — so
    high-cardinality or adversarial tenant ids cannot grow memory
    without bound.  Explicitly-configured ``limits`` buckets are never
    evicted.
    """

    def __init__(
        self,
        limits: dict[str, tuple[float, float]] | None = None,
        default: tuple[float, float] | None = None,
        clock=time.monotonic,
        max_tenants: int = 4096,
        metrics=None,
    ) -> None:
        if max_tenants < 1:
            raise ValueError(f"max_tenants must be ≥ 1, got {max_tenants}")
        self._lock = threading.Lock()
        self._clock = clock
        self._default = default
        self._pinned = frozenset((limits or {}).keys())
        self._max_tenants = max_tenants
        self._buckets = {
            tenant: TokenBucket(rate, burst)
            for tenant, (rate, burst) in (limits or {}).items()
        }
        self._shed = 0
        registry = current_registry() if metrics is None else metrics
        self._m_rate_limited = registry.counter(
            "repro_serving_rate_limited_total",
            CATALOG_HELP["repro_serving_rate_limited_total"],
            labels=("tenant",),
        )

    @property
    def shed_count(self) -> int:
        """Batches rejected so far (for the stats endpoint)."""
        return self._shed

    def bucket_count(self) -> int:
        """Token buckets currently tracked (for the tenant-table gauge)."""
        with self._lock:
            return len(self._buckets)

    def admit(self, tenant: str | None, n: int) -> None:
        """Admit ``n`` items for ``tenant`` or raise
        :class:`RateLimited`.  Tenants without a bucket (and no default
        limit) are always admitted."""
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                if self._default is None:
                    return
                if len(self._buckets) - len(self._pinned) >= self._max_tenants:
                    self._evict_one()
                bucket = TokenBucket(*self._default)
                self._buckets[tenant] = bucket
            wait = bucket.try_consume(n, self._clock())
            if wait > 0.0:
                self._shed += 1
                self._m_rate_limited.labels(
                    tenant=tenant if tenant is not None else "_default"
                ).inc()
                if math.isinf(wait):
                    raise RateLimited(
                        f"batch of {n} items exceeds tenant {tenant!r}'s "
                        f"burst cap ({bucket.burst:g}) and can never be "
                        "admitted whole — split it into smaller submits",
                        tenant=str(tenant),
                        retry_after=wait,
                    )
                raise RateLimited(
                    f"tenant {tenant!r} over its rate cap "
                    f"({bucket.rate:g} items/s, burst {bucket.burst:g}); "
                    f"batch of {n} admissible in ~{wait:.3f}s",
                    tenant=str(tenant),
                    retry_after=wait,
                )

    def _evict_one(self) -> None:
        """Drop one lazily-created bucket (caller holds the lock):
        longest-idle among the refilled-to-burst ones, else the
        longest-idle outright."""
        now = self._clock()
        best = None
        best_rank = None
        for tenant, bucket in self._buckets.items():
            if tenant in self._pinned:
                continue
            stamp = bucket._stamp if bucket._stamp is not None else -math.inf
            tokens = min(
                bucket.burst,
                bucket._tokens
                + (max(0.0, now - stamp) * bucket.rate if stamp > -math.inf else 0.0),
            )
            # Rank: full buckets (lossless to drop) before partial ones,
            # then by idleness.
            rank = (tokens < bucket.burst, stamp)
            if best_rank is None or rank < best_rank:
                best, best_rank = tenant, rank
        if best is not None:
            del self._buckets[best]

    def refund(self, tenant: str | None, n: int) -> None:
        """Return an admitted batch's tokens after a downstream atomic
        rejection (queue backpressure) — keeps admission + queueing
        jointly atomic: a shed submit costs the tenant nothing."""
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is not None:
                bucket.refund(n)
