"""The process-parallel ingest plane: shard-owning worker *processes*.

Thread-mode ingest (:class:`~repro.serving.workers.IngestWorker`) keeps
every shard's sampler in the front-door process, so on CPython all K
workers contend on one GIL and BENCH_E23 shows ingest throughput
*dropping* as shards grow.  This module moves the authoritative shard
samplers into worker processes — K shards finally mean K cores — while
keeping the front door's contracts intact:

- **Same admission.**  The existing :class:`ShardQueues` still gates
  submits with atomic all-or-nothing backpressure; occupancy counts
  queued + in-flight items and only drains when a worker *acks* the
  frame, so a slow shard process throttles its producers exactly like a
  slow shard thread did.
- **Same determinism.**  Each worker process boots a bitwise replica of
  its owned shards — :meth:`ShardedSamplerEngine.shard_config` rebuilds
  the sampler with the shard's exact registry config (per-shard seed
  included) and :func:`repro.engine.state.load_state` restores its
  snapshot, RNG state and all — and applies batches through the same
  :func:`repro.engine.batch.ingest` helper ``ingest_shard`` uses.
  Per-shard FIFO order is preserved end to end (one pipe per worker,
  frames processed strictly in order), so the final shard state is
  bitwise identical to a sequential ``engine.ingest`` of the same
  submits.
- **Queries stay local.**  The front door keeps a *mirror* engine for
  the query plane.  A fold collector periodically ``pull``s per-shard
  snapshot deltas (keyed by worker-side mutation epochs, so clean
  shards ship nothing) and lands them with
  :meth:`ShardedSamplerEngine.restore_shard` under the shard's write
  lock — the publisher then refolds exactly as in thread mode.

Transport is :class:`~repro.serving.transport.FrameConnection` over
``multiprocessing`` pipes: RPRS-coded snapshot trees, never pickles.

**Crash handling.**  A dead worker with unacked in-flight frames means
accepted batches are lost: the link fails their occupancy, reports the
error (the service latches :class:`ServiceClosed`), and the ``workers``
health probe goes red.  A dead worker that was *idle* — nothing in
flight and every acked epoch already pulled into the mirror — is
restarted losslessly from the mirror's snapshots
(``repro_serving_worker_restarts_total``).

**Telemetry.**  By default each worker runs a live
:class:`~repro.obs.metrics.MetricsRegistry` (so sampler construction
binds the ingest-kernel counters worker-side) behind a metered pipe,
plus a ring-buffered :class:`~repro.obs.trace.Tracer` recording
``worker.apply`` / ``worker.pull`` / ``worker.compact`` spans linked to
parent spans via ``trace`` refs stamped into the frames.  Cumulative
metric snapshots (:mod:`repro.obs.telemetry`) and span batches ship
back piggybacked on ``pull`` replies and on demand via ``telemetry``
frames; :class:`~repro.obs.telemetry.WorkerTelemetry` merges them into
the parent's mirror registry under a ``worker`` label with
per-generation base accounting (lossless respawns never double-count
or regress a counter), and each control round trip refines a
min-RTT worker-clock offset used to align spans in Chrome exports.

**Test hook.**  When the environment variable
``REPRO_SERVING_FAULT_ITEM`` is set, a worker hard-exits before
applying any ingest frame containing that item value — the only way to
deterministically produce a mid-batch crash in an out-of-process
worker.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from collections import deque

import numpy as np

from repro.obs.catalog import CATALOG_HELP
from repro.obs.metrics import SIZE_BUCKETS, current_registry
from repro.obs.telemetry import WorkerTelemetry
from repro.obs.trace import span
from repro.serving.transport import FrameConnection

__all__ = ["ProcessPlane", "WorkerLink", "WorkerDied", "FAULT_ITEM_ENV"]

FAULT_ITEM_ENV = "REPRO_SERVING_FAULT_ITEM"

#: Ingest frames a link keeps in flight before the pump waits for acks.
#: Deep enough to hide pipe latency, shallow enough that a crash can
#: only strand a few micro-batches (each individually accounted).
MAX_INFLIGHT_FRAMES = 4

#: How long a control request (pull/compact/ping) may wait for its
#: reply before the worker is declared unresponsive.
CONTROL_TIMEOUT = 30.0

#: No ack for this long while frames are in flight → the health probe
#: reports the worker as stalled.
STALL_AFTER_SECONDS = 10.0


class WorkerDied(RuntimeError):
    """A shard worker process exited while accepted batches were in
    flight (or mid-control-request) — those batches are lost."""


def _epochs_tree(epochs: dict) -> dict:
    return {str(s): int(e) for s, e in epochs.items()}


#: Worker-side span ring-buffer capacity: deep enough to hold a full
#: shipping interval's worth of apply spans, bounded so a parent that
#: stops pulling cannot grow worker memory.
WORKER_TRACE_CAPACITY = 4096


def _worker_main(conn_raw) -> None:
    """Entry point of one shard-owning worker process.

    Single-threaded by design: frames are processed strictly in receive
    order, which is what makes a ``pull`` reply reflect every ingest
    frame sent before it, and per-shard FIFO trivially true.

    With ``telemetry`` on in the boot frame the worker runs a live
    registry (sampler construction binds the ingest-kernel counters into
    it) behind a metered pipe, times its own applies into
    ``repro_serving_ingest_apply_seconds``, and records
    ``worker.apply`` / ``worker.pull`` / ``worker.compact`` spans into a
    ring-buffered tracer; cumulative snapshots plus the span batch ship
    back piggybacked on ``pull`` replies and via ``telemetry`` frames.
    Telemetry is observational only — it reads no sampler state and
    draws no randomness, so the bitwise serialized-replay contract is
    untouched.  With telemetry off this is exactly the old dark mode:
    disabled registry, unmetered pipe.
    """
    from repro.engine.batch import ingest
    from repro.engine.registry import build_sampler
    from repro.engine.state import load_state, save_state
    from repro.obs.metrics import MetricsRegistry, use_registry
    from repro.obs.telemetry import snapshot_registry
    from repro.obs.trace import Tracer

    bootstrap = FrameConnection(conn_raw, metered=False)
    try:
        boot = bootstrap.recv()
    except (EOFError, OSError):
        return
    telemetry_on = bool(boot.get("telemetry", 0))
    registry = MetricsRegistry(enabled=telemetry_on)
    tracer = Tracer(capacity=WORKER_TRACE_CAPACITY, enabled=telemetry_on)
    conn = FrameConnection(conn_raw, metered=telemetry_on, metrics=registry)

    def _telemetry_payload() -> dict:
        events = tracer.events()
        tracer.clear()
        spans = "".join(event.to_json() + "\n" for event in events)
        return {
            "metrics": snapshot_registry(registry),
            "spans": spans.encode("utf-8"),
            "span_count": len(events),
            "now_ns": time.perf_counter_ns(),
            "pid": os.getpid(),
        }

    with use_registry(registry):
        samplers: dict[int, object] = {}
        epochs: dict[int, int] = {}
        try:
            for key, spec in boot["shards"].items():
                shard = int(key)
                sampler = build_sampler(spec["config"])
                load_state(sampler, spec["state"])
                samplers[shard] = sampler
                epochs[shard] = 0
        except Exception as exc:
            try:
                conn.send({"type": "boot_error", "error": repr(exc)})
            except (OSError, ValueError):
                pass
            return
        apply_s = registry.histogram(
            "repro_serving_ingest_apply_seconds",
            CATALOG_HELP["repro_serving_ingest_apply_seconds"],
            labels=("shard",),
        )
        m_apply = {s: apply_s.labels(shard=str(s)) for s in samplers}
        fault_item = boot.get("fault_item")
        conn.send({"type": "ready", "epochs": _epochs_tree(epochs)})
        while True:
            try:
                frame = conn.recv()
            except (EOFError, OSError):
                return
            kind = frame["type"]
            parent_ref = frame.get("trace")
            link_attrs = {"parent": parent_ref} if parent_ref else {}
            if kind == "ingest":
                shard = int(frame["shard"])
                items = np.asarray(frame["items"], dtype=np.int64)
                ts = frame.get("ts")
                if fault_item is not None and items.size and np.any(
                    items == int(fault_item)
                ):
                    os._exit(13)
                t0 = time.perf_counter()
                ack = {"type": "ack", "shard": shard, "n": int(items.size)}
                try:
                    with tracer.span(
                        "worker.apply", shard=shard, items=int(items.size),
                        **link_attrs,
                    ):
                        ingest(samplers[shard], items, timestamps=ts)
                    epochs[shard] += 1
                    ack.update(ok=1, epoch=epochs[shard])
                    m_apply[shard].observe(time.perf_counter() - t0)
                except Exception as exc:
                    ack.update(ok=0, epoch=epochs[shard], error=repr(exc))
                ack["seconds"] = time.perf_counter() - t0
                conn.send(ack)
            elif kind == "pull":
                seen = frame.get("epochs") or {}
                out = {}
                with tracer.span("worker.pull", **link_attrs) as sp:
                    for shard, sampler in samplers.items():
                        if epochs[shard] > int(seen.get(str(shard), 0)):
                            out[str(shard)] = {
                                "epoch": epochs[shard],
                                "state": save_state(sampler),
                            }
                    sp.set(shards=len(out))
                reply = {"type": "state", "shards": out}
                if telemetry_on:
                    reply["telemetry"] = _telemetry_payload()
                conn.send(reply)
            elif kind == "compact":
                now = frame.get("now")
                freed_total = 0
                with tracer.span("worker.compact", **link_attrs) as sp:
                    for shard, sampler in samplers.items():
                        freed = sampler.compact(now)
                        if freed:
                            epochs[shard] += 1
                            freed_total += freed
                    sp.set(freed=int(freed_total))
                conn.send(
                    {
                        "type": "compacted",
                        "freed": int(freed_total),
                        "epochs": _epochs_tree(epochs),
                    }
                )
            elif kind == "telemetry":
                reply = {"type": "telemetry"}
                if telemetry_on:
                    reply.update(_telemetry_payload())
                else:
                    reply["now_ns"] = time.perf_counter_ns()
                    reply["pid"] = os.getpid()
                conn.send(reply)
            elif kind == "ping":
                conn.send(
                    {
                        "type": "pong",
                        "epochs": _epochs_tree(epochs),
                        "now_ns": time.perf_counter_ns(),
                    }
                )
            elif kind == "stop":
                try:
                    conn.send({"type": "bye"})
                finally:
                    return
            else:  # unknown frame: protocol bug — die loudly, not silently
                conn.send(
                    {"type": "ack", "shard": -1, "n": 0, "ok": 0,
                     "epoch": -1, "error": f"unknown frame type {kind!r}"}
                )


class WorkerLink:
    """Parent-side handle for one worker process: its pipe, its pump
    thread (queues → ingest frames), and its receiver thread (acks and
    control replies → occupancy release / mailbox)."""

    def __init__(
        self,
        index: int,
        engine,
        queues,
        shard_locks: list[threading.Lock],
        owned_shards: list[int],
        *,
        max_batch: int,
        ctx,
        on_error=None,
        metrics=None,
        telemetry: bool = False,
    ) -> None:
        self.index = index
        self.owned = list(owned_shards)
        self._engine = engine
        self._queues = queues
        self._locks = shard_locks
        self._max_batch = max_batch
        self._ctx = ctx
        self._on_error = on_error
        self.conn: FrameConnection | None = None
        self.proc = None
        self.dead = False
        self.sink = False  # lossy death latched: pump drains to failure
        self.restarts = 0
        self.acked_epoch = {s: 0 for s in self.owned}
        self.pulled_epoch = {s: 0 for s in self.owned}
        self.applied_batches = 0
        self.last_ack_at = time.monotonic()
        # -- cross-process telemetry state --------------------------------
        self.telemetry = bool(telemetry)
        #: bumps on every (re)spawn; keys the merger's base accounting.
        self.generation = -1
        #: generation → (best rtt_ns, worker-minus-parent offset_ns).
        self.clock_by_gen: dict[int, tuple[int, int]] = {}
        #: shipped worker span records (JSONL dicts, annotated with
        #: pid/generation/worker at arrival), bounded like the worker ring.
        self.spans: deque[dict] = deque(maxlen=2 * WORKER_TRACE_CAPACITY)
        self.telemetry_ships = 0
        self.telemetry_spans = 0
        self.last_telemetry_at: float | None = None
        self._trace_seq = 0
        self._halt = threading.Event()
        self._cursor = 0
        # In-flight window: (shard, n) per unacked ingest frame, FIFO.
        self._inflight: deque[tuple[int, int]] = deque()
        self._window = threading.Condition()
        # One outstanding control request at a time; the receiver thread
        # posts the reply and sets the event.
        self._control_lock = threading.Lock()
        self._reply = None
        self._reply_evt = threading.Event()
        self._pump_t: threading.Thread | None = None
        self._recv_t: threading.Thread | None = None

        registry = current_registry() if metrics is None else metrics
        self._registry = registry
        self._metrics_on = registry.enabled
        applied = registry.counter(
            "repro_serving_applied_items_total",
            CATALOG_HELP["repro_serving_applied_items_total"],
            labels=("shard",),
        )
        failed = registry.counter(
            "repro_serving_failed_items_total",
            CATALOG_HELP["repro_serving_failed_items_total"],
            labels=("shard",),
        )
        apply_s = registry.histogram(
            "repro_serving_ingest_apply_seconds",
            CATALOG_HELP["repro_serving_ingest_apply_seconds"],
            labels=("shard",),
        )
        self._m_applied = {s: applied.labels(shard=str(s)) for s in self.owned}
        self._m_failed = {s: failed.labels(shard=str(s)) for s in self.owned}
        self._m_apply_s = {s: apply_s.labels(shard=str(s)) for s in self.owned}
        self._m_coalesce = registry.histogram(
            "repro_serving_batch_coalesce_items",
            CATALOG_HELP["repro_serving_batch_coalesce_items"],
            buckets=SIZE_BUCKETS,
        )
        self._m_restarts = registry.counter(
            "repro_serving_worker_restarts_total",
            CATALOG_HELP["repro_serving_worker_restarts_total"],
            labels=("worker",),
        ).labels(worker=str(index))

    # -- boot ---------------------------------------------------------------
    def _boot_frame(self) -> dict:
        from repro.engine.state import save_state

        fault = os.environ.get(FAULT_ITEM_ENV)
        shards = {}
        for shard in self.owned:
            with self._locks[shard]:
                shards[str(shard)] = {
                    "config": self._engine.shard_config(shard),
                    "state": save_state(self._engine.samplers[shard]),
                }
        frame = {
            "type": "boot",
            "worker": self.index,
            "shards": shards,
            "telemetry": int(self.telemetry),
        }
        if fault is not None:
            frame["fault_item"] = int(fault)
        return frame

    def _trace_ref(self, parent_span) -> str | None:
        """A fresh span reference stamped into an outgoing frame and
        onto the parent span, linking the worker-side child span back to
        it in trace exports.  None (no stamping) while tracing is off."""
        from repro.obs.trace import current_tracer

        if not current_tracer().enabled:
            return None
        self._trace_seq += 1
        ref = f"w{self.index}g{self.generation}s{self._trace_seq}"
        parent_span.set(span_ref=ref)
        return ref

    def spawn(self) -> None:
        """Fork/spawn the worker process and hand it its shard replicas.
        Call before any service threads start (fork safety)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        self.proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"repro-shard-worker-{self.index}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.conn = FrameConnection(parent_conn, metrics=self._registry)
        self.conn.send(self._boot_frame())
        ready = self.conn.recv()
        if ready.get("type") != "ready":
            raise RuntimeError(
                f"worker {self.index} failed to boot: "
                f"{ready.get('error', ready)}"
            )
        self.acked_epoch = {s: 0 for s in self.owned}
        self.pulled_epoch = {s: 0 for s in self.owned}
        self.generation += 1
        self.dead = False
        self.last_ack_at = time.monotonic()

    def start_threads(self) -> None:
        self._pump_t = threading.Thread(
            target=self._pump, name=f"repro-proc-pump-{self.index}", daemon=True
        )
        self._recv_t = threading.Thread(
            target=self._receive, name=f"repro-proc-recv-{self.index}", daemon=True
        )
        self._pump_t.start()
        self._recv_t.start()

    # -- pump: owned queue lanes → ingest frames ----------------------------
    def _fail_batch(self, shard: int, n: int) -> None:
        self._queues.mark_applied(shard, n, ok=False)
        self._m_failed[shard].add(n)

    def _pump(self) -> None:
        while True:
            got = self._queues.take(self.owned, self._cursor, self._max_batch)
            if got is None:
                if self._halt.is_set():
                    return
                self._queues.wait_for_work(self.owned, self._halt)
                continue
            lane_idx, batches = got
            self._cursor = lane_idx + 1
            shard = batches[0].shard
            n = sum(len(batch) for batch in batches)
            if self.sink:
                self._fail_batch(shard, n)
                continue
            items = (
                batches[0].items
                if len(batches) == 1
                else np.concatenate([b.items for b in batches])
            )
            if batches[0].timestamps is None:
                ts = None
            else:
                ts = (
                    batches[0].timestamps
                    if len(batches) == 1
                    else np.concatenate([b.timestamps for b in batches])
                )
            with self._window:
                while (
                    len(self._inflight) >= MAX_INFLIGHT_FRAMES
                    and not self.sink
                    and not self.dead
                    and not self._halt.is_set()
                ):
                    self._window.wait(0.05)
                if self.sink:
                    self._fail_batch(shard, n)
                    continue
                self._inflight.append((shard, n))
            frame = {"type": "ingest", "shard": shard, "items": items}
            if ts is not None:
                frame["ts"] = ts
            try:
                with span(
                    "serving.ipc_send", shard=shard, items=n, batches=len(batches)
                ) as sp:
                    ref = self._trace_ref(sp)
                    if ref is not None:
                        frame["trace"] = ref
                    self.conn.send(frame)
                self._m_coalesce.observe(n)
            except (OSError, ValueError, BrokenPipeError) as exc:
                # The receiver owns death bookkeeping; just unwind this
                # frame so it isn't double-failed there.  These items
                # were accepted and are now lost — that must latch.
                with self._window:
                    try:
                        self._inflight.remove((shard, n))
                    except ValueError:
                        pass
                self._fail_batch(shard, n)
                if self._on_error is not None:
                    self._on_error(
                        WorkerDied(
                            f"send to shard worker {self.index} failed "
                            f"({n} accepted items lost): {exc!r}"
                        ),
                        shard,
                    )

    # -- receiver: acks + control replies -----------------------------------
    def _receive(self) -> None:
        while not self._halt.is_set():
            try:
                if self.conn.poll(0.05):
                    frame = self.conn.recv()
                elif self.proc is not None and not self.proc.is_alive():
                    if not self._on_death():
                        return
                    continue
                else:
                    continue
            except (EOFError, OSError):
                if self._halt.is_set():
                    return
                if not self._on_death():
                    return
                continue
            kind = frame.get("type")
            if kind == "ack":
                shard = int(frame["shard"])
                n = int(frame["n"])
                ok = bool(frame.get("ok"))
                with self._window:
                    try:
                        self._inflight.remove((shard, n))
                    except ValueError:
                        pass
                    self._window.notify_all()
                self.last_ack_at = time.monotonic()
                self._queues.mark_applied(shard, n, ok=ok)
                if ok:
                    self.acked_epoch[shard] = int(frame["epoch"])
                    self.applied_batches += 1
                    self._m_applied[shard].add(n)
                    # With telemetry on, the worker observes its own
                    # apply histogram (shipped back with a worker
                    # label); observing the ack here too would count
                    # every apply twice in the merged view.
                    if self._metrics_on and not self.telemetry:
                        self._m_apply_s[shard].observe(float(frame["seconds"]))
                else:
                    self._m_failed[shard].add(n)
                    if self._on_error is not None and shard >= 0:
                        self._on_error(
                            RuntimeError(
                                f"worker {self.index} apply failed: "
                                f"{frame.get('error')}"
                            ),
                            shard,
                        )
            else:  # control reply (state/compacted/pong/bye)
                self._reply = frame
                self._reply_evt.set()

    def _on_death(self) -> bool:
        """Handle a dead worker process.  Returns True when the link was
        restarted losslessly and the receiver should keep going."""
        exitcode = self.proc.exitcode if self.proc is not None else None
        self.dead = True
        with self._window:
            stranded = list(self._inflight)
            self._inflight.clear()
            self._window.notify_all()
        # A control waiter must not hang on a reply that will never come.
        if not self._reply_evt.is_set():
            self._reply = {"type": "worker_died", "exitcode": exitcode}
            self._reply_evt.set()
        lossless = not stranded and all(
            self.acked_epoch[s] == self.pulled_epoch[s] for s in self.owned
        )
        for shard, n in stranded:
            self._fail_batch(shard, n)
        if lossless and not self._halt.is_set():
            try:
                self.spawn()
            except Exception as exc:
                self._latch_death(exitcode, f"restart failed: {exc!r}")
                return False
            self.restarts += 1
            self._m_restarts.inc()
            with self._window:
                self._window.notify_all()
            return True
        if not self._halt.is_set():
            self._latch_death(
                exitcode,
                f"{sum(n for __, n in stranded)} in-flight items lost"
                if stranded
                else "unpulled applied state lost",
            )
        return False

    def _latch_death(self, exitcode, why: str) -> None:
        self.sink = True
        with self._window:
            self._window.notify_all()
        if self._on_error is not None:
            self._on_error(
                WorkerDied(
                    f"shard worker {self.index} died "
                    f"(exitcode {exitcode}): {why}"
                ),
                self.owned[0] if self.owned else -1,
            )

    # -- control ------------------------------------------------------------
    def control(self, frame: dict, timeout: float = CONTROL_TIMEOUT) -> dict:
        """Send one control frame and wait for its reply (the worker
        answers in order, after any queued ingest frames)."""
        if self.dead and not self.sink:
            # Between death detection and restart; give the receiver a
            # beat rather than failing a probably-recoverable call.
            time.sleep(0.05)
        if self.sink or self.conn is None:
            raise WorkerDied(f"shard worker {self.index} is down")
        with self._control_lock:
            self._reply = None
            self._reply_evt.clear()
            self.conn.send(frame)
            if not self._reply_evt.wait(timeout):
                raise WorkerDied(
                    f"shard worker {self.index} unresponsive to "
                    f"{frame.get('type')!r} for {timeout:g}s"
                )
            reply = self._reply
        if reply.get("type") == "worker_died":
            raise WorkerDied(
                f"shard worker {self.index} died mid-"
                f"{frame.get('type')} (exitcode {reply.get('exitcode')})"
            )
        return reply

    # -- teardown -----------------------------------------------------------
    def stop(self, timeout: float = 5.0) -> None:
        self._halt.set()
        with self._window:
            self._window.notify_all()
        if self._pump_t is not None:
            self._pump_t.join(timeout)
        if self.conn is not None and not self.sink:
            try:
                self.conn.send({"type": "stop"})
            except (OSError, ValueError, BrokenPipeError):
                pass
        if self._recv_t is not None:
            self._recv_t.join(timeout)
        if self.proc is not None:
            self.proc.join(timeout)
            if self.proc.is_alive():
                self.proc.terminate()
                self.proc.join(timeout)
        if self.conn is not None:
            self.conn.close()

    def record_clock(self, reply_now_ns: int, t0_ns: int, t1_ns: int) -> None:
        """Fold one control round trip into this generation's clock
        estimate: the worker's ``now_ns`` was read somewhere inside
        [t0, t1] on the parent clock, so the midpoint gives
        ``offset = worker_now - (t0 + t1) / 2`` with error ≤ rtt/2 —
        keep the minimum-RTT sample (tightest bound) per generation."""
        rtt = int(t1_ns) - int(t0_ns)
        offset = int(reply_now_ns) - (int(t0_ns) + int(t1_ns)) // 2
        best = self.clock_by_gen.get(self.generation)
        if best is None or rtt < best[0]:
            self.clock_by_gen[self.generation] = (rtt, offset)

    def status(self) -> dict:
        with self._window:
            inflight = sum(n for __, n in self._inflight)
            frames = len(self._inflight)
        alive = self.proc is not None and self.proc.is_alive()
        stalled = (
            alive
            and frames > 0
            and time.monotonic() - self.last_ack_at > STALL_AFTER_SECONDS
        )
        return {
            "worker": self.index,
            "pid": self.proc.pid if self.proc is not None else None,
            "alive": alive,
            "stalled": stalled,
            "shards": list(self.owned),
            "inflight_items": inflight,
            "inflight_frames": frames,
            "restarts": self.restarts,
            "acked_epochs": dict(self.acked_epoch),
            "pulled_epochs": dict(self.pulled_epoch),
            "last_ack_age_s": time.monotonic() - self.last_ack_at,
        }


class ProcessPlane:
    """All the worker links plus the fold collector that lands their
    snapshot deltas back into the front door's mirror engine."""

    def __init__(
        self,
        engine,
        queues,
        shard_locks: list[threading.Lock],
        *,
        workers: int,
        max_batch: int,
        on_error=None,
        metrics=None,
        start_method: str | None = None,
        telemetry: bool = True,
        worker_metrics=None,
    ) -> None:
        if getattr(engine, "_config", None) is None:
            raise ValueError(
                "process-mode serving needs a config-built engine "
                "(workers bootstrap shard replicas from its registry config); "
                "pass config= instead of a prebuilt engine, or use "
                "workers_mode='thread'"
            )
        ctx = (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )
        self._engine = engine
        self._locks = shard_locks
        self._queues = queues
        # Telemetry rides the metrics plane: without a parent-side mirror
        # registry to merge into, workers boot dark exactly as before.
        self.telemetry_enabled = bool(telemetry) and worker_metrics is not None
        self._merger = (
            WorkerTelemetry(worker_metrics) if self.telemetry_enabled else None
        )
        self.links = [
            WorkerLink(
                w,
                engine,
                queues,
                shard_locks,
                [s for s in range(engine.shards) if s % workers == w],
                max_batch=max_batch,
                ctx=ctx,
                on_error=on_error,
                metrics=metrics,
                telemetry=self.telemetry_enabled,
            )
            for w in range(workers)
        ]
        registry = current_registry() if metrics is None else metrics
        depth = registry.gauge(
            "repro_serving_worker_queue_depth",
            CATALOG_HELP["repro_serving_worker_queue_depth"],
            labels=("worker",),
        )
        ships = registry.counter(
            "repro_worker_telemetry_ships_total",
            CATALOG_HELP["repro_worker_telemetry_ships_total"],
            labels=("worker",),
        )
        spans_total = registry.counter(
            "repro_worker_telemetry_spans_total",
            CATALOG_HELP["repro_worker_telemetry_spans_total"],
            labels=("worker",),
        )
        merge_errors = registry.counter(
            "repro_worker_telemetry_merge_errors_total",
            CATALOG_HELP["repro_worker_telemetry_merge_errors_total"],
            labels=("worker",),
        )
        age = registry.gauge(
            "repro_worker_telemetry_age_seconds",
            CATALOG_HELP["repro_worker_telemetry_age_seconds"],
            labels=("worker",),
        )
        clock_offset = registry.gauge(
            "repro_worker_telemetry_clock_offset_seconds",
            CATALOG_HELP["repro_worker_telemetry_clock_offset_seconds"],
            labels=("worker",),
        )
        self._m_ships = {}
        self._m_spans = {}
        self._m_merge_errors = {}
        self._m_clock_offset = {}
        for link in self.links:
            w = str(link.index)
            owned = list(link.owned)
            depth.labels(worker=w).set_function(
                lambda owned=owned: float(
                    sum(d for s, d in enumerate(self._queues.depths()) if s in owned)
                )
            )
            self._m_ships[link.index] = ships.labels(worker=w)
            self._m_spans[link.index] = spans_total.labels(worker=w)
            self._m_merge_errors[link.index] = merge_errors.labels(worker=w)
            self._m_clock_offset[link.index] = clock_offset.labels(worker=w)
            age.labels(worker=w).set_function(
                lambda link=link: (
                    -1.0
                    if link.last_telemetry_at is None
                    else time.monotonic() - link.last_telemetry_at
                )
            )

    def start(self) -> None:
        """Spawn every worker process *first*, then their pump/receiver
        threads — forking after service threads exist risks inheriting a
        mid-held lock into the child.  With telemetry on, one initial
        pull seeds the per-generation clock offsets and the merged view
        before any traffic."""
        for link in self.links:
            link.spawn()
        for link in self.links:
            link.start_threads()
        self.pull_telemetry()

    # -- fold collector ------------------------------------------------------
    def collect(self, timeout: float = CONTROL_TIMEOUT) -> int:
        """Pull per-shard snapshot deltas from every worker and restore
        them into the mirror engine under the shard write locks; returns
        the number of shards that moved.  The worker answers a ``pull``
        after every ingest frame queued before it, so a flush + collect
        mirrors everything acked so far.  Telemetry piggybacks on the
        reply, so the collector cadence is also the shipping cadence."""
        moved = 0
        for link in self.links:
            frame = {"type": "pull", "epochs": _epochs_tree(link.pulled_epoch)}
            with span("serving.collect", worker=link.index) as sp:
                ref = link._trace_ref(sp)
                if ref is not None:
                    frame["trace"] = ref
                t0 = time.perf_counter_ns()
                reply = link.control(frame, timeout)
                t1 = time.perf_counter_ns()
            self._ingest_telemetry(link, reply.get("telemetry"), t0, t1)
            for key, entry in (reply.get("shards") or {}).items():
                shard = int(key)
                with self._locks[shard]:
                    self._engine.restore_shard(shard, entry["state"])
                link.pulled_epoch[shard] = int(entry["epoch"])
                link.acked_epoch[shard] = max(
                    link.acked_epoch[shard], int(entry["epoch"])
                )
                moved += 1
        return moved

    def compact(self, now=None, timeout: float = CONTROL_TIMEOUT) -> int:
        """Run expiry compaction inside every worker (the authoritative
        state); the mirror picks up compacted snapshots on the next
        collect.  Returns total freed bytes reported."""
        freed = 0
        for link in self.links:
            frame = {"type": "compact"}
            if now is not None:
                frame["now"] = float(now)
            with span("serving.compact_workers", worker=link.index) as sp:
                ref = link._trace_ref(sp)
                if ref is not None:
                    frame["trace"] = ref
                reply = link.control(frame, timeout)
            freed += int(reply.get("freed", 0))
            for key, epoch in (reply.get("epochs") or {}).items():
                link.acked_epoch[int(key)] = max(
                    link.acked_epoch[int(key)], int(epoch)
                )
        return freed

    # -- telemetry -----------------------------------------------------------
    def _ingest_telemetry(self, link, payload, t0_ns: int, t1_ns: int) -> None:
        """Merge one worker telemetry payload: clock sample, metric
        snapshot (with generation base accounting), span batch.  A
        malformed snapshot counts a merge error instead of killing the
        caller — telemetry must never take down the fold collector."""
        if payload is None or self._merger is None:
            return
        if "now_ns" in payload:
            link.record_clock(int(payload["now_ns"]), t0_ns, t1_ns)
            best = link.clock_by_gen.get(link.generation)
            if best is not None:
                self._m_clock_offset[link.index].set(best[1] / 1e9)
        metrics_tree = payload.get("metrics")
        if metrics_tree is not None:
            try:
                self._merger.update(str(link.index), link.generation, metrics_tree)
            except (ValueError, KeyError, TypeError):
                self._m_merge_errors[link.index].inc()
        spans_blob = payload.get("spans")
        span_count = 0
        if spans_blob:
            pid = payload.get("pid")
            for line in bytes(spans_blob).decode("utf-8").splitlines():
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                record["pid"] = pid
                record["generation"] = link.generation
                record["worker"] = link.index
                link.spans.append(record)
                span_count += 1
        link.telemetry_ships += 1
        link.telemetry_spans += span_count
        link.last_telemetry_at = time.monotonic()
        self._m_ships[link.index].inc()
        if span_count:
            self._m_spans[link.index].add(span_count)

    def pull_telemetry(self, timeout: float = 5.0) -> list[int]:
        """Request a telemetry payload from every live worker (dedicated
        ``telemetry`` frames, independent of the collector cadence);
        returns the indices of workers that failed to answer.  Safe to
        call from exposition renders and health probes — a down or
        unresponsive worker is reported, never raised."""
        if not self.telemetry_enabled:
            return []
        failed = []
        for link in self.links:
            try:
                t0 = time.perf_counter_ns()
                reply = link.control({"type": "telemetry"}, timeout)
                t1 = time.perf_counter_ns()
            except WorkerDied:
                failed.append(link.index)
                continue
            self._ingest_telemetry(link, reply, t0, t1)
        return failed

    def telemetry_status(self) -> list[dict]:
        """Per-worker shipping/clock state for ``stats()`` and probes."""
        out = []
        for link in self.links:
            clock = link.clock_by_gen.get(link.generation)
            out.append(
                {
                    "worker": link.index,
                    "enabled": self.telemetry_enabled,
                    "generation": link.generation,
                    "ships": link.telemetry_ships,
                    "spans": link.telemetry_spans,
                    "retained_spans": len(link.spans),
                    "last_age_s": (
                        None
                        if link.last_telemetry_at is None
                        else time.monotonic() - link.last_telemetry_at
                    ),
                    "clock_rtt_ns": None if clock is None else clock[0],
                    "clock_offset_ns": None if clock is None else clock[1],
                }
            )
        return out

    def telemetry_info(self) -> list[dict]:
        """Everything the flight recorder / ``--per-worker`` view wants:
        shipping status plus the raw (unmerged) metric snapshot and the
        retained span records, per worker."""
        out = []
        for status, link in zip(self.telemetry_status(), self.links):
            entry = dict(status)
            entry["pid"] = link.proc.pid if link.proc is not None else None
            entry["metrics"] = (
                self._merger.latest(link.index) if self._merger else None
            )
            entry["trace"] = list(link.spans)
            out.append(entry)
        return out

    def trace_groups(self) -> list[dict]:
        """Worker span records grouped per (worker, pid) with the
        generation's clock offset resolved — the
        :func:`repro.obs.trace.export_chrome_merged` input shape."""
        groups = []
        for link in self.links:
            by_pid: dict[int, list[dict]] = {}
            for record in list(link.spans):
                by_pid.setdefault(record.get("pid") or 0, []).append(record)
            for pid, records in by_pid.items():
                gen = records[-1].get("generation", link.generation)
                clock = link.clock_by_gen.get(gen)
                groups.append(
                    {
                        "name": f"worker-{link.index}",
                        "pid": pid,
                        "offset_ns": 0 if clock is None else clock[1],
                        "records": records,
                    }
                )
        return groups

    def status(self) -> list[dict]:
        return [link.status() for link in self.links]

    def stop(self, timeout: float = 5.0) -> None:
        for link in self.links:
            link.stop(timeout)
