"""Binary frame transport for the process-parallel ingest plane.

A :class:`FrameConnection` wraps one end of a ``multiprocessing`` duplex
pipe and speaks *frames*: plain snapshot trees (nested dicts of NumPy
arrays, bytes, and JSON-able scalars) encoded with the same RPRS codec
that checkpoints sampler state (:mod:`repro.lifecycle.codec`).  Nothing
on the wire is pickled — a frame is a self-describing bytes buffer, so
a corrupt or adversarial peer can at worst produce a malformed tree,
never code execution.

Frame vocabulary (the ``type`` key):

========== =============================================================
``ingest``   parent → worker: one coalesced micro-batch for one shard
             (``shard``, ``items`` int64 array, optional ``ts`` float64)
``ack``      worker → parent: result of one ingest frame (``shard``,
             ``n`` items, ``ok`` 0/1, ``epoch`` after apply, ``seconds``
             apply wall time, ``error`` repr when not ok)
``pull``     parent → worker: request snapshot deltas for shards whose
             worker-side epoch is beyond ``epochs[shard]``
``state``    worker → parent: ``shards: {shard: {epoch, state bytes}}``
``compact``  parent → worker: run expiry compaction (optional ``now``)
``compacted`` worker → parent: ``freed`` items total, ``epochs``
``ping``/``pong``  liveness probe (``pong`` carries ``now_ns``, the
             worker's ``perf_counter_ns``, for clock-offset estimation)
``telemetry``  parent → worker: request a telemetry payload; the reply
             (same ``type``) carries a cumulative metric snapshot tree
             (:func:`repro.obs.telemetry.snapshot_registry`), a span
             batch (JSONL bytes), ``now_ns`` and ``pid``.  The same
             payload piggybacks on ``state`` replies under a
             ``telemetry`` key.
``stop``/``bye``   orderly shutdown handshake
========== =============================================================

Both ends meter traffic into the observability plane
(``repro_serving_ipc_frames_total`` / ``repro_serving_ipc_bytes_total``
by direction) — the parent into the service registry, the worker into
its own shipped registry, so the unified exposition shows both halves
of the pipe under distinct ``worker`` labels.  A worker booted with
telemetry off keeps the PR 8 dark mode: disabled registry,
``metered=False``.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.lifecycle.codec import state_from_bytes, state_to_bytes

__all__ = ["FrameConnection", "encode_frame", "decode_frame", "MAX_FRAME_BYTES"]

# A hard ceiling on a single frame, defending both sides against a
# corrupt length prefix.  Snapshot deltas dominate frame size; 1 GiB is
# far beyond any realistic shard state in this codebase.
MAX_FRAME_BYTES = 1 << 30

_LEN = struct.Struct("<Q")


def encode_frame(tree: dict) -> bytes:
    """Encode one frame tree to its wire bytes (no length prefix)."""
    return state_to_bytes(tree)


def decode_frame(buf: bytes) -> dict:
    """Decode wire bytes back to the frame tree."""
    if len(buf) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(buf)} bytes exceeds MAX_FRAME_BYTES")
    tree = state_from_bytes(buf)
    if not isinstance(tree, dict) or "type" not in tree:
        raise ValueError("malformed frame: missing type")
    return tree


class FrameConnection:
    """One end of a duplex pipe, upgraded to typed snapshot-tree frames.

    ``send`` is safe to call from multiple threads (the parent's pump
    and control paths share the pipe); ``recv``/``poll`` must stay on a
    single receiver thread, which is how both ends use it.
    """

    def __init__(self, conn, *, metered: bool = True, metrics=None):
        import threading

        self._conn = conn
        self._send_lock = threading.Lock()
        if metered:
            from repro.obs.catalog import CATALOG_HELP
            from repro.obs.metrics import current_registry

            reg = current_registry() if metrics is None else metrics
            frames = reg.counter(
                "repro_serving_ipc_frames_total",
                CATALOG_HELP["repro_serving_ipc_frames_total"],
                labels=("direction",),
            )
            nbytes = reg.counter(
                "repro_serving_ipc_bytes_total",
                CATALOG_HELP["repro_serving_ipc_bytes_total"],
                labels=("direction",),
            )
            self._m_frames = {
                d: frames.labels(direction=d) for d in ("send", "recv")
            }
            self._m_bytes = {
                d: nbytes.labels(direction=d) for d in ("send", "recv")
            }
        else:
            self._m_frames = None
            self._m_bytes = None

    def send(self, tree: dict) -> int:
        """Encode and ship one frame; returns the frame's byte size."""
        buf = encode_frame(tree)
        if len(buf) > MAX_FRAME_BYTES:
            raise ValueError(f"frame of {len(buf)} bytes exceeds MAX_FRAME_BYTES")
        with self._send_lock:
            self._conn.send_bytes(buf)
        if self._m_frames is not None:
            self._m_frames["send"].inc()
            self._m_bytes["send"].add(len(buf))
        return len(buf)

    def recv(self) -> dict:
        """Block for the next frame and decode it (raises EOFError on hangup)."""
        buf = self._conn.recv_bytes(MAX_FRAME_BYTES)
        if self._m_frames is not None:
            self._m_frames["recv"].inc()
            self._m_bytes["recv"].add(len(buf))
        return decode_frame(buf)

    def poll(self, timeout: Optional[float] = 0.0) -> bool:
        return self._conn.poll(timeout)

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass

    @property
    def raw(self):
        return self._conn
