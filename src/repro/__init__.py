"""repro — Truly Perfect Samplers for Data Streams and Sliding Windows.

A production-grade Python reproduction of Jayaram, Woodruff & Zhou,
"Truly Perfect Samplers for Data Streams and Sliding Windows" (PODS 2022,
arXiv:2108.12017).

Quick start::

    import numpy as np
    from repro import TrulyPerfectLpSampler, zipf_stream

    stream = zipf_stream(n=256, m=10_000, alpha=1.2, seed=0)
    sampler = TrulyPerfectLpSampler(p=2.0, n=stream.n, seed=0)
    result = sampler.run(stream)
    if result.is_item:
        print("sampled index", result.item)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the paper's contribution: Framework 1.3, Lp / G /
  matrix / F0 samplers, multi-pass strict turnstile reductions.
* :mod:`repro.sliding_window` — Algorithms 4 & 6, windowed F0
  (count-based windows: "the last W updates").
* :mod:`repro.windows` — time-based sliding windows ("the last H
  seconds") at multiple resolutions, engine-integrated.
* :mod:`repro.random_order` — Algorithms 9 & 10.
* :mod:`repro.perfect` — γ > 0 baselines (Appendix B, JW18-style).
* :mod:`repro.sketches` — Misra-Gries, CountSketch, AMS, smooth
  histograms, sparse recovery, hashing.
* :mod:`repro.streams` — stream model, generators, ground truth.
* :mod:`repro.lowerbound` — Theorem 1.2's reduction, executable.
* :mod:`repro.stats` — exactness validation harness.
* :mod:`repro.lifecycle` — the unified sampler lifecycle: the
  :class:`StreamSampler` protocol (ingest / checkpoint / merge /
  compact / account), the versioned :class:`Snapshot` envelope, and
  the memory model behind ``approx_size_bytes()``.
* :mod:`repro.engine` — serving-grade layer: batched ingestion,
  mergeable/serializable sampler state, sharded engine with expiry
  compaction and merge watermarks, config-driven construction.
* :mod:`repro.serving` — the concurrent front door: shard-parallel
  ingest workers behind bounded queues with admission control, a
  lock-free query plane with per-reader RNG streams, thread and
  asyncio facades, and the ``repro-serve`` CLI.
* :mod:`repro.obs` — zero-dependency observability: labeled
  counters/gauges/log-bucketed histograms with Prometheus and JSON
  exposition, span tracing with a ring buffer and JSONL export, the
  metric catalog, and the ``promcheck`` format gate.

Engine quick start::

    from repro.engine import ShardedSamplerEngine, ingest

    engine = ShardedSamplerEngine(
        {"kind": "lp", "p": 2.0, "n": stream.n}, shards=8, seed=0
    )
    engine.ingest(stream.items)        # vectorized, hash-partitioned
    result = engine.sample()           # exact global Lp sample
"""

from repro.core import (
    BoundedMeasure,
    BoundedMeasureSampler,
    CauchyMeasure,
    ConcaveMeasure,
    FairMeasure,
    GemanMcClureMeasure,
    HuberMeasure,
    L1L2Measure,
    LpMeasure,
    Measure,
    SampleOutcome,
    SampleResult,
    TrulyPerfectF0Sampler,
    TrulyPerfectGSampler,
    TrulyPerfectLpSampler,
    TrulyPerfectMatrixSampler,
    TukeyMeasure,
    TukeySampler,
    WeightedL1Sampler,
    WeightedReservoir,
)
from repro.sliding_window import (
    SlidingWindowF0Sampler,
    SlidingWindowGSampler,
    SlidingWindowLpSampler,
)
from repro.windows import (
    TimeWindowF0Sampler,
    TimeWindowGSampler,
    TimeWindowLpSampler,
    WindowBank,
)
from repro.random_order import RandomOrderL2Sampler, RandomOrderLpSampler
from repro.streams import (
    Stream,
    TimestampedStream,
    TurnstileStream,
    uniform_stream,
    with_arrivals,
    zipf_stream,
)
from repro.engine import (
    BatchIngestor,
    MergeableState,
    ShardedSamplerEngine,
    Snapshot,
    StreamSampler,
    UniversePartitioner,
    WatermarkSkewError,
    build_measure,
    build_sampler,
    ingest,
    load_state,
    merged,
    save_state,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Measure",
    "BoundedMeasure",
    "LpMeasure",
    "L1L2Measure",
    "FairMeasure",
    "HuberMeasure",
    "CauchyMeasure",
    "TukeyMeasure",
    "GemanMcClureMeasure",
    "ConcaveMeasure",
    "BoundedMeasureSampler",
    "WeightedReservoir",
    "WeightedL1Sampler",
    "SampleOutcome",
    "SampleResult",
    "TrulyPerfectGSampler",
    "TrulyPerfectLpSampler",
    "TrulyPerfectMatrixSampler",
    "TrulyPerfectF0Sampler",
    "TukeySampler",
    "SlidingWindowGSampler",
    "SlidingWindowLpSampler",
    "SlidingWindowF0Sampler",
    "TimeWindowGSampler",
    "TimeWindowLpSampler",
    "TimeWindowF0Sampler",
    "WindowBank",
    "RandomOrderL2Sampler",
    "RandomOrderLpSampler",
    "Stream",
    "TimestampedStream",
    "TurnstileStream",
    "uniform_stream",
    "with_arrivals",
    "zipf_stream",
    "BatchIngestor",
    "MergeableState",
    "StreamSampler",
    "Snapshot",
    "WatermarkSkewError",
    "ShardedSamplerEngine",
    "UniversePartitioner",
    "build_measure",
    "build_sampler",
    "ingest",
    "load_state",
    "merged",
    "save_state",
]
