"""The snapshot tree codec — plain dicts of arrays and scalars ↔ bytes.

Every sampler checkpoints as a *plain* tree: nested dicts of NumPy
arrays and JSON-able scalars (including the RNG state, so a restored
sampler replays bitwise-identically).  :func:`state_to_bytes` /
:func:`state_from_bytes` give those trees a compact wire format — a
JSON header describing the tree plus the raw array buffers — so sampler
state can be checkpointed to disk or shipped between machines without
pickling (loading a snapshot never executes code).

This module is the low-level layer; :mod:`repro.lifecycle.envelope`
wraps trees in a versioned, kind-tagged :class:`Snapshot` envelope,
which is what the engine ships.  The serving layer's process-plane
transport (:mod:`repro.serving.transport`) reuses the same format for
its IPC frames, which is why ``bytes`` leaves are first-class: a frame
can carry a whole nested snapshot buffer (itself RPRS bytes) without
re-encoding it.
"""

from __future__ import annotations

import json
import struct

import numpy as np

__all__ = ["state_to_bytes", "state_from_bytes"]

_MAGIC = b"RPRS"
_VERSION = 1


def _flatten(node, path: str, arrays: dict[str, np.ndarray]):
    """Replace arrays in a snapshot tree with references, collecting them."""
    if isinstance(node, np.ndarray):
        arrays[path] = node
        return {"__array__": path}
    if isinstance(node, (bytes, bytearray, memoryview)):
        # Bytes ride the array-buffer channel as uint8 and are restored
        # to ``bytes`` on decode, so nested binary payloads (snapshot
        # envelopes inside IPC frames) round-trip without base64 bloat.
        arrays[path] = np.frombuffer(bytes(node), dtype=np.uint8)
        return {"__bytes__": path}
    if isinstance(node, dict):
        return {
            str(key): _flatten(value, f"{path}/{key}" if path else str(key), arrays)
            for key, value in node.items()
        }
    if isinstance(node, (np.integer,)):
        return int(node)
    if isinstance(node, (np.floating,)):
        return float(node)
    if isinstance(node, (np.bool_,)):
        return bool(node)
    return node


def _unflatten(node, arrays: dict[str, np.ndarray]):
    if isinstance(node, dict):
        if set(node) == {"__array__"}:
            return arrays[node["__array__"]]
        if set(node) == {"__bytes__"}:
            return arrays[node["__bytes__"]].tobytes()
        return {key: _unflatten(value, arrays) for key, value in node.items()}
    return node


def state_to_bytes(state: dict) -> bytes:
    """Serialize a snapshot tree to a compact self-describing buffer.

    Layout: ``RPRS | u32 header_len | header JSON | array buffers``.
    The header carries the flattened tree plus dtype/shape per array;
    buffers are raw C-order bytes concatenated in header order.
    """
    if not isinstance(state, dict):
        raise TypeError(f"snapshot must be a dict, got {type(state).__name__}")
    arrays: dict[str, np.ndarray] = {}
    tree = _flatten(state, "", arrays)
    specs = []
    buffers = []
    for path, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        specs.append({"path": path, "dtype": arr.dtype.str, "shape": list(arr.shape)})
        buffers.append(arr.tobytes())
    header = json.dumps(
        {"version": _VERSION, "tree": tree, "arrays": specs},
        separators=(",", ":"),
    ).encode("utf-8")
    return b"".join([_MAGIC, struct.pack("<I", len(header)), header, *buffers])


def state_from_bytes(buf: bytes) -> dict:
    """Inverse of :func:`state_to_bytes`."""
    if len(buf) < 8 or buf[:4] != _MAGIC:
        raise ValueError("not a repro engine state buffer (bad magic)")
    (header_len,) = struct.unpack_from("<I", buf, 4)
    start = 8 + header_len
    if start > len(buf):
        raise ValueError("truncated state buffer (header)")
    header = json.loads(buf[8:start].decode("utf-8"))
    if header.get("version") != _VERSION:
        raise ValueError(f"unsupported state version {header.get('version')!r}")
    arrays: dict[str, np.ndarray] = {}
    offset = start
    for spec in header["arrays"]:
        dtype = np.dtype(spec["dtype"])
        shape = tuple(spec["shape"])
        end = offset + int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if end > len(buf):
            raise ValueError("truncated state buffer (arrays)")
        arrays[spec["path"]] = np.frombuffer(
            buf[offset:end], dtype=dtype
        ).reshape(shape).copy()
        offset = end
    return _unflatten(header["tree"], arrays)
