"""Deterministic memory accounting for ``approx_size_bytes()``.

The lifecycle's memory hook answers "roughly how many bytes does this
sampler hold resident?" for capacity planning and for the compaction
benchmarks.  The numbers are a *model*, not ``sys.getsizeof`` truth:
CPython's actual footprint varies by version, small-int caching, and
dict load factor, none of which should leak into tests or benchmarks.
The model is deliberately simple and stable —

* a boxed Python object slot (int/float in a container) ≈ one header +
  payload: 32 bytes;
* a dict entry ≈ key slot + value slot + table overhead: 104 bytes;
* a set entry ≈ element slot + table overhead: 72 bytes;
* a list/tuple element ≈ one pointer + its boxed target: 40 bytes;
* a NumPy array ≈ its buffer + a fixed header;
* an RNG (Generator + BitGenerator state) ≈ 128 bytes;
* a Python instance shell ≈ 64 bytes.

What matters downstream is monotonicity (more entries → more bytes) and
rough proportionality, both of which the model gives exactly.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "INSTANCE_BYTES",
    "RNG_STATE_BYTES",
    "mapping_bytes",
    "set_bytes",
    "sequence_bytes",
    "ndarray_bytes",
]

#: A Python instance shell (object header + slot/dict pointers).
INSTANCE_BYTES = 64

#: A ``numpy.random.Generator`` plus its BitGenerator state.
RNG_STATE_BYTES = 128

_DICT_ENTRY = 104
_SET_ENTRY = 72
_SEQ_ENTRY = 40
_DICT_BASE = 64
_SET_BASE = 64
_SEQ_BASE = 56
_NDARRAY_BASE = 112


def mapping_bytes(entries: int) -> int:
    """Approximate bytes of a dict with ``entries`` scalar entries."""
    return _DICT_BASE + _DICT_ENTRY * int(entries)


def set_bytes(entries: int) -> int:
    """Approximate bytes of a set with ``entries`` scalar elements."""
    return _SET_BASE + _SET_ENTRY * int(entries)


def sequence_bytes(length: int) -> int:
    """Approximate bytes of a list/tuple of ``length`` scalars."""
    return _SEQ_BASE + _SEQ_ENTRY * int(length)


def ndarray_bytes(arr: np.ndarray) -> int:
    """Approximate bytes of a NumPy array (buffer + header)."""
    return _NDARRAY_BASE + int(arr.nbytes)
