"""Per-reader query RNG streams — the serving layer's answer to the
PR 4 determinism caveat.

A retained fold (:func:`repro.engine.state.merged` output, or the
sharded engine's merged-view cache) freezes its *state* between refolds,
but every query advances its private RNG stream.  One fold therefore
cannot serve concurrent readers lock-free: two threads racing on the
same ``Generator`` corrupt the stream (and with it the determinism
contract).  Two resolutions, both built here:

* **locked, single-stream** — serialize draws on the shared fold.
  Bitwise identical to the single-threaded query sequence; the
  serving layer's replay/debug mode.
* **per-reader streams** — give each reader its own *query view* of the
  fold: a deep copy whose every query RNG is rebound to a fresh,
  independently seeded stream.  The view's non-RNG state never changes
  (queries only draw coins), so a reader can serve unboundedly many
  lock-free queries off one view until the fold itself is replaced.
  Each reader's answer sequence is exactly target-distributed and
  deterministic given ``(fold state, reader seed)``; what is *not*
  reproduced is the single-stream interleaving — that is what the
  locked mode is for.

Samplers may implement the optional ``spawn_query_rng(rng)`` lifecycle
hook (see :mod:`repro.lifecycle.protocol`) to control how a query view
is built — e.g. :class:`repro.windows.WindowBank` re-derives one child
stream per member.  :func:`spawn_query_view` prefers the hook and falls
back to the generic deep-copy-and-rebind below, which handles any
sampler whose query randomness flows through ``np.random.Generator``
attributes (every family in this repo).
"""

from __future__ import annotations

import copy

import numpy as np

from repro.lifecycle.protocol import has_query_rng_hook

__all__ = [
    "derive_reader_rng",
    "rebind_query_rngs",
    "spawn_query_view",
]


def derive_reader_rng(
    seed: int | None, generation: int, reader: int
) -> np.random.Generator:
    """An independent, deterministic stream for one reader of one fold
    generation.

    Streams for distinct ``(seed, generation, reader)`` triples are
    statistically independent (SeedSequence children), and the whole
    family is reproducible from the service seed alone.
    """
    root = 0 if seed is None else int(seed)
    return np.random.default_rng(
        np.random.SeedSequence([root, int(generation), int(reader)])
    )


#: Values the walker never descends into (bulk data and scalars).
_LEAF_TYPES = (np.ndarray, str, bytes, int, float, bool, complex)


def rebind_query_rngs(obj, rng: np.random.Generator) -> int:
    """Walk ``obj``'s object graph and rebind every
    ``np.random.Generator`` to ``rng``; returns how many bindings were
    replaced.

    Aliased generators (e.g. ``TrulyPerfectGSampler._rng`` is its pool's
    ``_rng``) all rebind to the *same* new generator, preserving the
    alias structure.  Containers (lists/dicts/tuples/sets of
    sub-samplers, arbitrarily nested — a bank's member tables, a list of
    ``(bucket, pool)`` pairs) are traversed as graph nodes in their own
    right, and generators held *directly* in a mutable container
    (list element, dict value) are rebound in place; generators inside
    tuples or sets cannot be (immutability / identity), so those are
    counted in the walk but left to the owning family's own
    ``spawn_query_rng`` hook.  Leaf data (NumPy arrays, scalars,
    strings) is never descended into.  Mutate only objects you own —
    this is meant for the private deep copy made by
    :func:`spawn_query_view`.
    """
    replaced = 0
    seen: set[int] = set()
    stack = [obj]

    def visit(value):
        if value is None or isinstance(value, _LEAF_TYPES):
            return
        stack.append(value)

    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, np.random.Generator):
            continue  # reached via a container we cannot rewrite
        if isinstance(node, list):
            for i, child in enumerate(node):
                if isinstance(child, np.random.Generator):
                    if child is not rng:
                        node[i] = rng
                        replaced += 1
                else:
                    visit(child)
            continue
        if isinstance(node, dict):
            for key, child in node.items():
                if isinstance(child, np.random.Generator):
                    if child is not rng:
                        node[key] = rng
                        replaced += 1
                else:
                    visit(child)
            continue
        if isinstance(node, (tuple, set, frozenset)):
            for child in node:
                visit(child)
            continue
        slots = []
        d = getattr(node, "__dict__", None)
        if d is not None:
            slots.extend(d.keys())
        for klass in type(node).__mro__:
            slots.extend(getattr(klass, "__slots__", ()))
        for name in slots:
            try:
                value = getattr(node, name)
            except AttributeError:
                continue
            if isinstance(value, np.random.Generator):
                if value is not rng:
                    setattr(node, name, rng)
                    replaced += 1
                continue
            if isinstance(value, (dict, list, tuple, set, frozenset)):
                visit(value)
                continue
            if value is not None and (
                type(value).__module__ or ""
            ).startswith("repro."):
                stack.append(value)
    return replaced


def spawn_query_view(sampler, rng: np.random.Generator):
    """A private query view of ``sampler``: same frozen state, its own
    RNG stream.

    Prefers the sampler's optional ``spawn_query_rng(rng)`` hook; falls
    back to a deep copy with every reachable query generator rebound to
    ``rng``.  The original sampler — and its RNG stream — is never
    touched, so spawning views does not perturb the locked-mode (or
    direct-engine) coin sequence.

    The view is for *queries only*: ingesting into it would advance a
    replaced RNG stream and desynchronize any shared-randomness
    structure the family maintains (it would also mutate state the
    other views believe frozen).
    """
    if has_query_rng_hook(sampler):
        return sampler.spawn_query_rng(rng)
    view = copy.deepcopy(sampler)
    rebind_query_rngs(view, rng)
    return view
