"""The :class:`Snapshot` envelope — versioned, kind-tagged checkpoints.

PR 1's bytes format serialized each sampler's raw snapshot tree, leaving
the ``kind`` tag and any versioning buried inside per-family payload
conventions.  The envelope lifts both to a single outer layer every
family shares::

    {"__snapshot__": <envelope version>, "kind": <registry kind tag>,
     "payload": <the sampler's snapshot tree>}

serialized through the same tree codec (:mod:`repro.lifecycle.codec`),
so an enveloped buffer is still a plain ``RPRS`` state buffer — readers
that only know the codec can still open it, and legacy buffers written
before the envelope (no ``__snapshot__`` marker) still load: the whole
tree is treated as the payload.

Versioning rules:

* ``__snapshot__`` is the *envelope* version; it bumps only when the
  envelope layout itself changes.  Unknown versions fail loudly.
* Payload compatibility is the sampler's own job: every ``restore``
  validates the payload's ``kind`` tag and its construction fingerprint
  (measure name, p, horizon, …) and raises on mismatch, so a buffer
  restored into the wrong sampler fails before any state is touched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lifecycle.codec import state_from_bytes, state_to_bytes

__all__ = ["ENVELOPE_VERSION", "Snapshot"]

ENVELOPE_VERSION = 1


@dataclass(frozen=True)
class Snapshot:
    """A kind-tagged, versioned sampler checkpoint.

    ``kind`` is the snapshot's registry tag (taken from the payload's
    ``kind`` key), ``payload`` the sampler's plain snapshot tree, and
    ``version`` the envelope version it was written with (0 marks a
    legacy pre-envelope buffer).
    """

    kind: str
    payload: dict = field(repr=False)
    version: int = ENVELOPE_VERSION

    @classmethod
    def capture(cls, sampler) -> "Snapshot":
        """Envelope ``sampler.snapshot()``."""
        payload = sampler.snapshot()
        if not isinstance(payload, dict):
            raise TypeError(
                f"snapshot must be a dict, got {type(payload).__name__}"
            )
        return cls(str(payload.get("kind", type(sampler).__name__)), payload)

    def restore_into(self, sampler) -> None:
        """``sampler.restore(payload)`` (the sampler validates the kind
        tag and its construction fingerprint)."""
        sampler.restore(self.payload)

    def to_bytes(self) -> bytes:
        return state_to_bytes(
            {"__snapshot__": self.version, "kind": self.kind, "payload": self.payload}
        )

    @classmethod
    def from_bytes(cls, buf: bytes) -> "Snapshot":
        """Decode an enveloped buffer; a legacy pre-envelope buffer
        (PR 1/2 ``save_state`` output) loads with ``version=0`` and the
        whole tree as payload."""
        tree = state_from_bytes(buf)
        if "__snapshot__" not in tree:
            return cls(str(tree.get("kind", "")), tree, version=0)
        version = int(tree["__snapshot__"])
        if version != ENVELOPE_VERSION:
            raise ValueError(f"unsupported snapshot envelope version {version}")
        return cls(str(tree["kind"]), tree["payload"], version=version)
