"""The unified sampler lifecycle: one protocol for every family.

Every sampler in the repo — whole-stream G/Lp/F0, count-based sliding
windows, time-based windows, window banks — shares one implicit
lifecycle: *ingest, checkpoint, merge, answer*.  :class:`StreamSampler`
makes that lifecycle explicit so the engine can drive any family
generically, without per-kind dispatch:

* ``update(item, ...)`` / ``update_batch(items, ...)`` — scalar and
  vectorized ingestion (timestamped families take an extra
  timestamp/timestamps argument);
* ``snapshot() -> dict`` / ``restore(state)`` — checkpoint as a plain
  tree (see :mod:`repro.lifecycle.codec`) and overwrite state in place;
* ``merge(other)`` — absorb a sampler fed a disjoint universe
  partition; families for which merging is mathematically undefined
  (count-based windows: "the last W updates" of a sharded stream has
  no global arrival order) implement the hook but raise ``ValueError``,
  and declare ``mergeable=False`` in the engine registry;
* ``compact(now=None) -> int`` — drop state that can never again
  influence an answer (expired window generations, stale timestamp
  tables), returning the approximate bytes reclaimed.  Passing ``now``
  *advances the sampler's clock watermark*: the sampler promises every
  future update arrives at ``ts ≥ now``, which is exactly what makes
  dropping expired state sound.  Samplers without a wall clock return 0;
* ``watermark() -> float | None`` — the sampler's clock high-water mark
  (the newest timestamp it has observed, via ingestion or ``compact``);
  ``None`` for families with no wall clock.  The sharded engine compares
  shard watermarks at merge time and surfaces skew beyond a tolerance
  instead of silently shifting window membership;
* ``approx_size_bytes() -> int`` — deterministic estimate of resident
  state (see :mod:`repro.lifecycle.memory`), the engine's memory
  accounting hook.

Two *query fast-path* conventions ride on the protocol without being
part of it (the engine probes them structurally):

* ``sample_many(k, **kwargs)`` — optional batched query hook; when
  present it must consume randomness exactly as ``k`` sequential
  ``sample`` calls would (the engine delegates batched queries to it,
  and falls back to a ``sample`` loop otherwise);
* ``compact`` must return a *positive* byte count whenever it changed
  any state that can influence an answer — the engine's merged-view
  cache keys invalidation on that signal;
* ``spawn_query_rng(rng) -> sampler`` — optional *query-view* hook for
  the serving layer (:mod:`repro.serving`): return a query-only clone
  of this sampler sharing (a copy of) its frozen state but drawing all
  query coins from ``rng`` instead of the live stream.  Concurrent
  readers each get their own view, making the query plane lock-free;
  the clone must answer exactly as the original would under a fresh
  independent coin sequence, and building it must not advance the
  original's RNG.  Families without the hook are served through the
  generic deep-copy-and-rebind fallback in :mod:`repro.lifecycle.rng`
  (:func:`~repro.lifecycle.rng.spawn_query_view`), which covers every
  sampler whose query randomness flows through ``np.random.Generator``
  attributes — implement the hook only when that structural walk is
  wrong or wasteful for your family.

:class:`MergeableState` is the original three-hook checkpoint protocol
(PR 1); it remains as the minimal contract :func:`supports_merge`
checks, and :class:`StreamSampler` extends it.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

__all__ = [
    "MergeableState",
    "StreamSampler",
    "WatermarkSkewError",
    "StaticLifecycleMixin",
    "supports_merge",
    "conforms",
    "missing_hooks",
]

#: The full lifecycle surface, in protocol order.
LIFECYCLE_HOOKS = (
    "update",
    "update_batch",
    "snapshot",
    "restore",
    "merge",
    "compact",
    "watermark",
    "approx_size_bytes",
)


@runtime_checkable
class MergeableState(Protocol):
    """Checkpointable, shippable, mergeable sampler state (the PR 1
    three-hook contract)."""

    def snapshot(self) -> dict: ...

    def restore(self, state: dict) -> None: ...

    def merge(self, other) -> None: ...


@runtime_checkable
class StreamSampler(MergeableState, Protocol):
    """The full sampler lifecycle: ingest, checkpoint, merge, compact,
    account.  See the module docstring for per-hook semantics."""

    def update(self, item, *args) -> None: ...

    def update_batch(self, items, *args) -> None: ...

    def compact(self, now: float | None = None) -> int: ...

    def watermark(self) -> float | None: ...

    def approx_size_bytes(self) -> int: ...


class WatermarkSkewError(ValueError):
    """Shard clocks disagree beyond the configured tolerance.

    Raised by :class:`repro.engine.ShardedSamplerEngine` when merging
    samplers whose ``watermark()`` values span more than the engine's
    ``max_watermark_skew`` — merging them anyway would silently shift
    window membership (an update near the boundary is "active" on one
    shard's clock and expired on another's).
    """


class StaticLifecycleMixin:
    """Default ``compact``/``watermark`` for samplers with no wall clock.

    Whole-stream and count-windowed samplers have nothing to expire —
    their state is already bounded by construction — and no clock to
    skew, so ``compact`` is a no-op and ``watermark`` is ``None``.
    """

    __slots__ = ()

    def compact(self, now: float | None = None) -> int:
        return 0

    def watermark(self) -> float | None:
        return None


def supports_merge(sampler) -> bool:
    """Whether the sampler implements the minimal MergeableState
    protocol (structurally — a ``merge`` hook that always raises still
    counts; the engine registry's ``mergeable`` trait records which
    kinds merge *meaningfully*)."""
    return isinstance(sampler, MergeableState)


def conforms(sampler) -> bool:
    """Whether the sampler implements the full StreamSampler lifecycle."""
    return isinstance(sampler, StreamSampler)


def missing_hooks(sampler) -> list[str]:
    """The lifecycle hooks the sampler does not implement (empty when it
    conforms) — for actionable conformance errors."""
    return [
        hook for hook in LIFECYCLE_HOOKS
        if not callable(getattr(sampler, hook, None))
    ]


def has_query_rng_hook(sampler) -> bool:
    """Whether the sampler implements the optional ``spawn_query_rng``
    query-view hook (see the module docstring); families without it are
    served through :func:`repro.lifecycle.rng.spawn_query_view`'s
    generic fallback."""
    return callable(getattr(sampler, "spawn_query_rng", None))
