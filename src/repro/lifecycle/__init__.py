"""repro.lifecycle — the unified sampler lifecycle.

One protocol, one snapshot envelope, one memory model for every sampler
family in the repo:

* :mod:`repro.lifecycle.protocol` — :class:`StreamSampler` (ingest /
  checkpoint / merge / compact / account), the legacy
  :class:`MergeableState` subset, conformance helpers, and
  :class:`WatermarkSkewError`;
* :mod:`repro.lifecycle.codec` — the plain-tree ↔ bytes codec
  (no-pickle, self-describing);
* :mod:`repro.lifecycle.envelope` — the versioned, kind-tagged
  :class:`Snapshot` envelope the engine ships;
* :mod:`repro.lifecycle.memory` — the deterministic size model behind
  ``approx_size_bytes()``;
* :mod:`repro.lifecycle.rng` — per-reader query RNG streams: spawn
  lock-free query views of a retained fold (the serving layer's
  concurrency primitive, with the optional ``spawn_query_rng`` hook).

The engine (:mod:`repro.engine`) is written against this surface only:
adding a sampler family means implementing :class:`StreamSampler` and
registering a kind — no engine changes.
"""

from repro.lifecycle.codec import state_from_bytes, state_to_bytes
from repro.lifecycle.envelope import ENVELOPE_VERSION, Snapshot
from repro.lifecycle.memory import (
    INSTANCE_BYTES,
    RNG_STATE_BYTES,
    mapping_bytes,
    ndarray_bytes,
    sequence_bytes,
    set_bytes,
)
from repro.lifecycle.protocol import (
    LIFECYCLE_HOOKS,
    MergeableState,
    StaticLifecycleMixin,
    StreamSampler,
    WatermarkSkewError,
    conforms,
    has_query_rng_hook,
    missing_hooks,
    supports_merge,
)
from repro.lifecycle.rng import (
    derive_reader_rng,
    rebind_query_rngs,
    spawn_query_view,
)

__all__ = [
    "LIFECYCLE_HOOKS",
    "MergeableState",
    "StaticLifecycleMixin",
    "StreamSampler",
    "WatermarkSkewError",
    "conforms",
    "has_query_rng_hook",
    "missing_hooks",
    "supports_merge",
    "derive_reader_rng",
    "rebind_query_rngs",
    "spawn_query_view",
    "state_from_bytes",
    "state_to_bytes",
    "ENVELOPE_VERSION",
    "Snapshot",
    "INSTANCE_BYTES",
    "RNG_STATE_BYTES",
    "mapping_bytes",
    "ndarray_bytes",
    "sequence_bytes",
    "set_bytes",
]
