"""WindowBank — one ingest path, a ladder of time-window samplers.

Production dashboards ask the same questions at several horizons at once
("uniques and trending items over the last 1m / 5m / 1h").  A
:class:`WindowBank` owns one time-window sampler family per ladder rung
and feeds them all from a single batched ingest call:

* a G- or Lp-sampler per horizon (trending items, moment-weighted
  sampling) — exactly one of ``measure`` / ``p`` selects the family;
* optionally an F0 sampler per horizon (uniform over active items) when
  the universe size ``n`` is given.

When the ladder *nests* (every horizon is an integer multiple of the
finest), all samplers' generation boundaries are multiples of the finest
horizon, so the bank splits each incoming chunk **once** at the finest
resolution's bucket crossings and hands every sampler pre-segmented
spans — the boundary scan is shared across the ladder instead of
repeated per sampler.  Non-nesting ladders fall back to per-sampler
segmentation, which is still a single vectorized pass each.

All member RNG streams derive deterministically from one root seed, so
batched ingestion is bitwise identical to the scalar loop and snapshots
restore exactly.  The bank is itself a :class:`MergeableState`: shard
banks over a disjoint universe partition merge member-wise (pass a
shared ``f0_seed`` so the F0 members' random subsets line up across
shards — the bank's analogue of the engine's shared-seed F0 rule).
"""

from __future__ import annotations

import copy

import numpy as np

from repro.core.measures import Measure
from repro.core.types import SampleResult, as_timed_arrays
from repro.lifecycle.memory import INSTANCE_BYTES
from repro.obs.catalog import CATALOG_HELP
from repro.obs.metrics import current_registry
from repro.windows.chunking import as_timed_chunk, bucket_cuts
from repro.windows.f0 import TimeWindowF0Sampler
from repro.windows.time_window import (
    TimeWindowGSampler,
    TimeWindowLpSampler,
    _derive_root,
)

__all__ = ["WindowBank"]


def _ladder_nests(resolutions: tuple[float, ...]) -> bool:
    """Whether every horizon is an integer multiple of the finest."""
    finest = resolutions[0]
    for horizon in resolutions[1:]:
        ratio = horizon / finest
        if abs(ratio - round(ratio)) > 1e-9:
            return False
    return True


class WindowBank:
    """A bank of time-window samplers over a resolution ladder.

    Parameters
    ----------
    resolutions:
        Window horizons in seconds, e.g. ``(60, 300, 3600)``; sorted
        ascending internally.
    measure / p:
        Exactly one selects the pool-sampler family per rung: a
        :class:`~repro.core.measures.Measure` builds
        :class:`TimeWindowGSampler` rungs, a float ``p ≥ 1`` builds
        :class:`TimeWindowLpSampler` rungs.
    n:
        Universe size; when given, each rung also gets a
        :class:`TimeWindowF0Sampler` ("uniform over active items").
    instances:
        Instances per pool sampler (defaults per sampler otherwise).
    expected_rate:
        Expected arrivals per second; sizes each rung's default
        instance count at its own expected window occupancy.
    f0_seed:
        Separate seed for the F0 members' random subsets.  Give every
        shard of a sharded deployment the *same* ``f0_seed`` (the
        pool members still want independent per-shard ``seed``\\ s).
    """

    def __init__(
        self,
        resolutions,
        *,
        measure: Measure | None = None,
        p: float | None = None,
        n: int | None = None,
        instances: int | None = None,
        delta: float = 0.05,
        expected_rate: float | None = None,
        seed: int | np.random.Generator | None = None,
        f0_seed: int | None = None,
    ) -> None:
        horizons = tuple(sorted(float(h) for h in resolutions))
        if not horizons:
            raise ValueError("need at least one resolution")
        if any(h <= 0 for h in horizons):
            raise ValueError("resolutions must be positive")
        if len(set(horizons)) != len(horizons):
            raise ValueError(f"duplicate resolutions in {horizons}")
        if (measure is None) == (p is None):
            raise ValueError("give exactly one of measure= or p=")
        if n is None and f0_seed is not None:
            raise ValueError("f0_seed needs n= (no F0 members otherwise)")
        self._resolutions = horizons
        self._nests = _ladder_nests(horizons)
        self._n = n
        self._root = _derive_root(seed)
        self._f0_seed = f0_seed
        self._pool_samplers: dict[float, TimeWindowGSampler | TimeWindowLpSampler] = {}
        self._f0_samplers: dict[float, TimeWindowF0Sampler] = {}
        for i, horizon in enumerate(horizons):
            expected = (
                max(1, round(expected_rate * horizon))
                if expected_rate is not None
                else None
            )
            member_seed = np.random.default_rng([self._root, 2, i])
            if measure is not None:
                self._pool_samplers[horizon] = TimeWindowGSampler(
                    measure,
                    horizon,
                    instances=instances,
                    delta=delta,
                    expected_window_count=expected,
                    seed=member_seed,
                )
            else:
                self._pool_samplers[horizon] = TimeWindowLpSampler(
                    p,
                    horizon,
                    instances=instances,
                    delta=delta,
                    expected_window_count=expected,
                    seed=member_seed,
                )
            if n is not None:
                f0_member_seed = (
                    np.random.default_rng([int(f0_seed) % 2**63, 3, i])
                    if f0_seed is not None
                    else np.random.default_rng([self._root, 3, i])
                )
                self._f0_samplers[horizon] = TimeWindowF0Sampler(
                    n, horizon, delta=delta, seed=f0_member_seed
                )
        # Per-rung ingest/expiry counters, resolved from the *current*
        # registry at construction time — a serving deployment installs
        # its own registry while building the engine, so a served bank's
        # rung counters land there; standalone banks report to the
        # process-global default.  The children are shared no-ops when
        # the registry is disabled, and survive deep copies by identity
        # (query views / folds report into the same counters).
        registry = current_registry()
        ingested = registry.counter(
            "repro_windows_ingested_items_total",
            CATALOG_HELP["repro_windows_ingested_items_total"],
            labels=("resolution",),
        )
        expired = registry.counter(
            "repro_windows_expired_reclaimed_bytes_total",
            CATALOG_HELP["repro_windows_expired_reclaimed_bytes_total"],
            labels=("resolution",),
        )
        self._m_ingested = {
            h: ingested.labels(resolution=f"{h:g}") for h in horizons
        }
        self._m_expired = {
            h: expired.labels(resolution=f"{h:g}") for h in horizons
        }

    # -- properties ---------------------------------------------------------
    @property
    def resolutions(self) -> tuple[float, ...]:
        """The ladder horizons, ascending."""
        return self._resolutions

    @property
    def nests(self) -> bool:
        """Whether the ladder shares generation boundaries (every horizon
        a multiple of the finest)."""
        return self._nests

    @property
    def has_f0(self) -> bool:
        return bool(self._f0_samplers)

    @property
    def position(self) -> int:
        """Total updates ingested."""
        finest = self._pool_samplers[self._resolutions[0]]
        return finest.position

    @property
    def now(self) -> float:
        """The bank's clock watermark (all members share one ingest
        path, so one clock)."""
        finest = self._pool_samplers[self._resolutions[0]]
        return finest.now

    def watermark(self) -> float | None:
        """The shared clock watermark (``None`` while pristine)."""
        return self._pool_samplers[self._resolutions[0]].watermark()

    def _members(self):
        yield from self._pool_samplers.values()
        yield from self._f0_samplers.values()

    def approx_size_bytes(self) -> int:
        return INSTANCE_BYTES + sum(
            member.approx_size_bytes() for member in self._members()
        )

    def compact(self, now: float | None = None) -> int:
        """Fan ``compact(now)`` out to every rung (pool and F0 members);
        returns the total approximate bytes reclaimed, attributed to
        each rung's resolution in the expiry counter.  Passing ``now``
        advances the whole bank's clock watermark."""
        total = 0
        for horizon in self._resolutions:
            freed = self._pool_samplers[horizon].compact(now)
            f0 = self._f0_samplers.get(horizon)
            if f0 is not None:
                freed += f0.compact(now)
            if freed:
                self._m_expired[horizon].add(freed)
            total += freed
        return total

    def pool_sampler(self, horizon: float):
        """The G/Lp member at ``horizon`` (exact match required)."""
        try:
            return self._pool_samplers[float(horizon)]
        except KeyError:
            raise ValueError(
                f"no rung at horizon {horizon!r}; ladder: {self._resolutions}"
            ) from None

    def f0_sampler(self, horizon: float) -> TimeWindowF0Sampler:
        """The F0 member at ``horizon`` (requires construction with n=)."""
        if not self._f0_samplers:
            raise ValueError("bank was built without n=, it has no F0 members")
        try:
            return self._f0_samplers[float(horizon)]
        except KeyError:
            raise ValueError(
                f"no rung at horizon {horizon!r}; ladder: {self._resolutions}"
            ) from None

    # -- ingestion ----------------------------------------------------------
    def update(self, item: int, timestamp: float) -> None:
        # Validate before touching ANY member: a rejected update must
        # leave the bank consistent (pool members have no universe check
        # of their own, so the F0 members' range error would otherwise
        # fire only after the pools already ingested the item).
        if self._n is not None and not 0 <= item < self._n:
            raise ValueError(f"item {item} outside universe [0, {self._n})")
        for sampler in self._pool_samplers.values():
            sampler.update(item, timestamp)
        for sampler in self._f0_samplers.values():
            sampler.update(item, timestamp)
        self._count_ingested(1)

    def _count_ingested(self, n: int) -> None:
        # Every rung sees the full stream, so each rung's counter
        # advances by the whole chunk.
        for child in self._m_ingested.values():
            child.add(n)

    def extend(self, pairs) -> None:
        """Ingest an iterable of ``(item, timestamp)`` pairs; delegates
        to :meth:`update_batch` (bitwise identical — all member RNG
        streams are per-bucket, so batching reorders no randomness)."""
        self.update_batch(*as_timed_arrays(pairs))

    def update_batch(self, items, timestamps) -> None:
        """One vectorized pass feeding every rung.

        With a nesting ladder the chunk is segmented once at the finest
        horizon's bucket boundaries (a superset of every rung's
        boundaries), and each pool sampler consumes pre-split spans; F0
        members take the whole chunk (they have no generations).

        Validation (shapes, universe membership, clock monotonicity)
        happens before any member is touched, so a rejected chunk
        leaves the whole bank unchanged and retryable.
        """
        arr, ts = as_timed_chunk(items, timestamps, self.now, n=self._n)
        if arr.size == 0:
            return
        if not self._nests:
            for sampler in self._pool_samplers.values():
                sampler.update_batch(arr, ts)
        else:
            __, cuts = bucket_cuts(ts, self._resolutions[0])
            spans = [
                (arr[a:b], ts[a:b]) for a, b in zip(cuts[:-1], cuts[1:]) if a != b
            ]
            for horizon, sampler in self._pool_samplers.items():
                for seg_items, seg_ts in spans:
                    # Nesting makes every rung's buckets constant per
                    # span *mathematically*; floating-point floor
                    # division can still disagree at a boundary, so
                    # verify on the span's (monotone) endpoints and
                    # fall back to the sampler's own splitting when a
                    # span straddles — keeping the batched path bitwise
                    # equal to the scalar loop unconditionally.
                    first = int(seg_ts[0] // horizon)
                    last = int(seg_ts[-1] // horizon)
                    if first == last:
                        sampler._ingest_span(seg_items, seg_ts, first)
                    else:
                        sampler.update_batch(seg_items, seg_ts)
        for sampler in self._f0_samplers.values():
            sampler.update_batch(arr, ts)
        self._count_ingested(int(arr.size))

    # -- queries ------------------------------------------------------------
    def sample(self, horizon: float, now: float | None = None) -> SampleResult:
        """One truly perfect G/Lp sample over the rung's active window."""
        return self.pool_sampler(horizon).sample(now=now)

    def sample_distinct(self, horizon: float, now: float | None = None) -> SampleResult:
        """One uniform sample of the rung's active distinct items."""
        return self.f0_sampler(horizon).sample(now=now)

    def sample_all(self, now: float | None = None) -> dict[float, SampleResult]:
        """One G/Lp sample per rung, finest first."""
        return {
            horizon: self.sample(horizon, now=now)
            for horizon in self._resolutions
        }

    def sample_many(
        self, k: int, horizon: float, now: float | None = None
    ) -> list[SampleResult]:
        """``k`` independent G/Lp samples from the rung at ``horizon``
        with one batched coin block (bitwise identical to ``k``
        back-to-back :meth:`sample` calls at the same ``now``)."""
        return self.pool_sampler(horizon).sample_many(k, now=now)

    def sample_distinct_many(
        self, k: int, horizon: float, now: float | None = None
    ) -> list[SampleResult]:
        """``k`` independent uniform samples of the rung's active
        distinct items with one batched index draw."""
        return self.f0_sampler(horizon).sample_many(k, now=now)

    def spawn_query_rng(self, rng: np.random.Generator) -> "WindowBank":
        """The optional lifecycle query-view hook (see
        :mod:`repro.lifecycle.rng`): a query-only clone of the bank
        whose members each draw from their *own* child stream derived
        from ``rng``.

        Distinct per-member streams mirror the live bank's RNG layout
        (one stream per rung), so a view's per-rung query sequences
        stay independent of each other — the generic fallback would
        collapse them onto one shared stream, which is distributionally
        fine but couples the rungs' coin consumption.  This bank's own
        streams are never touched.
        """
        view = copy.deepcopy(self)
        members = list(view._pool_samplers.values()) + list(
            view._f0_samplers.values()
        )
        for member, seed in zip(members, rng.integers(2**63, size=len(members))):
            # Every time-window member draws query coins from its own
            # `_rng` (generation pools carry ingest-only streams the
            # query path never touches).
            member._rng = np.random.default_rng(int(seed))
        return view

    # -- mergeable state ----------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "kind": "window_bank",
            "resolutions": list(self._resolutions),
            "root": self._root,
            "pool": {
                str(i): self._pool_samplers[h].snapshot()
                for i, h in enumerate(self._resolutions)
            },
            "f0": {
                str(i): self._f0_samplers[h].snapshot()
                for i, h in enumerate(self._resolutions)
                if h in self._f0_samplers
            },
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "window_bank":
            raise ValueError(f"not a window_bank snapshot: {state.get('kind')!r}")
        theirs = tuple(float(h) for h in state["resolutions"])
        if theirs != self._resolutions:
            raise ValueError(
                f"snapshot ladder {theirs} differs from bank's {self._resolutions}"
            )
        if len(state["f0"]) != len(self._f0_samplers):
            raise ValueError(
                "snapshot and bank disagree on F0 members (was the bank "
                "built with the same n=?)"
            )
        self._root = int(state["root"])
        for i, horizon in enumerate(self._resolutions):
            self._pool_samplers[horizon].restore(state["pool"][str(i)])
            if horizon in self._f0_samplers:
                self._f0_samplers[horizon].restore(state["f0"][str(i)])

    def merge(self, other: "WindowBank") -> None:
        """Member-wise merge of two banks fed disjoint universe
        partitions over the same wall clock."""
        if not isinstance(other, WindowBank):
            raise TypeError(f"cannot merge WindowBank with {type(other).__name__}")
        if other._resolutions != self._resolutions:
            raise ValueError(
                f"ladders differ: {self._resolutions} vs {other._resolutions}"
            )
        if set(other._f0_samplers) != set(self._f0_samplers):
            raise ValueError("banks disagree on F0 members")
        for horizon in self._resolutions:
            self._pool_samplers[horizon].merge(other._pool_samplers[horizon])
            if horizon in self._f0_samplers:
                self._f0_samplers[horizon].merge(other._f0_samplers[horizon])
