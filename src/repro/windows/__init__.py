"""repro.windows — truly perfect sampling over *time-based* sliding
windows.

:mod:`repro.sliding_window` answers "the last W updates";
this subsystem answers "the last H seconds", the form production
traffic actually asks in, at several resolutions at once:

* :class:`TimeWindowGSampler` / :class:`TimeWindowLpSampler` — the
  two-generation checkpoint scheme of Algorithm 4 generalized from
  update counts to wall-clock timestamps (generations at absolute
  ``k·H`` boundaries; the older kept generation always covers the
  active window), with per-bucket RNG streams so batched ingestion is
  bitwise identical to scalar;
* :class:`TimeWindowF0Sampler` — Corollary 5.3's windowed F0 sampler
  with timestamps in place of positions (LRU + eviction certificate,
  random-subset S-regime);
* :class:`WindowBank` — one batched ingest path fanned out to a
  resolution ladder {1m, 5m, 1h, …}, sharing the boundary scan when
  the ladder nests.

All of them implement the engine's :class:`MergeableState` protocol
(snapshot / restore / merge), so they serve behind
:class:`repro.engine.ShardedSamplerEngine` with exact merged sampling —
time windows merge across shards because wall-clock boundaries are
absolute, where count windows would need a global arrival order.

**Time-vs-count semantics.**  A count window always holds exactly ``W``
updates; a time window holds however many arrived in ``(now − H, now]``
— bursts raise the occupancy, quiet spells lower it.  Truly perfect
exactness is unconditional either way; what traffic shape moves is only
the FAIL rate (instance counts are sized for an *expected* occupancy).
"""

from repro.windows.bank import WindowBank
from repro.windows.f0 import TimeWindowF0Sampler
from repro.windows.time_window import TimeWindowGSampler, TimeWindowLpSampler

__all__ = [
    "TimeWindowGSampler",
    "TimeWindowLpSampler",
    "TimeWindowF0Sampler",
    "WindowBank",
]
