"""Truly perfect F0 sampling over time-based sliding windows.

The wall-clock analogue of Corollary 5.3
(:class:`repro.sliding_window.SlidingWindowF0Sampler`): every
"position" in the count-based certificate becomes an arrival timestamp.

* An LRU table of the ≤ √n+1 most-recently-seen items, keyed by
  last-occurrence *time*.  If every eviction ever performed removed an
  item whose recorded last occurrence has since left the window
  (``evict_horizon ≤ now − H``), the pruned table *is* the window's
  exact support and sampling is uniform over it.  Otherwise some
  eviction happened while more than √n distinct items were active —
  certifying the window's F0 exceeded √n at that moment — and the
  S-regime is the correct branch.
* ``S`` is the usual random 2√n-subset; a member is *alive* when its
  last-occurrence timestamp lies inside the window.  Uniformity over
  the window support follows from the permutation symmetry of ``S``
  exactly as in the whole-stream case.

Updates consume no randomness, so batched ingestion is bitwise
identical to the scalar loop.  Merging shards of a disjoint universe
partition over a shared wall clock is exact when the shards share their
random subsets (construct them from the same seed — the engine's
``SHARD_SHARED_SEED_KINDS`` rule): last-occurrence tables union
disjointly, and the merged LRU re-evicts down to capacity, recording
any displaced timestamp in the eviction horizon so the certificate
stays sound.
"""

from __future__ import annotations

import math
from collections import OrderedDict

import numpy as np

from repro.core.rejection import uniform_candidate_many, uniform_candidate_sample
from repro.core.types import SampleResult, as_timed_arrays
from repro.lifecycle.memory import (
    INSTANCE_BYTES,
    RNG_STATE_BYTES,
    mapping_bytes,
    set_bytes,
)
from repro.sliding_window.f0_window import chunk_last_occurrences, lru_fold_chunk
from repro.windows.chunking import as_timed_chunk

__all__ = ["TimeWindowF0Sampler"]


class _WindowCopy:
    """One S-copy: last-seen timestamps for members of a random subset."""

    __slots__ = ("s_set", "last_seen")

    def __init__(self, s_set: set[int]) -> None:
        self.s_set = s_set
        self.last_seen: dict[int, float] = {}


class TimeWindowF0Sampler:
    """Truly perfect F0 sampler over the last ``horizon`` seconds.

    Parameters
    ----------
    n:
        Universe size.
    horizon:
        Window length in seconds.
    delta:
        FAIL probability; drives the number of independent S-copies.
    """

    def __init__(
        self,
        n: int,
        horizon: float,
        delta: float = 0.05,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if n < 1:
            raise ValueError("n must be ≥ 1")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        self._n = n
        self._horizon = float(horizon)
        self._delta = delta
        self._threshold = max(1, math.isqrt(n) + (0 if math.isqrt(n) ** 2 == n else 1))
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        self._recent: OrderedDict[int, float] = OrderedDict()
        self._evict_horizon = -math.inf  # newest last-occurrence ever evicted
        copies = max(1, math.ceil(math.log(1.0 / delta) / 2.0))
        s_size = min(2 * self._threshold, n)
        self._copies = [
            _WindowCopy(
                set(int(x) for x in self._rng.choice(n, size=s_size, replace=False))
            )
            for __ in range(copies)
        ]
        self._t = 0
        # Clock watermark vs newest ingested update — see
        # repro.windows.time_window for the distinction.
        self._now = 0.0
        self._last_arrival = -math.inf

    @property
    def n(self) -> int:
        return self._n

    @property
    def threshold(self) -> int:
        return self._threshold

    @property
    def horizon(self) -> float:
        return self._horizon

    @property
    def position(self) -> int:
        return self._t

    @property
    def now(self) -> float:
        return self._now

    def watermark(self) -> float | None:
        """The clock watermark (``None`` while pristine)."""
        if self._t == 0 and self._now == 0.0:
            return None
        return self._now

    def approx_size_bytes(self) -> int:
        return (
            INSTANCE_BYTES
            + RNG_STATE_BYTES
            + mapping_bytes(len(self._recent))
            + sum(
                INSTANCE_BYTES
                + set_bytes(len(copy.s_set))
                + mapping_bytes(len(copy.last_seen))
                for copy in self._copies
            )
        )

    def compact(self, now: float | None = None) -> int:
        """Drop timestamp entries that can never be active again;
        returns the approximate bytes reclaimed.

        Passing ``now`` advances the clock watermark first.  Entries in
        the LRU table and the S-copies whose last occurrence lies at or
        before ``now − H`` fail every future window's activity test, so
        removing them changes no answer.  The eviction certificate stays
        sound: compaction removes only provably-expired occurrences, so
        it never hides active support and never touches the eviction
        horizon.
        """
        if now is not None:
            now = float(now)
            if now > self._now:
                self._now = now
        window_start = self._now - self._horizon
        dropped = 0
        stale = [i for i, when in self._recent.items() if when <= window_start]
        for item in stale:
            del self._recent[item]
        dropped += len(stale)
        for copy in self._copies:
            stale = [
                i for i, when in copy.last_seen.items() if when <= window_start
            ]
            for item in stale:
                del copy.last_seen[item]
            dropped += len(stale)
        return mapping_bytes(dropped) - mapping_bytes(0) if dropped else 0

    def update(self, item: int, timestamp: float) -> None:
        ts = float(timestamp)
        if not 0 <= item < self._n:
            raise ValueError(f"item {item} outside universe [0, {self._n})")
        if ts < 0:
            raise ValueError(f"timestamps must be non-negative, got {ts}")
        if ts < self._now:
            raise ValueError(
                f"timestamps must be non-decreasing: {ts} after {self._now}"
            )
        self._t += 1
        self._now = ts
        self._last_arrival = ts
        recent = self._recent
        if item in recent:
            del recent[item]
        recent[item] = ts
        if len(recent) > self._threshold + 1:
            __, evicted_ts = recent.popitem(last=False)
            self._evict_horizon = max(self._evict_horizon, evicted_ts)
        for copy in self._copies:
            if item in copy.s_set:
                copy.last_seen[item] = ts

    def extend(self, pairs) -> None:
        """Ingest an iterable of ``(item, timestamp)`` pairs; delegates
        to :meth:`update_batch` (bitwise identical — updates consume no
        randomness)."""
        self.update_batch(*as_timed_arrays(pairs))

    def update_batch(self, items, timestamps) -> None:
        """Chunk ingestion, bitwise identical to the scalar loop
        (updates consume no randomness).

        The LRU recency table folds through the vectorized
        :func:`~repro.sliding_window.f0_window.lru_fold_chunk`
        eviction-horizon kernel (no per-item replay), and the per-copy
        random-subset bookkeeping collapses to one last-occurrence write
        per distinct chunk item.
        """
        arr, ts = as_timed_chunk(items, timestamps, self._now, n=self._n)
        if arr.size == 0:
            return
        uniq, last_pos = chunk_last_occurrences(arr)
        self._recent, self._evict_horizon = lru_fold_chunk(
            self._recent,
            self._threshold + 1,
            uniq,
            last_pos,
            ts.tolist(),
            self._evict_horizon,
        )
        self._t += int(arr.size)
        self._now = float(ts[-1])
        self._last_arrival = float(ts[-1])
        for item, pos in zip(uniq.tolist(), last_pos.tolist()):
            when = float(ts[pos])
            for copy in self._copies:
                if item in copy.s_set:
                    copy.last_seen[item] = when

    def _active_recent(self, window_start: float) -> list[int]:
        return [i for i, when in self._recent.items() if when > window_start]

    def _support_candidates(
        self, now: float | None
    ) -> tuple[str, list[int] | None]:
        """The state-determined part of :meth:`sample`: the answering
        regime and its candidate items (``("empty", None)`` for ⊥; an
        empty S-regime list means FAIL).  Consumes no randomness."""
        if self._t == 0:
            return "empty", None
        if now is None:
            now = self._now
        elif float(now) < self._now:
            raise ValueError(
                f"cannot sample at {now}, already ingested up to {self._now}"
            )
        window_start = float(now) - self._horizon
        if self._last_arrival <= window_start:
            # Every ingested update expired: an explicit empty-window
            # answer, not a FAIL a caller might retry.
            return "empty", None
        active = self._active_recent(window_start)
        certificate_ok = self._evict_horizon <= window_start
        if certificate_ok and len(active) <= self._threshold:
            # The LRU provably contains the window's entire support.
            if not active:
                return "empty", None
            return "recent", active
        # Dense regime: the window support exceeds √n (certified either by
        # |active| > threshold or by a live eviction witness).
        for copy in self._copies:
            # Canonical (sorted) iteration: scalar ingest, batched
            # ingest, and a restore each populate last_seen in a
            # different key order; the drawn item must not depend on it.
            alive = [
                s for s, when in sorted(copy.last_seen.items())
                if when > window_start
            ]
            if alive:
                return "S", alive
        return "S", []

    def sample(self, now: float | None = None) -> SampleResult:
        """A uniform sample of the distinct items active in
        ``(now − H, now]``."""
        regime, candidates = self._support_candidates(now)
        return uniform_candidate_sample(
            self._rng,
            regime,
            candidates,
            lambda item: SampleResult.of(item, regime=regime),
        )

    def sample_many(self, k: int, now: float | None = None) -> list[SampleResult]:
        """``k`` independent samples with one regime resolution and one
        batched index draw — bitwise identical to ``k`` back-to-back
        :meth:`sample` calls at the same ``now``."""
        regime, candidates = self._support_candidates(now)
        return uniform_candidate_many(
            self._rng,
            k,
            regime,
            candidates,
            lambda item: SampleResult.of(item, regime=regime),
        )

    def run(self, timed_stream) -> SampleResult:
        self.update_batch(timed_stream.items, timed_stream.timestamps)
        return self.sample()

    # -- mergeable state ----------------------------------------------------
    def snapshot(self) -> dict:
        copies = {}
        for i, copy in enumerate(self._copies):
            s_arr = np.fromiter(sorted(copy.s_set), dtype=np.int64)
            # Canonical (sorted) order: last_seen is a pure mapping, but
            # scalar and batched ingestion insert its keys in different
            # orders — serialization must not leak that.
            seen = sorted(copy.last_seen.items())
            keys = np.fromiter((k for k, __ in seen), dtype=np.int64, count=len(seen))
            vals = np.fromiter((v for __, v in seen), dtype=np.float64, count=len(seen))
            copies[str(i)] = {"s_set": s_arr, "seen_keys": keys, "seen_vals": vals}
        return {
            "kind": "tw_f0",
            "n": self._n,
            "horizon": self._horizon,
            "delta": self._delta,
            "position": self._t,
            "now": self._now,
            "last_arrival": (
                self._last_arrival if math.isfinite(self._last_arrival) else None
            ),
            "evict_horizon": self._evict_horizon,
            # LRU order matters: arrays are stored oldest-first.
            "recent_keys": np.fromiter(self._recent.keys(), dtype=np.int64,
                                       count=len(self._recent)),
            "recent_vals": np.fromiter(self._recent.values(), dtype=np.float64,
                                       count=len(self._recent)),
            "copies": copies,
            "rng_state": self._rng.bit_generator.state,
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "tw_f0":
            raise ValueError(f"not a tw_f0 snapshot: {state.get('kind')!r}")
        if int(state["n"]) != self._n or float(state["horizon"]) != self._horizon:
            raise ValueError(
                f"snapshot is for n={state['n']}, horizon={state['horizon']}; "
                f"sampler has n={self._n}, horizon={self._horizon}"
            )
        self._delta = float(state["delta"])
        self._t = int(state["position"])
        self._now = float(state["now"])
        last_arrival = state["last_arrival"]
        self._last_arrival = (
            -math.inf if last_arrival is None else float(last_arrival)
        )
        self._evict_horizon = float(state["evict_horizon"])
        self._recent = OrderedDict(
            (int(k), float(v))
            for k, v in zip(state["recent_keys"], state["recent_vals"])
        )
        entries = state["copies"]
        copies = []
        for i in range(len(entries)):
            entry = entries[str(i)]
            copy = _WindowCopy(set(int(x) for x in entry["s_set"]))
            copy.last_seen = {
                int(k): float(v)
                for k, v in zip(entry["seen_keys"], entry["seen_vals"])
            }
            copies.append(copy)
        self._copies = copies
        rng = np.random.default_rng()
        rng.bit_generator.state = state["rng_state"]
        self._rng = rng

    def merge(self, other: "TimeWindowF0Sampler") -> None:
        """Absorb a sampler fed a disjoint universe partition over the
        same wall clock.  Requires shared random subsets (same
        construction seed) so the S-copies describe one global S."""
        if not isinstance(other, TimeWindowF0Sampler):
            raise TypeError(
                f"cannot merge TimeWindowF0Sampler with {type(other).__name__}"
            )
        if other._n != self._n or other._horizon != self._horizon:
            raise ValueError(
                f"layout differs: n={self._n}/horizon={self._horizon} vs "
                f"n={other._n}/horizon={other._horizon}"
            )
        for mine, theirs in zip(self._copies, other._copies):
            if mine.s_set != theirs.s_set:
                raise ValueError(
                    "S-subsets differ — shard F0 samplers must be built "
                    "from the same seed to merge"
                )
        # Union the LRU tables (disjoint partition ⇒ disjoint keys; on
        # overlap keep the newer timestamp), re-sort by recency, then
        # evict back down to capacity, recording displaced timestamps.
        union: dict[int, float] = dict(self._recent)
        for item, when in other._recent.items():
            if item not in union or when > union[item]:
                union[item] = when
        ordered = sorted(union.items(), key=lambda kv: kv[1])
        overflow = len(ordered) - (self._threshold + 1)
        if overflow > 0:
            for __, when in ordered[:overflow]:
                self._evict_horizon = max(self._evict_horizon, when)
            ordered = ordered[overflow:]
        self._recent = OrderedDict(ordered)
        self._evict_horizon = max(self._evict_horizon, other._evict_horizon)
        for mine, theirs in zip(self._copies, other._copies):
            for item, when in theirs.last_seen.items():
                if item not in mine.last_seen or when > mine.last_seen[item]:
                    mine.last_seen[item] = when
        self._t += other._t
        self._now = max(self._now, other._now)
        self._last_arrival = max(self._last_arrival, other._last_arrival)
