"""Truly perfect G / Lp sampling over *time-based* sliding windows.

This generalizes the two-generation checkpointing of Algorithm 4
(:class:`repro.sliding_window.SlidingWindowGSampler`) from update counts
to wall-clock timestamps.  Fix a horizon ``H`` (seconds).  Generations of
reservoir pools are checkpointed at every crossing of a time boundary
``k·H`` and the two most recent kept.  Writing ``g = ⌊T/H⌋`` for the
current bucket, the *older* kept generation started at ``(g−1)·H ≤ T−H``
(or at the stream's beginning), so its substream always contains every
update of the active window ``(T−H, T]`` — the covering property the
correctness proof of Theorem 4.1 rests on.  Each instance samples a
uniformly random position of the covering substream; conditioning on the
sampled position still being active (its arrival timestamp exceeds
``T−H``) and applying the usual rejection step yields exactly
``G(f_i)/F_G`` over the *time-window* frequencies, because every
occurrence after an active position is itself active, so forward counts
restricted to active positions telescope exactly as in the whole-stream
proof.

The count-based ``L ≤ 2W`` slack becomes a *rate* statement: under
time-stationary arrivals the covering substream holds at most ~2× the
window's expected update count, so the same factor-2 instance-count
padding absorbs it.  Bursty traffic can widen that ratio — which (as
always with truly perfect samplers) degrades only the FAIL rate, never
the conditional output distribution.

Unlike the count-based samplers, each generation's pool draws from its
*own* RNG stream, keyed deterministically by ``(root seed, bucket
index)`` — so batched ingestion is **bitwise identical** to the scalar
loop (each pool sees the same draws in the same order either way), and
generations created during a merge line up with generations created
locally.

For Lp (``p > 1``) the rejection normalizer must certify the window's
maximum increment.  Each generation carries an *exact* suffix-``‖f‖∞``
tracker over its substream; the covering substream contains the window,
so the tracker's value dominates every window frequency and
``ζ = z^p − (z−1)^p`` at that value is certified — keeping the sampler
truly perfect with deterministic (never estimated) ingredients, the
same exact-inner-estimator substitution
:mod:`repro.sliding_window.lp_window` makes inside its smooth histogram
(a sublinear Misra–Gries aux is a ROADMAP follow-on; any upper bound is
certified, exactness just tightens the FAIL rate).
"""

from __future__ import annotations

import copy
import math

import numpy as np

from repro.core.g_sampler import SamplerPool
from repro.core.measures import Measure
from repro.core.rejection import rejection_many
from repro.core.types import SampleResult, as_timed_arrays
from repro.lifecycle.memory import (
    INSTANCE_BYTES,
    RNG_STATE_BYTES,
    mapping_bytes,
    sequence_bytes,
)
from repro.sliding_window.lp_window import sliding_window_lp_instances
from repro.windows.chunking import as_timed_chunk, bucket_cuts

__all__ = ["TimeWindowGSampler", "TimeWindowLpSampler"]

#: Default expected number of updates per window, used to size instance
#: counts when the caller gives no rate hint; over-estimates are safe
#: (more instances, lower FAIL rate).
DEFAULT_EXPECTED_WINDOW_COUNT = 10_000


def _derive_root(seed) -> int:
    """A non-negative root integer all of the sampler's RNG streams are
    keyed from (recorded in snapshots so restores rebuild identical
    generation streams)."""
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(2**63))
    if seed is None:
        return int(np.random.default_rng().integers(2**63))
    return int(seed) % 2**63


class _SuffixLinf:
    """Exact ``‖f‖∞`` of a generation's substream.

    Chunk-schedule invariant (the mapping depends only on the multiset
    ingested), which is what lets batched bank ingestion stay bitwise
    identical to the scalar loop; a sublinear Misra–Gries substitute
    would trade that and some acceptance probability for space.
    """

    __slots__ = ("_counts", "_max")

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}
        self._max = 0

    def update(self, item: int) -> None:
        c = self._counts.get(item, 0) + 1
        self._counts[item] = c
        if c > self._max:
            self._max = c

    def update_batch(self, items: np.ndarray) -> None:
        uniq, cnts = np.unique(np.asarray(items, dtype=np.int64), return_counts=True)
        counts = self._counts
        for item, cnt in zip(uniq.tolist(), cnts.tolist()):
            c = counts.get(item, 0) + cnt
            counts[item] = c
            if c > self._max:
                self._max = c

    def linf(self) -> int:
        return self._max

    def approx_size_bytes(self) -> int:
        return INSTANCE_BYTES + mapping_bytes(len(self._counts))

    def snapshot(self) -> dict:
        ordered = sorted(self._counts.items())  # canonical serialization
        return {
            "kind": "suffix_linf",
            "max": self._max,
            "keys": np.fromiter((k for k, __ in ordered), dtype=np.int64,
                                count=len(ordered)),
            "vals": np.fromiter((v for __, v in ordered), dtype=np.int64,
                                count=len(ordered)),
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "suffix_linf":
            raise ValueError(f"not a suffix_linf snapshot: {state.get('kind')!r}")
        self._max = int(state["max"])
        self._counts = {
            int(k): int(v) for k, v in zip(state["keys"], state["vals"])
        }

    def merge(self, other: "_SuffixLinf") -> None:
        counts = self._counts
        for item, cnt in other._counts.items():
            counts[item] = counts.get(item, 0) + cnt
        self._max = max(counts.values(), default=0)


class _TimeGeneration:
    """A reservoir pool over all updates since a time-bucket boundary."""

    __slots__ = ("pool", "bucket", "wall", "aux")

    def __init__(self, pool: SamplerPool, bucket: int, instances: int, aux) -> None:
        self.pool = pool
        self.bucket = bucket
        # Wall-clock arrival time of each instance's sampled occurrence;
        # filled at the first update (every instance replaces at
        # position 1).
        self.wall: list[float] = [-math.inf] * instances
        self.aux = aux  # per-substream normalizer state (Lp: Misra-Gries)


class _TimeWindowPoolSampler:
    """Shared machinery of the pool-based time-window samplers."""

    _KIND = ""  # snapshot tag, set by subclasses

    def __init__(
        self,
        horizon: float,
        instances: int,
        delta: float,
        seed,
    ) -> None:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        if instances < 1:
            raise ValueError(f"need at least one instance, got {instances}")
        self._horizon = float(horizon)
        self._instances = int(instances)
        self._delta = delta
        self._root = _derive_root(seed)
        self._rng = np.random.default_rng([self._root, 0])
        self._t = 0
        # Clock watermark: the newest time the sampler has *observed* —
        # through ingestion or through compact(now) — and below which no
        # future update may arrive.  _last_arrival is the newest update
        # actually ingested; the two differ after a quiet-period compact.
        self._now = 0.0
        self._last_arrival = -math.inf
        self._generations: list[_TimeGeneration] = []

    # -- construction hooks -------------------------------------------------
    def _make_aux(self):
        return None

    def _aux_ingest(self, aux, items: np.ndarray) -> None:
        pass

    def _aux_ingest_one(self, aux, item: int) -> None:
        pass

    def _zeta(self, gen: _TimeGeneration) -> float:
        raise NotImplementedError

    def _weight(self, count: int) -> float:
        raise NotImplementedError

    # -- properties ---------------------------------------------------------
    @property
    def horizon(self) -> float:
        """Window length in seconds."""
        return self._horizon

    @property
    def instances(self) -> int:
        return self._instances

    @property
    def position(self) -> int:
        """Total updates ingested."""
        return self._t

    @property
    def now(self) -> float:
        """The clock watermark: the newest observed time (the newest
        ingested timestamp, or later after a quiet-period ``compact``)."""
        return self._now

    @property
    def generation_count(self) -> int:
        return len(self._generations)

    def watermark(self) -> float | None:
        """The clock watermark (``None`` while the sampler is pristine —
        nothing ingested, no clock observed)."""
        if self._t == 0 and self._now == 0.0:
            return None
        return self._now

    def _generation_bytes(self, gen: _TimeGeneration) -> int:
        aux = gen.aux.approx_size_bytes() if gen.aux is not None else 0
        return (
            INSTANCE_BYTES
            + gen.pool.approx_size_bytes()
            + sequence_bytes(len(gen.wall))
            + aux
        )

    def approx_size_bytes(self) -> int:
        return (
            INSTANCE_BYTES
            + RNG_STATE_BYTES
            + sum(self._generation_bytes(gen) for gen in self._generations)
        )

    def compact(self, now: float | None = None) -> int:
        """Drop generations whose span has fully left the active window;
        returns the approximate bytes reclaimed.

        Passing ``now`` advances the clock watermark first — the caller
        promises every future update arrives at ``ts ≥ now`` (stale
        updates then fail the monotonicity check instead of silently
        resurrecting dropped state).  Two sound drops, both relative to
        the watermark's window ``(now − H, now]``:

        * every ingested update has expired
          (``last arrival ≤ now − H``) — nothing kept can ever be
          active again, so all generations go;
        * the *newer* generation already covers the window
          (``its start ≤ now − H``) — the older generation's extra span
          holds only expired updates, so it goes.

        Live generations are untouched (their per-bucket RNG streams
        never re-key), so batched/scalar bitwise identity is preserved.
        """
        if now is not None:
            now = float(now)
            if now > self._now:
                self._now = now
        if not self._generations:
            return 0
        window_start = self._now - self._horizon
        if self._last_arrival <= window_start:
            freed = sum(self._generation_bytes(gen) for gen in self._generations)
            self._generations = []
            return freed
        freed = 0
        while (
            len(self._generations) > 1
            and self._generations[1].bucket * self._horizon <= window_start
        ):
            freed += self._generation_bytes(self._generations.pop(0))
        return freed

    # -- ingestion ----------------------------------------------------------
    def _gen_rng(self, bucket: int) -> np.random.Generator:
        return np.random.default_rng([self._root, 1, bucket])

    def _ensure_generation(self, bucket: int) -> None:
        if not self._generations or bucket > self._generations[-1].bucket:
            self._generations.append(
                _TimeGeneration(
                    SamplerPool(self._instances, self._gen_rng(bucket)),
                    bucket,
                    self._instances,
                    self._make_aux(),
                )
            )
            if len(self._generations) > 2:
                self._generations.pop(0)

    def _refresh_wall(
        self, gen: _TimeGeneration, old_pos: int, seg_ts: np.ndarray
    ) -> None:
        for idx, pos in enumerate(gen.pool.replacement_positions()):
            if pos > old_pos:
                gen.wall[idx] = float(seg_ts[pos - old_pos - 1])

    def update(self, item: int, timestamp: float) -> None:
        ts = float(timestamp)
        if ts < 0:
            raise ValueError(f"timestamps must be non-negative, got {ts}")
        if ts < self._now:
            raise ValueError(
                f"timestamps must be non-decreasing: {ts} after {self._now}"
            )
        self._ensure_generation(int(ts // self._horizon))
        for gen in self._generations:
            old_pos = gen.pool.position
            old_events = gen.pool.heap_events
            gen.pool.update(item)
            self._aux_ingest_one(gen.aux, item)
            if gen.pool.heap_events != old_events:
                for idx, pos in enumerate(gen.pool.replacement_positions()):
                    if pos > old_pos:
                        gen.wall[idx] = ts
        self._t += 1
        self._now = ts
        self._last_arrival = ts

    def extend(self, pairs) -> None:
        """Ingest an iterable of ``(item, timestamp)`` pairs (e.g. a
        :class:`repro.streams.TimestampedStream`); delegates to
        :meth:`update_batch` (bitwise identical — generation pools draw
        from per-bucket RNG streams, so batching reorders no
        randomness)."""
        self.update_batch(*as_timed_arrays(pairs))

    def update_batch(self, items, timestamps) -> None:
        """Vectorized ingestion of a timestamped chunk.

        The chunk is split at time-bucket boundaries and each
        single-bucket segment goes through the pools' batched kernel.
        Bitwise identical to the scalar loop for a fixed seed —
        generation pools draw from per-bucket RNG streams, so batching
        reorders no randomness.
        """
        arr, ts = as_timed_chunk(items, timestamps, self._now)
        if arr.size == 0:
            return
        buckets, cuts = bucket_cuts(ts, self._horizon)
        for start, end in zip(cuts[:-1], cuts[1:]):
            if start == end:
                continue
            self._ingest_span(
                arr[start:end], ts[start:end], int(buckets[start])
            )
        self._now = float(ts[-1])
        self._last_arrival = float(ts[-1])

    def _ingest_span(
        self, seg_items: np.ndarray, seg_ts: np.ndarray, bucket: int
    ) -> None:
        """Feed a segment known to lie in one time bucket (the
        :class:`repro.windows.WindowBank` fast path — the bank splits a
        chunk once at the finest ladder resolution and hands nested
        samplers pre-segmented spans)."""
        self._ensure_generation(bucket)
        for gen in self._generations:
            old_pos = gen.pool.position
            old_events = gen.pool.heap_events
            gen.pool.update_batch(seg_items)
            self._aux_ingest(gen.aux, seg_items)
            if gen.pool.heap_events != old_events:
                self._refresh_wall(gen, old_pos, seg_ts)
        self._t += int(seg_items.size)
        if seg_ts.size:
            self._now = float(seg_ts[-1])
            self._last_arrival = float(seg_ts[-1])

    # -- sampling -----------------------------------------------------------
    def _covering_generation(self) -> _TimeGeneration | None:
        """The oldest kept generation: it started at or before ``T − H``
        (or at the stream's beginning), so its substream contains every
        active update."""
        if not self._generations:
            return None
        return self._generations[0]

    def sample(self, now: float | None = None) -> SampleResult:
        """One truly perfect sample over the window ``(now − H, now]``.

        ``now`` defaults to the newest ingested timestamp; passing a
        later time models querying after a quiet period (expired
        instances are simply rejected as inactive).
        """
        gen = self._covering_generation()
        if gen is None:
            return SampleResult.empty()
        if now is None:
            now = self._now
        elif float(now) < self._now:
            raise ValueError(
                f"cannot sample at {now}, already ingested up to {self._now}"
            )
        window_start = float(now) - self._horizon
        if self._last_arrival <= window_start:
            # The window provably holds no updates at all (the whole
            # ingested stream expired): an explicit empty-window answer,
            # not a FAIL a caller might retry.
            return SampleResult.empty()
        finals = gen.pool.finalize()
        if not finals:
            return SampleResult.empty()
        zeta = self._zeta(gen)
        coins = self._rng.random(len(finals))
        for idx, ((item, count, __), coin) in enumerate(zip(finals, coins)):
            wall = gen.wall[idx]
            if wall <= window_start:
                continue  # the sampled position has expired
            weight = self._weight(count)
            if weight > zeta * (1.0 + 1e-12):
                raise ValueError(
                    f"invalid zeta {zeta}: increment at c={count} is {weight}"
                )
            if coin < weight / zeta:
                return SampleResult.of(
                    item, count=count, timestamp=wall, zeta=zeta
                )
        return SampleResult.fail(zeta=zeta)

    def sample_many(self, k: int, now: float | None = None) -> list[SampleResult]:
        """``k`` independent samples over the window ``(now − H, now]``
        from one finalize + one batched coin block — bitwise identical
        to ``k`` back-to-back :meth:`sample` calls at the same ``now``
        (expired instances stay masked without consuming extra coins,
        exactly like the scalar scan)."""
        if k < 0:
            raise ValueError(f"need a non-negative draw count, got {k}")
        gen = self._covering_generation()
        if gen is None:
            return [SampleResult.empty() for __ in range(k)]
        if now is None:
            now = self._now
        elif float(now) < self._now:
            raise ValueError(
                f"cannot sample at {now}, already ingested up to {self._now}"
            )
        window_start = float(now) - self._horizon
        if self._last_arrival <= window_start:
            return [SampleResult.empty() for __ in range(k)]
        finals = gen.pool.finalize()
        if not finals:
            return [SampleResult.empty() for __ in range(k)]
        zeta = self._zeta(gen)
        weights = [self._weight(c) for __, c, __ in finals]
        active = np.array(
            [wall > window_start for wall in gen.wall], dtype=bool
        )

        def make(j: int) -> SampleResult:
            item, count, __ = finals[j]
            return SampleResult.of(
                item, count=count, timestamp=gen.wall[j], zeta=zeta
            )

        return rejection_many(
            self._rng,
            k,
            weights,
            zeta,
            make,
            lambda: SampleResult.fail(zeta=zeta),
            active=active,
            describe=lambda j: (
                f"invalid zeta {zeta}: increment at c={finals[j][1]} is "
                f"{weights[j]}"
            ),
        )

    def run(self, timed_stream) -> SampleResult:
        """Convenience: replay a :class:`TimestampedStream` then sample."""
        self.update_batch(timed_stream.items, timed_stream.timestamps)
        return self.sample()

    # -- mergeable state ----------------------------------------------------
    def _config_fingerprint(self) -> dict:
        """Construction parameters that must match for restore/merge."""
        return {"horizon": self._horizon, "instances": self._instances}

    def snapshot(self) -> dict:
        gens = {}
        for i, gen in enumerate(self._generations):
            entry = {
                "bucket": gen.bucket,
                "wall": np.asarray(gen.wall, dtype=np.float64),
                "pool": gen.pool.snapshot(),
            }
            if gen.aux is not None:
                entry["aux"] = gen.aux.snapshot()
            gens[str(i)] = entry
        return {
            "kind": self._KIND,
            **self._config_fingerprint(),
            "delta": self._delta,
            "root": self._root,
            "position": self._t,
            "now": self._now,
            "last_arrival": (
                self._last_arrival if math.isfinite(self._last_arrival) else None
            ),
            "generations": gens,
            "rng_state": self._rng.bit_generator.state,
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != self._KIND:
            raise ValueError(
                f"not a {self._KIND} snapshot: {state.get('kind')!r}"
            )
        for key, mine in self._config_fingerprint().items():
            theirs = state[key]
            if theirs != mine:
                raise ValueError(
                    f"snapshot has {key}={theirs!r}, sampler has {mine!r}"
                )
        self._delta = float(state["delta"])
        self._root = int(state["root"])
        self._t = int(state["position"])
        self._now = float(state["now"])
        last_arrival = state["last_arrival"]
        self._last_arrival = (
            -math.inf if last_arrival is None else float(last_arrival)
        )
        gens: list[_TimeGeneration] = []
        entries = state["generations"]
        for i in range(len(entries)):
            entry = entries[str(i)]
            gen = _TimeGeneration(
                SamplerPool.from_snapshot(entry["pool"]),
                int(entry["bucket"]),
                self._instances,
                self._make_aux(),
            )
            gen.wall = [float(w) for w in entry["wall"]]
            if gen.aux is not None:
                gen.aux.restore(entry["aux"])
            gens.append(gen)
        self._generations = gens
        rng = np.random.default_rng()
        rng.bit_generator.state = state["rng_state"]
        self._rng = rng

    def _contribution(self, gens: list[_TimeGeneration], bucket: int):
        """A sampler's substream-since-``bucket·H`` generation.

        Exact bucket match when present.  When absent but a *later*
        generation exists, that later generation IS the contribution:
        generations are created on the first update of a new bucket and
        the two newest buckets are kept, so lacking bucket ``b`` while
        holding bucket ``b' > b`` means zero updates arrived in
        ``[bH, b'H)`` — the gen-``b'`` pool covers exactly the updates
        since ``bH``.  Returns ``(generation, borrowed)``; a borrowed
        generation must be copied before mutation (its original still
        serves its own bucket).  ``(None, False)`` means this sampler
        has no update since ``bH`` at all — an empty contribution.
        """
        for gen in gens:  # ascending buckets
            if gen.bucket == bucket:
                return gen, False
            if gen.bucket > bucket:
                return gen, True
        return None, False

    def merge(self, other) -> None:
        """Absorb a sampler fed a disjoint universe partition over the
        *same wall clock* (shards of one timestamped stream).

        Generations align by time bucket — boundaries are absolute
        multiples of the horizon, so the ``k``-th bucket means the same
        interval on every shard.  Bucket-wise, each side contributes its
        substream-since-the-boundary pool (see :meth:`_contribution` —
        a shard quiet since the boundary contributes its next generation
        or nothing) and the pools merge by the exact uniform-position
        rule, so every merged generation covers *all* updates of both
        shards since its absolute start and the covering property is
        inherited.
        """
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}"
            )
        for key, mine in self._config_fingerprint().items():
            theirs = other._config_fingerprint()[key]
            if theirs != mine:
                raise ValueError(f"{key} differs: {mine!r} vs {theirs!r}")
        buckets = {gen.bucket for gen in self._generations}
        buckets |= {gen.bucket for gen in other._generations}
        merged: list[_TimeGeneration] = []
        # Ascending order matters: a borrowed generation is copied before
        # the loop reaches (and mutates) it at its own bucket.
        for bucket in sorted(buckets)[-2:]:
            gen, gen_borrowed = self._contribution(self._generations, bucket)
            theirs, __ = self._contribution(other._generations, bucket)
            if gen is None:
                gen = copy.deepcopy(theirs)
                gen.bucket = bucket
                merged.append(gen)
                continue
            if gen_borrowed:
                gen = copy.deepcopy(gen)
                gen.bucket = bucket
            if theirs is not None:
                picks = gen.pool.merge(theirs.pool)
                gen.wall = [
                    gen.wall[k] if kept else theirs.wall[k]
                    for k, kept in enumerate(picks)
                ]
                if gen.aux is not None:
                    gen.aux.merge(theirs.aux)
            merged.append(gen)
        self._generations = merged
        self._t += other._t
        self._now = max(self._now, other._now)
        self._last_arrival = max(self._last_arrival, other._last_arrival)


class TimeWindowGSampler(_TimeWindowPoolSampler):
    """Truly perfect G-sampler over the wall-clock window of the last
    ``horizon`` seconds.

    Parameters
    ----------
    measure:
        A measure with globally bounded increments (``zeta(None)``).
    horizon:
        Window length ``H`` in seconds.
    instances:
        Instances per generation; defaults to
        ``R = ⌈2·ζ·Ŵ/F̂_G(Ŵ)·ln(1/δ)⌉`` at the expected window update
        count ``Ŵ`` (the extra 2 covers the ≤2× covering-substream slack
        under stationary arrivals).
    expected_window_count:
        ``Ŵ`` — the expected number of updates per window, used only to
        size the default instance count; over-estimates are safe.
    """

    _KIND = "tw_g"

    def __init__(
        self,
        measure: Measure,
        horizon: float,
        instances: int | None = None,
        delta: float = 0.05,
        expected_window_count: int | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self._measure = measure
        if instances is None:
            expected = expected_window_count or DEFAULT_EXPECTED_WINDOW_COUNT
            zeta = measure.zeta(None)
            acceptance = measure.fg_lower_bound(expected) / (2.0 * zeta * expected)
            instances = max(1, math.ceil(math.log(1.0 / delta) / acceptance))
        super().__init__(horizon, instances, delta, seed)

    @property
    def measure(self) -> Measure:
        return self._measure

    def _config_fingerprint(self) -> dict:
        return {
            **super()._config_fingerprint(),
            "measure": self._measure.name,
        }

    def _zeta(self, gen: _TimeGeneration) -> float:
        return self._measure.zeta(None)

    def _weight(self, count: int) -> float:
        return self._measure.increment(count)


class TimeWindowLpSampler(_TimeWindowPoolSampler):
    """Truly perfect Lp sampler (``p ≥ 1``) over the last ``horizon``
    seconds, with a per-generation exact suffix-``‖f‖∞`` certified
    normalizer.

    Parameters
    ----------
    p:
        Moment order ≥ 1 (``p = 1`` needs no normalizer and accepts
        always).
    """

    _KIND = "tw_lp"

    def __init__(
        self,
        p: float,
        horizon: float,
        instances: int | None = None,
        delta: float = 0.05,
        expected_window_count: int | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if p < 1:
            raise ValueError("TimeWindowLpSampler requires p ≥ 1")
        self._p = float(p)
        if instances is None:
            expected = expected_window_count or DEFAULT_EXPECTED_WINDOW_COUNT
            instances = sliding_window_lp_instances(p, expected, delta)
        super().__init__(horizon, instances, delta, seed)

    @property
    def p(self) -> float:
        return self._p

    def _config_fingerprint(self) -> dict:
        return {
            **super()._config_fingerprint(),
            "p": self._p,
        }

    def _make_aux(self):
        if self._p <= 1:
            return None
        return _SuffixLinf()

    def _aux_ingest(self, aux, items: np.ndarray) -> None:
        if aux is not None:
            aux.update_batch(items)

    def _aux_ingest_one(self, aux, item: int) -> None:
        if aux is not None:
            aux.update(item)

    def normalizer(self, gen: _TimeGeneration | None = None) -> float:
        """Certified ζ for the active window's frequencies.

        The covering substream contains the window, so its exact
        ``‖f‖∞`` value ``z`` dominates every window frequency and
        ``z^p − (z−1)^p`` dominates every window increment.
        """
        if self._p <= 1:
            return 1.0
        if gen is None:
            gen = self._covering_generation()
        if gen is None or gen.aux is None:
            return 1.0
        z = max(1.0, float(gen.aux.linf()))
        return z**self._p - (z - 1.0) ** self._p

    def _zeta(self, gen: _TimeGeneration) -> float:
        return self.normalizer(gen)

    def _weight(self, count: int) -> float:
        return count**self._p - (count - 1) ** self._p
