"""Shared validation + bucket-splitting for timestamped chunks.

Every windowed ingest path (pool samplers, F0, the bank) must agree
exactly on chunk validation and on where time-bucket boundaries fall —
any divergence silently breaks the scalar/batch bitwise identity.  One
implementation, used by all of them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_timed_chunk", "bucket_cuts"]


def as_timed_chunk(
    items, timestamps, now: float, n: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Coerce and validate an ``(items, timestamps)`` chunk.

    Checks, in order: matching 1-d shapes, universe membership (when
    ``n`` is given — done *before* any sampler state is touched, so a
    rejected chunk leaves every member of a composite sampler
    untouched), non-negative timestamps, continuity with ``now``, and
    within-chunk monotonicity.
    """
    arr = np.ascontiguousarray(np.asarray(items, dtype=np.int64))
    ts = np.asarray(timestamps, dtype=np.float64)
    if arr.ndim != 1 or ts.ndim != 1:
        raise ValueError("update_batch expects 1-d item and timestamp arrays")
    if arr.size != ts.size:
        raise ValueError(f"{arr.size} items but {ts.size} timestamps")
    if arr.size == 0:
        return arr, ts
    if n is not None and (int(arr.min()) < 0 or int(arr.max()) >= n):
        raise ValueError(f"items outside universe [0, {n})")
    if float(ts[0]) < 0:
        raise ValueError("timestamps must be non-negative")
    if float(ts[0]) < now:
        raise ValueError(
            f"timestamps must be non-decreasing: {float(ts[0])} after {now}"
        )
    if np.any(np.diff(ts) < 0):
        raise ValueError("timestamps must be non-decreasing within a chunk")
    return arr, ts


def bucket_cuts(ts: np.ndarray, horizon: float) -> tuple[np.ndarray, list[int]]:
    """Time buckets ``⌊ts/horizon⌋`` and the chunk offsets where they
    change (including 0 and ``len``) — the segmentation both the scalar
    loop's per-update ``⌊ts/H⌋`` and the batched kernel agree on."""
    buckets = (ts // horizon).astype(np.int64)
    cuts = [0, *(np.flatnonzero(np.diff(buckets)) + 1).tolist(), int(ts.size)]
    return buckets, cuts
