"""E7 — Theorem 1.4 (sliding-window Lp, Algorithm 6): instance count
scales as ``W^{1−1/p}`` and the smooth-histogram normalizer is certified.

Claim: per-instance acceptance decays like ``W^{1/p−1}``, so required
instances grow with slope ``1−1/p`` in ``W``; the histogram's certified
range always covers the window's true ``F_p``.
"""

from conftest import loglog_slope, write_table
from repro.sketches.lp_norm import exact_fp
from repro.sliding_window import SlidingWindowLpSampler
from repro.sliding_window.lp_window import sliding_window_lp_instances
from repro.streams import uniform_stream, zipf_stream


def _algorithm_acceptance(p: float, window: int) -> float:
    """Exact acceptance probability on a near-flat window (worst case).

    Only the histogram normalizer ζ is data-dependent: acceptance per
    instance is ``F_p(window)/(ζ·L)`` with ``L`` the covering
    generation's substream length.  Computing it directly removes the
    Monte-Carlo noise that would otherwise need thousands of trials at
    large ``W``.
    """
    stream = uniform_stream(n=window, m=2 * window, seed=window)
    s = SlidingWindowLpSampler(p, window=window, instances=1, seed=0)
    s.extend(stream)
    gen = s._generations[0]
    substream_len = s.position - gen.start
    zeta = s.normalizer()
    fp = exact_fp(stream.window_frequencies(window), p)
    return fp / (zeta * substream_len)


def _run_experiment():
    p = 2.0
    lines = []
    ws = [64, 256, 1024]
    needed = []
    for w in ws:
        rate = _algorithm_acceptance(p, w)
        needed.append(1.0 / max(rate, 1e-6))
        lines.append(
            f"W={w:<6d} acceptance={rate:8.5f} "
            f"instances-for-const-success={needed[-1]:8.1f} "
            f"theorem-bound={sliding_window_lp_instances(p, w, 0.5):6d}"
        )
    slope = loglog_slope([float(w) for w in ws], needed)
    lines.append(f"measured slope {slope:.3f} (theory 1-1/p = {1 - 1/p:.3f})")
    return lines, slope


def test_e07_sw_lp_scaling(benchmark):
    lines, slope = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_table("E07", "Sliding-window Lp instance scaling (Thm 1.4)", lines)
    benchmark.extra_info["slope"] = slope
    assert abs(slope - 0.5) < 0.3


def test_e07_normalizer_certified(benchmark):
    """The histogram-derived ζ must dominate the worst window increment on
    every checked prefix."""

    def check():
        p, window = 2.0, 200
        violations = 0
        for seed in range(5):
            stream = zipf_stream(n=32, m=1000, alpha=1.2, seed=seed)
            s = SlidingWindowLpSampler(p, window=window, instances=2, seed=seed)
            items = list(stream)
            for t, item in enumerate(items, 1):
                s.update(item)
                if t % 200 == 0:
                    wfreq = stream.prefix(t).window_frequencies(window)
                    linf = int(wfreq.max())
                    worst = linf**p - (linf - 1) ** p
                    if s.normalizer() < worst - 1e-9:
                        violations += 1
        return violations

    assert benchmark.pedantic(check, rounds=1, iterations=1) == 0
