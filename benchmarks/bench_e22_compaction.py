"""E22 — expiry compaction: bounded memory under bursty-idle traffic.

Claims: (a) a fleet of per-tenant window banks under intermittent
(burst-then-idle) traffic retains memory proportional to the number of
tenants *ever* active when nothing compacts — idle tenants keep their
expired generations and timestamp tables forever — while a periodic
``compact(now)`` sweep bounds the fleet's resident bytes near the
active set, independent of how many tenants have cycled through; (b)
compaction never perturbs live state: batched ingest interleaved with
the same compaction schedule stays *bitwise identical* to the scalar
loop (E21 parity re-verified under compaction).

Scale knobs (for CI smoke runs): ``COMPACT_BENCH_TENANTS`` (fleet size,
default 24) and ``COMPACT_BENCH_BURST`` (updates per tenant burst,
default 2000).
"""

import os

import numpy as np

from conftest import write_table
from repro.engine.state import state_to_bytes
from repro.streams import with_arrivals, zipf_stream
from repro.windows import WindowBank

TENANTS = int(os.environ.get("COMPACT_BENCH_TENANTS", 24))
BURST = int(os.environ.get("COMPACT_BENCH_BURST", 2000))
N = 1024
LADDER = (60.0, 300.0)  # 1m / 5m
RATE = 100.0  # arrivals per second inside a burst
IDLE_GAP = 3600.0  # seconds between a tenant's burst and the next sweep


def _burst(seed: int):
    return with_arrivals(
        zipf_stream(n=N, m=BURST, alpha=1.2, seed=seed),
        process="poisson",
        rate=RATE,
        seed=seed + 1,
    )


def _fleet_experiment():
    """Tenants go active one after another; after each new burst a
    sweeper queries every tenant at the current time.  The compacting
    fleet runs ``compact(now)`` on that sweep; the plain fleet only
    queries."""
    lines = [
        f"tenants={TENANTS}  burst={BURST} updates @ {RATE:.0f}/s  "
        f"ladder={tuple(int(h) for h in LADDER)}s  idle gap={IDLE_GAP:.0f}s"
    ]
    fleets = {
        "no-compact": [
            WindowBank(LADDER, p=2.0, n=N, instances=16, seed=k)
            for k in range(TENANTS)
        ],
        "compact": [
            WindowBank(LADDER, p=2.0, n=N, instances=16, seed=k)
            for k in range(TENANTS)
        ],
    }
    growth: dict[str, list[int]] = {name: [] for name in fleets}
    # Empty banks keep fixed instance shells; growth is measured above
    # this baseline so the assertions see only per-burst retention.
    base = sum(b.approx_size_bytes() for b in fleets["no-compact"])
    clock = 0.0
    single_peak = 0
    for k in range(TENANTS):
        feed = _burst(seed=10 * k)
        items = feed.items
        stamps = feed.timestamps + clock
        for name, fleet in fleets.items():
            fleet[k].update_batch(items, stamps)
        single_peak = max(single_peak, fleets["compact"][k].approx_size_bytes())
        clock = float(stamps[-1]) + IDLE_GAP
        for name, fleet in fleets.items():
            for bank in fleet:
                if name == "compact":
                    bank.compact(now=clock)
                for horizon in LADDER:
                    bank.sample(horizon, now=clock)
            growth[name].append(sum(b.approx_size_bytes() for b in fleet))
    lines.append(f"fleet baseline (all banks empty): {base / 1e3:9.1f} KB")
    for name, series in growth.items():
        lines.append(
            f"{name:<11s} retained after 1 tenant: "
            f"{(series[0] - base) / 1e3:9.1f} KB   after {TENANTS}: "
            f"{(series[-1] - base) / 1e3:9.1f} KB"
        )
    retained_no = growth["no-compact"][-1] - base
    retained_yes = max(1, growth["compact"][-1] - base)
    lines.append(
        f"retention ratio (no-compact / compact) at {TENANTS} tenants: "
        f"{retained_no / retained_yes:.1f}x"
    )
    lines.append(
        f"compacted fleet retention vs one tenant's peak: "
        f"{(growth['compact'][-1] - base) / max(1, single_peak - base // TENANTS):.2f}x "
        f"(bounded, does not scale with tenants)"
    )
    return lines, growth, base, single_peak


def test_e22_compaction_bounds_fleet_memory(benchmark):
    lines, growth, base, single_peak = benchmark.pedantic(
        _fleet_experiment, rounds=1, iterations=1
    )
    nocompact, compact = growth["no-compact"], growth["compact"]
    # Un-compacted retention grows with every tenant that ever ingested…
    assert nocompact[-1] - base > 0.8 * TENANTS * (nocompact[0] - base)
    assert all(b >= a for a, b in zip(nocompact, nocompact[1:]))
    # …while the compacted fleet's retention stays bounded near one
    # tenant's worth, independent of how many tenants cycled through.
    assert compact[-1] - base < (nocompact[-1] - base) / 4
    assert compact[-1] - base <= nocompact[0] - base
    benchmark.extra_info["retention_ratio"] = (nocompact[-1] - base) / max(
        1, compact[-1] - base
    )
    write_table(
        "E22",
        "Expiry compaction: fleet memory under bursty-idle traffic",
        lines,
    )


def test_e22_batched_scalar_parity_under_compaction(benchmark):
    """E21 parity re-verified: interleaving the same compact(now) calls
    into scalar and batched ingestion leaves the two states bitwise
    identical — compaction touches only provably-dead state."""

    def run():
        feed = _burst(seed=777)
        chunks = 8
        bounds = np.linspace(0, len(feed.items), chunks + 1, dtype=int)
        scalar = WindowBank(LADDER, p=2.0, n=N, instances=16, seed=9)
        batched = WindowBank(LADDER, p=2.0, n=N, instances=16, seed=9)
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            seg_items = feed.items[lo:hi]
            seg_ts = feed.timestamps[lo:hi]
            for item, when in zip(seg_items.tolist(), seg_ts.tolist()):
                scalar.update(item, when)
            batched.update_batch(seg_items, seg_ts)
            scalar.compact()
            batched.compact()
        # A quiet-period compact with an advanced clock on both sides
        # must also agree bitwise (both drop the same expired state).
        later = scalar.now + 10 * max(LADDER)
        freed_scalar = scalar.compact(now=later)
        freed_batched = batched.compact(now=later)
        identical = state_to_bytes(scalar.snapshot()) == state_to_bytes(
            batched.snapshot()
        )
        return identical, freed_scalar, freed_batched

    identical, freed_scalar, freed_batched = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert identical, "compaction must preserve scalar/batched bitwise identity"
    assert freed_scalar == freed_batched > 0
    write_table(
        "E22b",
        "Scalar/batched bitwise parity with interleaved compaction",
        [
            f"states bitwise identical: {identical}",
            f"quiet-period compact freed {freed_scalar} bytes on both paths",
        ],
    )
