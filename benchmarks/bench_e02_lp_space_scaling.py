"""E2 — Theorem 3.4: Lp instance-count scaling ``n^{1−1/p}`` and the
Misra-Gries normalizer's soundness.

Claim: on the flat (worst-case) stream, the per-instance acceptance
probability ``F_p/(ζ(Z)·m)`` — with ``Z`` the *measured* Misra-Gries
normalizer — decays as ``n^{1/p−1}``, so the instances needed for
constant success grow with log-log slope ``1−1/p``; and ``Z`` always
satisfies ``‖f‖∞ ≤ Z ≤ ‖f‖∞ + m/n^{1−1/p}``.

Skewed streams accept far more often (heavy items push ``F_p`` toward
``ζm``), which is why Theorem 3.4 is a *lower* bound on acceptance; the
flat stream is where it is tight.
"""

import math

import numpy as np

from conftest import loglog_slope, write_table
from repro.core import TrulyPerfectLpSampler, lp_instance_bound
from repro.sketches import MisraGries
from repro.sketches.lp_norm import exact_fp
from repro.streams import stream_from_frequencies, zipf_stream


def _flat_stream(n: int):
    return stream_from_frequencies(
        np.full(n, 6, dtype=np.int64), order="random", seed=n
    )


def _algorithm_acceptance(p: float, n: int) -> float:
    """The algorithm's exact acceptance probability on the flat stream.

    Only ``Z`` is data-dependent; running the real Misra-Gries and
    plugging its certified bound into ``F_p/(ζ(Z)·m)`` gives the
    acceptance probability without Monte-Carlo noise.
    """
    stream = _flat_stream(n)
    sampler = TrulyPerfectLpSampler(p=p, n=n, instances=1, seed=0)
    sampler.extend(stream)
    zeta = sampler.normalizer()
    fp = exact_fp(stream.frequencies(), p)
    return fp / (zeta * len(stream))


def _monte_carlo_acceptance(p: float, n: int, trials: int = 400) -> float:
    stream = _flat_stream(n)
    hits = 0
    for seed in range(trials):
        s = TrulyPerfectLpSampler(p=p, n=n, instances=1, seed=seed)
        if s.run(stream).is_item:
            hits += 1
    return hits / trials


def _run_experiment():
    lines = []
    slopes = {}
    ns = [32, 128, 512, 2048]
    for p in (1.5, 2.0):
        needed = []
        for n in ns:
            acc = _algorithm_acceptance(p, n)
            needed.append(1.0 / acc)
            lines.append(
                f"p={p:<4} n={n:<6d} acceptance={acc:9.5f} "
                f"instances-for-const-success={needed[-1]:9.1f} "
                f"theorem-bound={lp_instance_bound(p, n, 0.5):5d}"
            )
        slopes[p] = loglog_slope([float(x) for x in ns], needed)
        lines.append(
            f"p={p}: measured log-log slope {slopes[p]:.3f} "
            f"(theory 1-1/p = {1 - 1/p:.3f})"
        )
    # Monte-Carlo spot check: the analytic acceptance matches reality.
    mc = _monte_carlo_acceptance(2.0, 128)
    an = _algorithm_acceptance(2.0, 128)
    lines.append(
        f"spot check p=2 n=128: monte-carlo accept={mc:.4f} analytic={an:.4f}"
    )
    return lines, slopes, mc, an


def test_e02_scaling_table(benchmark):
    lines, slopes, mc, an = benchmark.pedantic(_run_experiment, rounds=1,
                                               iterations=1)
    write_table("E02", "Lp sampler instance scaling vs n (Theorem 3.4)", lines)
    for p, slope in slopes.items():
        benchmark.extra_info[f"slope_p{p}"] = slope
        assert abs(slope - (1 - 1 / p)) < 0.15, (
            f"p={p}: slope {slope:.3f} far from {1 - 1/p:.3f}"
        )
    assert abs(mc - an) < 0.05


def test_e02_mg_normalizer_sound(benchmark):
    """Z is certified on every prefix of every tested stream."""

    def check():
        violations = 0
        for seed in range(10):
            stream = zipf_stream(n=256, m=4000, alpha=1.3, seed=seed)
            capacity = max(1, math.ceil(256 ** 0.5))
            mg = MisraGries(capacity)
            freq = np.zeros(256, dtype=np.int64)
            for t, item in enumerate(stream, 1):
                mg.update(item)
                freq[item] += 1
                if t % 500 == 0:
                    z = mg.linf_upper_bound()
                    linf = int(freq.max())
                    if not (linf <= z <= linf + t / (capacity + 1) + 1e-9):
                        violations += 1
        return violations

    violations = benchmark(check)
    assert violations == 0
