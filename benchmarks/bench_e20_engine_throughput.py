"""E20 — engine throughput: scalar vs batched vs sharded ingestion.

Claims: (a) the engine's vectorized ``update_batch`` kernel ingests a
zipf(1.2) stream of 10^6 updates into a ``SamplerPool`` at ≥ 10× the
scalar ``update()`` loop's throughput (the skip-ahead structure means a
chunk costs a few whole-array passes plus O(heap events) Python work);
(b) batching is free — for a fixed seed the batched pool's final state
is bitwise identical to the scalar loop's; (c) sharding (K = 8) keeps
exactness: the merged shard output passes the distribution test against
the single-sampler target.

Scale knobs (for CI smoke runs): ``ENGINE_BENCH_M`` (stream length,
default 10^6; the ≥10× assertion relaxes to ≥3× below full scale) and
``ENGINE_BENCH_TRIALS`` (distribution-check trials, default 300).
"""

import os
import time

import numpy as np

from conftest import write_table
from repro.core.g_sampler import SamplerPool
from repro.engine import ShardedSamplerEngine, ingest
from repro.stats import assert_matches_distribution, lp_target
from repro.streams import zipf_stream

M = int(os.environ.get("ENGINE_BENCH_M", 10**6))
TRIALS = int(os.environ.get("ENGINE_BENCH_TRIALS", 300))
N = 10**5
INSTANCES = 64
SHARDS = 8
CHUNK = 1 << 16


def _throughput_experiment():
    items = np.asarray(zipf_stream(n=N, m=M, alpha=1.2, seed=0).items)
    lines = []
    rates = {}

    t0 = time.perf_counter()
    scalar_pool = SamplerPool(INSTANCES, seed=1)
    for item in items.tolist():
        scalar_pool.update(item)
    elapsed = time.perf_counter() - t0
    rates["scalar"] = M / elapsed

    t0 = time.perf_counter()
    batched_pool = SamplerPool(INSTANCES, seed=1)
    ingest(batched_pool, items, chunk_size=CHUNK)
    elapsed = time.perf_counter() - t0
    rates["batched"] = M / elapsed

    t0 = time.perf_counter()
    engine = ShardedSamplerEngine(
        {"kind": "pool", "instances": INSTANCES}, shards=SHARDS, seed=1
    )
    engine.ingest(items, chunk_size=CHUNK)
    elapsed = time.perf_counter() - t0
    rates["sharded"] = M / elapsed

    for mode, rate in rates.items():
        lines.append(
            f"{mode:<8s} m={M:<9d} throughput={rate/1e6:8.2f}M updates/s"
        )
    speedup = rates["batched"] / rates["scalar"]
    lines.append(f"batched/scalar speedup: {speedup:.1f}x")
    identical = scalar_pool.finalize() == batched_pool.finalize()
    lines.append(f"batched state bitwise-identical to scalar: {identical}")
    return lines, speedup, identical


def test_e20_engine_throughput(benchmark):
    lines, speedup, identical = benchmark.pedantic(
        _throughput_experiment, rounds=1, iterations=1
    )
    benchmark.extra_info["speedup"] = speedup
    required = 10.0 if M >= 10**6 else 3.0
    assert identical, "batched ingestion must reproduce the scalar state exactly"
    assert speedup >= required, (
        f"batched ingestion only {speedup:.1f}x scalar (need ≥ {required}x at m={M})"
    )
    write_table("E20", "Engine throughput: scalar vs batched vs sharded", lines)


def test_e20_sharded_exactness(benchmark):
    """Sharded (K=8) merged output vs the single-sampler L2 target."""
    stream = zipf_stream(n=32, m=1600, alpha=1.2, seed=11)
    target = lp_target(stream.frequencies(), 2.0)

    def run(seed):
        engine = ShardedSamplerEngine(
            {"kind": "lp", "p": 2.0, "n": 32, "instances": 64},
            shards=SHARDS,
            seed=seed,
        )
        engine.ingest(stream.items)
        return engine.sample()

    def check():
        return assert_matches_distribution(run, target, trials=TRIALS)

    report = benchmark.pedantic(check, rounds=1, iterations=1)
    write_table(
        "E20b",
        "Sharded engine exactness (K=8, p=2)",
        [report.row(f"sharded L2 K={SHARDS}")],
    )
