"""E14 — Theorem 1.5: multi-pass truly perfect Lp sampling on strict
turnstile streams.

Claims: (a) pass count scales as O(1/γ) while per-pass space scales as
n^γ-chunks; (b) output distribution is exactly f^p/F_p despite deletions;
(c) the one-pass impossibility (Theorem 1.2) is circumvented only through
the extra passes.
"""

from conftest import write_table
from repro.core import MultipassL1Sampler, MultipassLpSampler
from repro.stats import evaluate, lp_target
from repro.streams import strict_turnstile_stream

TS = strict_turnstile_stream(64, 400, delete_fraction=0.35, max_delta=4, seed=14)
FINAL = TS.frequencies()


def _run_experiment():
    lines = []
    ok = True
    # Pass/space trade-off for the L1 descent.
    for gamma in (0.25, 0.5, 1.0):
        s = MultipassL1Sampler(TS, n=64, gamma=gamma, seed=0)
        s.sample()
        lines.append(
            f"gamma={gamma:<5} chunks/pass={s.chunks:<5d} passes={s.passes_used}"
        )
    # Exactness of L1 and L2 multipass samplers.
    for p in (1.0, 2.0):
        target = lp_target(FINAL, p)
        if p == 1.0:

            def run(seed):
                return MultipassL1Sampler(TS, n=64, gamma=0.5, seed=seed).sample()

        else:

            def run(seed):
                return MultipassLpSampler(
                    TS, n=64, p=2.0, gamma=0.5, seed=seed
                ).sample()

        rep = evaluate(run, target, trials=800)
        ok &= rep.chi2_pvalue > 1e-4
        lines.append(rep.row(f"multipass L{p:g} (strict turnstile)"))
    return lines, ok


def test_e14_multipass(benchmark):
    lines, ok = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_table("E14", "Multi-pass strict turnstile Lp sampling (Thm 1.5)", lines)
    assert ok


def test_e14_pass_count_inverse_gamma(benchmark):
    def passes():
        out = {}
        for gamma in (0.2, 0.4, 0.8):
            s = MultipassL1Sampler(TS, n=64, gamma=gamma, seed=1)
            s.sample()
            out[gamma] = s.passes_used
        return out

    out = benchmark(passes)
    assert out[0.2] >= out[0.4] >= out[0.8]
    assert out[0.2] >= 2 * out[0.8] - 1
