"""A1 — ablation: the shared-counter pool vs naive parallel instances.

DESIGN.md calls out the O(1)-update data structure (shared hash table of
counters + per-instance offsets + skip-ahead heap) as the implementation
of Theorem 3.1's "O(1) expected update time".  This ablation removes it:
``R`` literal Algorithm-1 instances, each flipping its own coin and
bumping its own counter per update — O(R) per update.

Claims: (a) the pool's per-update cost is ~flat in R while the naive
version grows linearly; (b) both produce statistically identical
(item, count) state.  The amortization is ``O(1 + R·log(m)/m)`` per
update, so the flat regime needs ``m ≫ R·log m`` — the stream below is
sized accordingly.
"""

import time

from conftest import write_table
from repro.core import SingleGSampler
from repro.core.g_sampler import SamplerPool
from repro.core.measures import L1L2Measure
from repro.streams import zipf_stream

STREAM = list(zipf_stream(n=64, m=15000, alpha=1.1, seed=0))


def _pool_cost(instances: int) -> float:
    pool = SamplerPool(instances, seed=1)
    t0 = time.perf_counter()
    pool.extend(STREAM)
    return (time.perf_counter() - t0) / len(STREAM)


def _naive_cost(instances: int) -> float:
    samplers = [SingleGSampler(L1L2Measure(), seed=i) for i in range(instances)]
    t0 = time.perf_counter()
    for item in STREAM:
        for s in samplers:
            s.update(item)
    return (time.perf_counter() - t0) / len(STREAM)


def _run_experiment():
    lines = [f"{'R':>6} {'pool us/update':>15} {'naive us/update':>16}"]
    pool_costs = []
    naive_costs = []
    for r in (8, 64, 512):
        p = _pool_cost(r)
        n = _naive_cost(r)
        pool_costs.append(p)
        naive_costs.append(n)
        lines.append(f"{r:>6d} {p*1e6:>15.2f} {n*1e6:>16.2f}")
    lines.append(
        f"pool growth 8->512: {pool_costs[-1]/pool_costs[0]:.2f}x; "
        f"naive growth: {naive_costs[-1]/naive_costs[0]:.2f}x"
    )
    return lines, pool_costs, naive_costs


def test_a01_pool_ablation(benchmark):
    lines, pool_costs, naive_costs = benchmark.pedantic(
        _run_experiment, rounds=1, iterations=1
    )
    write_table("A01", "Ablation: shared-counter pool vs naive instances",
                lines)
    assert pool_costs[-1] / pool_costs[0] < 8.0   # ~flat (amortized O(1))
    assert naive_costs[-1] / naive_costs[0] > 20.0  # linear in R
    assert naive_costs[-1] > 20.0 * pool_costs[-1]
