"""E19 — Theorem B.7 / Algorithm 7: sliding-window perfect Lp sampling
for p < 1 via level sampling.

Claims: (a) the output tracks the *window's* Lp distribution (perfect,
so TV is small but γ > 0); (b) expired bursts are forgotten; (c) γ
shrinks with duplication, as in the insertion-only Algorithm 8.
"""

import numpy as np

from conftest import write_table
from repro.perfect import SlidingWindowPerfectLpSampler
from repro.stats import lp_target, total_variation
from repro.stats.harness import collect_outcomes, empirical_distribution
from repro.streams import Stream, stream_from_frequencies

P = 0.5
FREQ = np.array([1, 2, 4, 8, 16])
M = int(FREQ.sum())
TARGET = lp_target(FREQ, P)


def _tv_at(dup: int, trials: int = 700) -> tuple[float, float]:
    def run(seed):
        stream = stream_from_frequencies(FREQ, order="random",
                                         seed=60_000 + seed)
        s = SlidingWindowPerfectLpSampler(P, 5, window=M, duplication=dup,
                                          seed=seed)
        return s.run(stream)

    counts, fails, __ = collect_outcomes(run, trials=trials)
    if sum(counts.values()) == 0:
        return 1.0, 1.0
    return (
        total_variation(empirical_distribution(counts, 5), TARGET),
        fails / trials,
    )


def _run_experiment():
    lines = []
    tvs = []
    for dup in (2, 8, 32):
        tv, fail = _tv_at(dup)
        tvs.append(tv)
        lines.append(f"duplication={dup:<4d} TV-to-window-target={tv:.4f} "
                     f"fail={fail:.3f}")
    # Expiry: an expired burst must lose its mass.
    items = [0] * 300 + [1 + (i % 4) for i in range(200)]
    stream = Stream(items, n=5)
    zero_rate = 0
    accepted = 0
    for seed in range(150):
        s = SlidingWindowPerfectLpSampler(P, 5, window=200, duplication=8,
                                          seed=seed)
        res = s.run(stream)
        if res.is_item:
            accepted += 1
            zero_rate += res.item == 0
    zero_rate = zero_rate / max(accepted, 1)
    lines.append(
        f"expired-burst item sampled {zero_rate:.3f} of the time "
        f"(window mass: 0.0)"
    )
    return lines, tvs, zero_rate


def test_e19_sw_perfect_sub1(benchmark):
    lines, tvs, zero_rate = benchmark.pedantic(_run_experiment, rounds=1,
                                               iterations=1)
    write_table("E19", "Sliding-window perfect p<1 sampler (Thm B.7)", lines)
    assert tvs[-1] < 0.2          # close to the window target
    assert tvs[-1] <= tvs[0] + 0.05  # duplication helps (or is neutral)
    assert zero_rate < 0.2        # the window forgets the burst
