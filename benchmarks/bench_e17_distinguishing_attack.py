"""E17 — the privacy motivation: distinguishing attacks succeed against
γ-biased samplers and fail against truly perfect ones.

Claims: the attacker's advantage against the biased sampler grows toward
1 with the number of observed samples (≈ √N·γ regime), while against the
truly perfect sampler it stays at coin-flip level regardless of N —
"perfect security" in the paper's terms.
"""

from conftest import write_table
from repro.core import LpMeasure, TrulyPerfectGSampler
from repro.perfect import BiasedGSampler
from repro.stats import distinguishing_attack
from repro.streams import zipf_stream

N = 32
GAMMA = 0.08
STREAM = zipf_stream(n=N, m=400, alpha=1.0, seed=17)


def _run_unbiased(seed):
    return TrulyPerfectGSampler(LpMeasure(1.0), seed=seed, m_hint=400).run(STREAM)


def _run_biased(seed):
    return BiasedGSampler(
        LpMeasure(1.0), N, gamma=GAMMA, bias_items=[0], seed=seed
    ).run(STREAM)


def _run_experiment():
    lines = [f"{'samples':>8} {'adv vs biased':>14} {'adv vs truly perfect':>22}"]
    adv_biased = []
    adv_perfect = []
    for n_samples in (20, 80, 240):
        rep_b = distinguishing_attack(
            _run_unbiased, _run_biased, bias_items=[0],
            samples_per_batch=n_samples, batches=24, seed=1,
        )
        # Control: both "hypotheses" are the truly perfect sampler.
        rep_p = distinguishing_attack(
            _run_unbiased, _run_unbiased, bias_items=[0],
            samples_per_batch=n_samples, batches=24, seed=2,
        )
        adv_biased.append(rep_b.advantage)
        adv_perfect.append(rep_p.advantage)
        lines.append(
            f"{n_samples:>8d} {rep_b.advantage:>14.3f} {rep_p.advantage:>22.3f}"
        )
    return lines, adv_biased, adv_perfect


def test_e17_attack(benchmark):
    lines, adv_biased, adv_perfect = benchmark.pedantic(
        _run_experiment, rounds=1, iterations=1
    )
    write_table("E17", "Distinguishing attack: biased vs truly perfect", lines)
    benchmark.extra_info["adv_biased"] = adv_biased
    benchmark.extra_info["adv_truly_perfect"] = adv_perfect
    # The attack eventually breaks the biased sampler...
    assert adv_biased[-1] > 0.6
    # ...but never gains real traction on the truly perfect one.
    assert all(abs(a) < 0.45 for a in adv_perfect)
