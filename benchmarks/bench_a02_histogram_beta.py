"""A2 — ablation: smooth-histogram β (checkpoint density vs accuracy).

The sliding-window Lp sampler's space is dominated by the histogram's
``O((1/β)·log F_p)`` checkpoints; its normalizer quality degrades with
the histogram's α.  Sweeping β exposes the trade-off DESIGN.md calls out
for Algorithm 6.
"""

from conftest import write_table
from repro.sketches.lp_norm import exact_fp
from repro.sketches.smooth_histogram import ExactSuffixFp, SmoothHistogram
from repro.streams import zipf_stream

WINDOW = 256
STREAM = zipf_stream(n=64, m=1200, alpha=1.1, seed=2)


def _run_for_beta(beta: float) -> tuple[int, float]:
    hist = SmoothHistogram(lambda: ExactSuffixFp(2.0), beta, WINDOW)
    worst = 0.0
    max_checkpoints = 0
    for t, item in enumerate(STREAM, 1):
        hist.update(item)
        max_checkpoints = max(max_checkpoints, hist.checkpoint_count)
        if t % 200 == 0:
            truth = exact_fp(STREAM.prefix(t).window_frequencies(WINDOW), 2.0)
            if truth > 0:
                worst = max(worst, abs(hist.estimate() - truth) / truth)
    return max_checkpoints, worst


def _run_experiment():
    lines = [f"{'beta':>8} {'max checkpoints':>16} {'worst rel err':>14}"]
    rows = []
    for beta in (0.5, 0.125, 0.03125):
        checkpoints, err = _run_for_beta(beta)
        rows.append((beta, checkpoints, err))
        lines.append(f"{beta:>8.4f} {checkpoints:>16d} {err:>14.4f}")
    return lines, rows


def test_a02_histogram_beta(benchmark):
    lines, rows = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    write_table("A02", "Ablation: smooth-histogram beta sweep", lines)
    checkpoints = [r[1] for r in rows]
    errors = [r[2] for r in rows]
    # Smaller beta: more checkpoints, tighter estimates.
    assert checkpoints[0] < checkpoints[-1]
    assert errors[-1] <= errors[0] + 1e-9
    # Every error respects its (deterministic) alpha guarantee: for Fp
    # with p=2, beta = (alpha/2)^2 => alpha = 2*sqrt(beta).
    for beta, __, err in rows:
        assert err <= 2.0 * beta**0.5 + 1e-9
